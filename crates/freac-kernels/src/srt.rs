//! Sorting (SRT): merge sort realized as streamed compare-exchange
//! operations — the logic-heavy kernel that, like AES, "suffers a higher
//! penalty due to folding" (paper Sec. V-C).

use freac_netlist::builder::CircuitBuilder;
use freac_netlist::Netlist;

use crate::id::KernelId;
use crate::profile::CpuProfile;
use crate::trace::TraceSample;
use crate::workload::Workload;
use crate::Kernel;

/// Keys per batch element (MachSuite sorts 2048 integers).
pub const N: u64 = 2048;

/// Software reference: a full merge sort.
pub fn reference(keys: &[u32]) -> Vec<u32> {
    let mut v = keys.to_vec();
    v.sort_unstable();
    v
}

/// One compare-exchange of the merge network.
pub fn compare_exchange(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

/// Builds the merge-step datapath *with its HLS-style control harness*:
/// compare-exchange plus the pointer/bounds machinery an unpipelined HLS
/// merge loop carries — three stream pointers advanced conditionally on
/// the comparison, loop-bound checks, and a phase register. This control
/// logic is what makes sorting fold-heavy on FReaC Cache (Sec. V-C).
pub fn build_circuit() -> Netlist {
    let mut b = CircuitBuilder::new("srt");
    let a = b.word_input("a", 32);
    let c = b.word_input("b", 32);
    let a_le = {
        let lt = b.lt_unsigned(&c, &a); // c < a  <=>  !(a <= c)
        b.not(lt)
    };
    let (mn, mx) = b.min_max_unsigned(&a, &c);

    // Stream pointers: head of run A, head of run B, destination.
    let four = b.const_word(4, 32);
    let zero32 = b.const_word(0, 32);
    let (pa, pa_h) = b.word_reg(0, 32);
    let (pb, pb_h) = b.word_reg(0x1000, 32);
    let (pd, pd_h) = b.word_reg(0x2000, 32);
    let step_a = b.mux_word(a_le, &zero32, &four);
    let step_b = b.mux_word(a_le, &four, &zero32);
    let pa_next = b.add(&pa, &step_a);
    let pb_next = b.add(&pb, &step_b);
    let pd_next = b.add(&pd, &four);
    b.connect_word_reg(pa_h, &pa_next);
    b.connect_word_reg(pb_h, &pb_next);
    b.connect_word_reg(pd_h, &pd_next);

    // Loop bounds: elements consumed from each run.
    let (cnt, cnt_h) = b.word_reg(0, 16);
    let cnt_next = b.inc(&cnt);
    b.connect_word_reg(cnt_h, &cnt_next);
    let limit = b.const_word(2 * N as u32, 16);
    let done = b.eq_words(&cnt, &limit);

    // Run-exhaustion checks (address compare against run ends).
    let a_end = b.const_word(0x1000, 32);
    let b_end = b.const_word(0x2000, 32);
    let a_left = b.lt_unsigned(&pa, &a_end);
    let b_left = b.lt_unsigned(&pb, &b_end);
    let active = b.and(a_left, b_left);

    b.word_output("min", &mn);
    b.word_output("max", &mx);
    b.word_output("dst", &pd);
    b.bit_output("done", done);
    b.bit_output("active", active);
    b.finish().expect("srt circuit is structurally valid")
}

/// The SRT kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct Srt;

impl Kernel for Srt {
    fn id(&self) -> KernelId {
        KernelId::Srt
    }

    fn circuit(&self) -> Netlist {
        build_circuit()
    }

    fn workload(&self, batch: u64) -> Workload {
        // Merge sort of N keys performs ~N log2(N) compare-exchanges.
        let log_n = 64 - (N - 1).leading_zeros() as u64;
        let items = N * log_n * batch;
        Workload {
            items,
            // The unpipelined HLS merge loop serializes one element through
            // ~10 FSM states (address issue, two reads, compare, write,
            // pointer/bound updates) — each a full fold pass.
            cycles_per_item: 10,
            read_words_per_item: 2,
            write_words_per_item: 2,
            working_set_per_tile: 2 * N * 4, // ping-pong buffers
            input_bytes: N * 4 * batch,
            output_bytes: N * 4 * batch,
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        // Per compare-exchange: compare + data-dependent branch + moves.
        CpuProfile {
            int_ops: 5,
            mul_ops: 0,
            loads: 2,
            stores: 2,
            branches: 2,
            mispredict_per_mille: 350, // merge branches are data dependent
        }
    }

    fn sample_trace(&self) -> TraceSample {
        // One merge pass over 2048 keys: sequential reads of both halves,
        // sequential writes of the destination.
        let mut acc = Vec::new();
        let src = 0x10_0000u64;
        let dst = 0x20_0040u64;
        for i in 0..N {
            acc.push((src + i * 4, false));
            acc.push((src + (N + i) * 4, false));
            acc.push((dst + i * 8, true));
            acc.push((dst + i * 8 + 4, true));
        }
        TraceSample::new(acc, N)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freac_netlist::eval::Evaluator;
    use freac_netlist::Value;

    #[test]
    fn circuit_matches_compare_exchange() {
        let n = build_circuit();
        let mut ev = Evaluator::new(&n);
        for (a, b) in [(5u32, 3u32), (3, 5), (7, 7), (0, u32::MAX)] {
            let out = ev.run_cycle(&[Value::Word(a), Value::Word(b)]).unwrap();
            let (mn, mx) = compare_exchange(a, b);
            assert_eq!(out[0].as_word(), Some(mn));
            assert_eq!(out[1].as_word(), Some(mx));
        }
    }

    #[test]
    fn sorting_via_repeated_exchanges() {
        // Odd-even transposition over a tiny array using the reference
        // compare-exchange semantics converges to sorted order.
        let mut v = vec![9u32, 3, 7, 1, 8, 2];
        for _ in 0..v.len() {
            for i in (0..v.len() - 1).step_by(2) {
                let (a, b) = compare_exchange(v[i], v[i + 1]);
                v[i] = a;
                v[i + 1] = b;
            }
            for i in (1..v.len() - 1).step_by(2) {
                let (a, b) = compare_exchange(v[i], v[i + 1]);
                v[i] = a;
                v[i + 1] = b;
            }
        }
        assert_eq!(v, reference(&[9, 3, 7, 1, 8, 2]));
    }

    #[test]
    fn workload_counts_merge_passes() {
        let w = Srt.workload(1);
        assert_eq!(w.items, N * 11); // log2(2048) = 11
    }
}
