//! 2-D convolution (CONV): 3x3 taps over a 64x64 image, one output pixel
//! per item. The tap weights live in a small ROM inside the accelerator
//! (they are part of the configuration, like the AES key).

use freac_netlist::builder::CircuitBuilder;
use freac_netlist::Netlist;

use crate::id::KernelId;
use crate::profile::CpuProfile;
use crate::trace::TraceSample;
use crate::workload::Workload;
use crate::Kernel;

/// Image edge length per batch element.
pub const DIM: u64 = 64;

/// The 3x3 tap weights (a Laplacian-of-Gaussian-ish integer kernel).
pub const WEIGHTS: [u32; 9] = [1, 2, 1, 2, 4, 2, 1, 2, 1];

/// Software reference for one output pixel given its 9 neighbourhood
/// pixels in row-major tap order.
pub fn pixel(p: &[u32; 9]) -> u32 {
    p.iter()
        .zip(&WEIGHTS)
        .fold(0u32, |acc, (&v, &w)| acc.wrapping_add(v.wrapping_mul(w)))
}

/// Builds the PE: a 9-cycle MAC with a weight ROM indexed by the tap
/// counter.
pub fn build_circuit() -> Netlist {
    let mut b = CircuitBuilder::new("conv");
    let p = b.word_input("pixel", 32);
    let (acc, acc_h) = b.word_reg(0, 32);
    let (k, k_h) = b.word_reg(0, 4);

    let zero4 = b.const_word(0, 4);
    let last = b.const_word(8, 4);
    let is_first = b.eq_words(&k, &zero4);
    let is_last = b.eq_words(&k, &last);

    // Weight ROM: 16 entries (padded), indexed by the tap counter.
    let mut table = [0u32; 16];
    table[..9].copy_from_slice(&WEIGHTS);
    let w = b.rom(&table, k.bits(), 8);
    let w32 = b.resize(&w, 32);

    let zero32 = b.const_word(0, 32);
    let acc_in = b.mux_word(is_first, &acc, &zero32);
    let m = b.mac(&p, &w32, &acc_in);
    b.connect_word_reg(acc_h, &m);

    let k1 = b.inc(&k);
    let k_next = b.mux_word(is_last, &k1, &zero4);
    b.connect_word_reg(k_h, &k_next);

    b.word_output("out", &m);
    b.bit_output("done", is_last);
    b.finish().expect("conv circuit is structurally valid")
}

/// The CONV kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct Conv;

impl Kernel for Conv {
    fn id(&self) -> KernelId {
        KernelId::Conv
    }

    fn circuit(&self) -> Netlist {
        build_circuit()
    }

    fn workload(&self, batch: u64) -> Workload {
        let items = DIM * DIM * batch;
        Workload {
            items,
            cycles_per_item: 10, // 9 tap reads + result write state
            read_words_per_item: 9,
            write_words_per_item: 1,
            working_set_per_tile: DIM * DIM * 4 * 2,
            input_bytes: items * 4,
            output_bytes: items * 4,
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile {
            int_ops: 30,
            mul_ops: 9,
            loads: 9,
            stores: 1,
            branches: 4,
            mispredict_per_mille: 5,
        }
    }

    fn sample_trace(&self) -> TraceSample {
        let dim = DIM;
        let base = 0x10_0000u64;
        let out = 0x40_0000u64;
        let mut acc = Vec::new();
        let mut items = 0;
        for y in 1..dim - 1 {
            for x in 1..dim - 1 {
                for dy in 0..3u64 {
                    for dx in 0..3u64 {
                        let i = (y + dy - 1) * dim + (x + dx - 1);
                        acc.push((base + i * 4, false));
                    }
                }
                acc.push((out + (y * dim + x) * 4, true));
                items += 1;
            }
        }
        TraceSample::new(acc, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freac_netlist::eval::Evaluator;
    use freac_netlist::Value;

    #[test]
    fn circuit_convolves_one_pixel() {
        let net = build_circuit();
        let mut ev = Evaluator::new(&net);
        let p = [3u32, 1, 4, 1, 5, 9, 2, 6, 5];
        let mut result = 0;
        for (i, &v) in p.iter().enumerate() {
            let out = ev.run_cycle(&[Value::Word(v)]).unwrap();
            if i == 8 {
                assert_eq!(out[1], Value::Bit(true));
                result = out[0].as_word().unwrap();
            }
        }
        assert_eq!(result, pixel(&p));
    }

    #[test]
    fn back_to_back_pixels_reset_accumulator() {
        let net = build_circuit();
        let mut ev = Evaluator::new(&net);
        let a = [1u32; 9];
        let b = [2u32; 9];
        let mut outs = Vec::new();
        for &v in a.iter().chain(&b) {
            let out = ev.run_cycle(&[Value::Word(v)]).unwrap();
            if out[1] == Value::Bit(true) {
                outs.push(out[0].as_word().unwrap());
            }
        }
        assert_eq!(outs, vec![pixel(&a), pixel(&b)]);
    }

    #[test]
    fn weights_sum_matches_constant_input() {
        let sum: u32 = WEIGHTS.iter().sum();
        assert_eq!(pixel(&[1; 9]), sum);
    }
}
