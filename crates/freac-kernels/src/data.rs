//! Deterministic workload-data generation.
//!
//! The paper initializes each benchmark's arrays on the host cores; these
//! generators are the equivalent, seeded so every run of the evaluation is
//! reproducible. They are used by the examples and the integration tests
//! to drive functional verification with realistic data.

use freac_rand::{seed_from_name, Rng64};

use crate::id::KernelId;

/// A reproducible data source for a kernel.
#[derive(Debug)]
pub struct DataGen {
    rng: Rng64,
}

impl DataGen {
    /// A generator seeded per kernel (same kernel, same data).
    pub fn for_kernel(id: KernelId) -> Self {
        DataGen {
            rng: Rng64::new(seed_from_name(id.name())),
        }
    }

    /// A generator with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        DataGen {
            rng: Rng64::new(seed),
        }
    }

    /// `n` uniform 32-bit words bounded below `limit` (use `u32::MAX` for
    /// the full range).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn words(&mut self, n: usize, limit: u32) -> Vec<u32> {
        self.rng.words(n, limit)
    }

    /// `n` bytes drawn from the given alphabet (e.g. DNA or text bases).
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` is empty.
    pub fn text(&mut self, n: usize, alphabet: &[u8]) -> Vec<u8> {
        assert!(!alphabet.is_empty(), "alphabet must be non-empty");
        (0..n).map(|_| *self.rng.pick(alphabet)).collect()
    }

    /// An AES block.
    pub fn block(&mut self) -> [u8; 16] {
        let mut b = [0u8; 16];
        self.rng.fill_bytes(&mut b);
        b
    }

    /// A square matrix of `dim` x `dim` small words (bounded to avoid
    /// uninformative wrap-around in references).
    pub fn matrix(&mut self, dim: usize) -> Vec<u32> {
        self.words(dim * dim, 1 << 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kernel_seeds_are_stable_and_distinct() {
        let a1 = DataGen::for_kernel(KernelId::Aes).words(8, u32::MAX);
        let a2 = DataGen::for_kernel(KernelId::Aes).words(8, u32::MAX);
        let g = DataGen::for_kernel(KernelId::Gemm).words(8, u32::MAX);
        assert_eq!(a1, a2, "same kernel, same stream");
        assert_ne!(a1, g, "different kernels, different streams");
    }

    #[test]
    fn text_respects_alphabet() {
        let t = DataGen::with_seed(1).text(256, b"ACGT");
        assert!(t.iter().all(|c| b"ACGT".contains(c)));
    }

    #[test]
    fn words_respect_limit() {
        let w = DataGen::with_seed(2).words(1000, 100);
        assert!(w.iter().all(|&x| x < 100));
    }

    #[test]
    fn matrix_dimensions() {
        let m = DataGen::with_seed(3).matrix(16);
        assert_eq!(m.len(), 256);
    }
}
