//! AES-128 block encryption.
//!
//! The logic-heavy kernel of the suite (paper Fig. 8 shows AES with by far
//! the highest folding cycle count). The accelerator iterates one AES round
//! per original clock cycle: 16 S-boxes on the state, ShiftRows wiring,
//! MixColumns (skipped in the final round), AddRoundKey, plus on-the-fly
//! key expansion — about eight thousand 4-LUTs after technology mapping.
//!
//! The cipher key is baked into the configuration bitstream (reconfiguring
//! FReaC Cache is cheap, so a per-key accelerator is the natural design);
//! plaintext blocks stream in as four 32-bit words and ciphertext streams
//! out the same way after 11 cycles (load + 10 rounds).

use freac_netlist::builder::{CircuitBuilder, Word};
use freac_netlist::Netlist;

use crate::id::KernelId;
use crate::profile::CpuProfile;
use crate::trace::TraceSample;
use crate::workload::Workload;
use crate::Kernel;

/// The AES S-box.
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 11] = [
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
];

/// The fixed cipher key baked into the accelerator (the FIPS-197 example
/// key).
pub const KEY: [u8; 16] = [
    0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
];

// ---------------------------------------------------------------------
// Software reference
// ---------------------------------------------------------------------

fn xtime(b: u8) -> u8 {
    let x = b << 1;
    if b & 0x80 != 0 {
        x ^ 0x1b
    } else {
        x
    }
}

/// Expands a 16-byte key into 11 round keys.
pub fn expand_key(key: &[u8; 16]) -> [[u8; 16]; 11] {
    let mut rk = [[0u8; 16]; 11];
    rk[0] = *key;
    for r in 1..11 {
        let prev = rk[r - 1];
        // Last column of the previous round key: rotate, substitute, rcon.
        let mut t = [prev[13], prev[14], prev[15], prev[12]];
        for b in &mut t {
            *b = SBOX[*b as usize];
        }
        t[0] ^= RCON[r];
        for c in 0..4 {
            for row in 0..4 {
                let idx = c * 4 + row;
                let left = if c == 0 {
                    t[row]
                } else {
                    rk[r][(c - 1) * 4 + row]
                };
                rk[r][idx] = prev[idx] ^ left;
            }
        }
    }
    rk
}

/// Encrypts one 16-byte block with AES-128 (column-major state layout, as
/// in FIPS-197).
pub fn encrypt_block(block: &[u8; 16], key: &[u8; 16]) -> [u8; 16] {
    let rk = expand_key(key);
    let mut s = *block;
    for (i, b) in s.iter_mut().enumerate() {
        *b ^= rk[0][i];
    }
    for (round, round_key) in rk.iter().enumerate().skip(1) {
        // SubBytes.
        for b in s.iter_mut() {
            *b = SBOX[*b as usize];
        }
        // ShiftRows: state is column-major (s[c*4 + r]); row r rotates left
        // by r columns.
        let mut t = [0u8; 16];
        for c in 0..4 {
            for r in 0..4 {
                t[c * 4 + r] = s[((c + r) % 4) * 4 + r];
            }
        }
        s = t;
        // MixColumns (all but the last round).
        if round != 10 {
            let mut m = [0u8; 16];
            for c in 0..4 {
                let col = &s[c * 4..c * 4 + 4];
                m[c * 4] = xtime(col[0]) ^ xtime(col[1]) ^ col[1] ^ col[2] ^ col[3];
                m[c * 4 + 1] = col[0] ^ xtime(col[1]) ^ xtime(col[2]) ^ col[2] ^ col[3];
                m[c * 4 + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ xtime(col[3]) ^ col[3];
                m[c * 4 + 3] = xtime(col[0]) ^ col[0] ^ col[1] ^ col[2] ^ xtime(col[3]);
            }
            s = m;
        }
        // AddRoundKey.
        for (i, b) in s.iter_mut().enumerate() {
            *b ^= round_key[i];
        }
    }
    s
}

// ---------------------------------------------------------------------
// Accelerator circuit
// ---------------------------------------------------------------------

fn sbox_byte(b: &mut CircuitBuilder, byte: &Word) -> Word {
    let table: Vec<u32> = SBOX.iter().map(|&v| v as u32).collect();
    b.rom(&table, byte.bits(), 8)
}

fn xtime_byte(b: &mut CircuitBuilder, byte: &Word) -> Word {
    let shifted = b.shl_const(byte, 1);
    let poly = b.const_word(0x1b, 8);
    let reduced = b.xor_words(&shifted, &poly);
    b.mux_word(byte.bit(7), &shifted, &reduced)
}

/// Builds the AES-128 accelerator circuit for [`KEY`].
pub fn build_circuit() -> Netlist {
    let mut b = CircuitBuilder::new("aes");
    let rk = expand_key(&KEY);

    // Plaintext columns as word inputs.
    let pt: Vec<Word> = (0..4)
        .map(|c| b.word_input(&format!("pt{c}"), 32))
        .collect();

    // State: 4 column registers; key: 4 column registers; round counter.
    let mut state = Vec::new();
    let mut state_h = Vec::new();
    for _ in 0..4 {
        let (q, h) = b.word_reg(0, 32);
        state.push(q);
        state_h.push(h);
    }
    let mut keyr = Vec::new();
    let mut keyr_h = Vec::new();
    for c in 0..4 {
        let init = u32::from_le_bytes([
            rk[1][c * 4],
            rk[1][c * 4 + 1],
            rk[1][c * 4 + 2],
            rk[1][c * 4 + 3],
        ]);
        let (q, h) = b.word_reg(init, 32);
        keyr.push(q);
        keyr_h.push(h);
    }
    let (rc, rc_h) = b.word_reg(0, 4);

    // Phase predicates.
    let zero4 = b.const_word(0, 4);
    let ten4 = b.const_word(10, 4);
    let is_load = b.eq_words(&rc, &zero4);
    let is_last = b.eq_words(&rc, &ten4);

    // Bytes of the state, column-major: byte (c, r) = state[c].slice(8r, 8).
    let byte_of = |w: &Word, r: usize| w.slice(8 * r, 8);

    // SubBytes + ShiftRows: new column c, row r comes from column (c+r)%4.
    let mut sub: Vec<Vec<Word>> = Vec::new(); // sub[c][r]
    for c in 0..4 {
        let mut col = Vec::new();
        for r in 0..4 {
            let src = byte_of(&state[(c + r) % 4], r);
            col.push(sbox_byte(&mut b, &src));
        }
        sub.push(col);
    }

    // MixColumns on each shifted column.
    let mut round_cols: Vec<Word> = Vec::new();
    for col in sub.iter() {
        let xt: Vec<Word> = col.iter().map(|v| xtime_byte(&mut b, v)).collect();
        let m0 = {
            let a = b.xor_words(&xt[0], &xt[1]);
            let a = b.xor_words(&a, &col[1]);
            let a = b.xor_words(&a, &col[2]);
            b.xor_words(&a, &col[3])
        };
        let m1 = {
            let a = b.xor_words(&col[0], &xt[1]);
            let a = b.xor_words(&a, &xt[2]);
            let a = b.xor_words(&a, &col[2]);
            b.xor_words(&a, &col[3])
        };
        let m2 = {
            let a = b.xor_words(&col[0], &col[1]);
            let a = b.xor_words(&a, &xt[2]);
            let a = b.xor_words(&a, &xt[3]);
            b.xor_words(&a, &col[3])
        };
        let m3 = {
            let a = b.xor_words(&xt[0], &col[0]);
            let a = b.xor_words(&a, &col[1]);
            let a = b.xor_words(&a, &col[2]);
            b.xor_words(&a, &xt[3])
        };
        // Final round skips MixColumns.
        let mixed0 = b.mux_word(is_last, &m0, &col[0]);
        let mixed1 = b.mux_word(is_last, &m1, &col[1]);
        let mixed2 = b.mux_word(is_last, &m2, &col[2]);
        let mixed3 = b.mux_word(is_last, &m3, &col[3]);
        let lo = b.concat(&mixed0, &mixed1);
        let hi = b.concat(&mixed2, &mixed3);
        round_cols.push(b.concat(&lo, &hi));
    }

    // AddRoundKey with the current round key register.
    let arked: Vec<Word> = round_cols
        .iter()
        .zip(&keyr)
        .map(|(col, k)| b.xor_words(col, k))
        .collect();

    // Load phase: state <- pt ^ K0.
    let k0: Vec<Word> = (0..4)
        .map(|c| {
            let v = u32::from_le_bytes([
                rk[0][c * 4],
                rk[0][c * 4 + 1],
                rk[0][c * 4 + 2],
                rk[0][c * 4 + 3],
            ]);
            b.const_word(v, 32)
        })
        .collect();
    let loaded: Vec<Word> = pt.iter().zip(&k0).map(|(p, k)| b.xor_words(p, k)).collect();

    // Next state and outputs.
    for c in 0..4 {
        let next = b.mux_word(is_load, &arked[c], &loaded[c]);
        b.word_output(&format!("ct{c}"), &next);
        b.connect_word_reg(state_h.remove(0), &next);
    }

    // Key schedule: keyr holds the round key for the *current* round; the
    // next value is expand(keyr) with rcon indexed by the upcoming round.
    // During the load cycle the register must become K1 (its init value),
    // so the next value is either K1 (reload) or expand(keyr).
    let rcon_table: Vec<u32> = (0..16u32)
        .map(|i| {
            // At round rc the register holds K_rc and must become K_{rc+1},
            // which uses RCON[rc + 1].
            let next_round = (i as usize + 1).min(10);
            RCON[next_round] as u32
        })
        .collect();
    let rcon_val = b.rom(&rcon_table, rc.bits(), 8);
    // rot+sub of the last column of keyr.
    let last = &keyr[3];
    let rot: Vec<Word> = (0..4).map(|r| byte_of(last, (r + 1) % 4)).collect();
    let subbed: Vec<Word> = rot.iter().map(|v| sbox_byte(&mut b, v)).collect();
    let t0 = b.xor_words(&subbed[0], &rcon_val);
    let tcol = {
        let lo = b.concat(&t0, &subbed[1]);
        let hi = b.concat(&subbed[2], &subbed[3]);
        b.concat(&lo, &hi)
    };
    let nk0 = b.xor_words(&keyr[0], &tcol);
    let nk1 = b.xor_words(&keyr[1], &nk0);
    let nk2 = b.xor_words(&keyr[2], &nk1);
    let nk3 = b.xor_words(&keyr[3], &nk2);
    let expanded = [nk0, nk1, nk2, nk3];
    let k1: Vec<Word> = (0..4)
        .map(|c| {
            let v = u32::from_le_bytes([
                rk[1][c * 4],
                rk[1][c * 4 + 1],
                rk[1][c * 4 + 2],
                rk[1][c * 4 + 3],
            ]);
            b.const_word(v, 32)
        })
        .collect();
    for (c, h) in keyr_h.into_iter().enumerate() {
        // During the load cycle the register already holds K1 and must keep
        // it for round 1; at the end of the last round it reloads K1 for the
        // next block; otherwise it advances to the next round key.
        let advance = b.mux_word(is_last, &expanded[c], &k1[c]);
        let next = b.mux_word(is_load, &advance, &keyr[c]);
        b.connect_word_reg(h, &next);
    }

    // Round counter: 0 -> 1 -> ... -> 10 -> 0.
    let inc = b.inc(&rc);
    let next_rc = b.mux_word(is_last, &inc, &zero4);
    b.connect_word_reg(rc_h, &next_rc);
    b.bit_output("done", is_last);

    b.finish().expect("aes circuit is structurally valid")
}

// ---------------------------------------------------------------------
// Kernel plumbing
// ---------------------------------------------------------------------

/// Blocks per batch element (4 KB of plaintext).
pub const BLOCKS_PER_ELEMENT: u64 = 256;

/// The AES kernel.
#[derive(Debug, Default, Clone, Copy)]
pub struct Aes;

impl Kernel for Aes {
    fn id(&self) -> KernelId {
        KernelId::Aes
    }

    fn circuit(&self) -> Netlist {
        build_circuit()
    }

    fn workload(&self, batch: u64) -> Workload {
        let items = BLOCKS_PER_ELEMENT * batch;
        Workload {
            items,
            cycles_per_item: 13, // load + 10 rounds + result drain states
            read_words_per_item: 4,
            write_words_per_item: 4,
            working_set_per_tile: 8 * 1024, // a tile's share of blocks (in + out)
            input_bytes: items * 16,
            output_bytes: items * 16,
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        // Table-based software AES: ~40 T-table lookups + xors per round.
        CpuProfile {
            int_ops: 320,
            mul_ops: 0,
            loads: 184,
            stores: 4,
            branches: 12,
            mispredict_per_mille: 20,
        }
    }

    fn sample_trace(&self) -> TraceSample {
        let mut acc = Vec::new();
        let table_base = 0x1_0000u64;
        let pt_base = 0x8_0040u64;
        let ct_base = 0x10_0080u64;
        let blocks = 64u64;
        let mut lcg = 0x1234_5678u64;
        for blk in 0..blocks {
            for w in 0..4 {
                acc.push((pt_base + blk * 16 + w * 4, false));
            }
            for _ in 0..40 {
                lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                acc.push((table_base + (lcg >> 33) % 1024, false));
            }
            for w in 0..4 {
                acc.push((ct_base + blk * 16 + w * 4, true));
            }
        }
        TraceSample::new(acc, blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BATCH;
    use freac_netlist::eval::Evaluator;
    use freac_netlist::Value;

    #[test]
    fn fips197_vector() {
        let key = KEY;
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expect: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(encrypt_block(&pt, &key), expect);
    }

    #[test]
    fn key_expansion_first_round() {
        // FIPS-197 Appendix A: w4..w7 of the example key.
        let rk = expand_key(&KEY);
        assert_eq!(&rk[1][0..4], &[0xd6, 0xaa, 0x74, 0xfd]);
        assert_eq!(&rk[1][4..8], &[0xd2, 0xaf, 0x72, 0xfa]);
    }

    fn run_circuit_block(pt: &[u8; 16]) -> [u8; 16] {
        let n = build_circuit();
        let mut ev = Evaluator::new(&n);
        let inputs: Vec<Value> = (0..4)
            .map(|c| {
                Value::Word(u32::from_le_bytes([
                    pt[c * 4],
                    pt[c * 4 + 1],
                    pt[c * 4 + 2],
                    pt[c * 4 + 3],
                ]))
            })
            .collect();
        let mut out = Vec::new();
        for _ in 0..11 {
            out = ev.run_cycle(&inputs).unwrap();
        }
        let mut ct = [0u8; 16];
        for c in 0..4 {
            let w = out[c].as_word().unwrap();
            ct[c * 4..c * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        // The done flag is the last output.
        assert_eq!(out[4], Value::Bit(true));
        ct
    }

    #[test]
    fn circuit_matches_reference() {
        let pts: [[u8; 16]; 3] = [
            [0u8; 16],
            [0xff; 16],
            [
                0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                0xee, 0xff,
            ],
        ];
        for pt in &pts {
            assert_eq!(run_circuit_block(pt), encrypt_block(pt, &KEY), "pt {pt:x?}");
        }
    }

    #[test]
    fn circuit_processes_back_to_back_blocks() {
        // Two consecutive blocks through the same evaluator: the counter
        // wrap and key reload must restore the machine for block 2.
        let n = build_circuit();
        let mut ev = Evaluator::new(&n);
        let blocks: [[u8; 16]; 2] = [[0x5a; 16], [0xa5; 16]];
        for pt in &blocks {
            let inputs: Vec<Value> = (0..4)
                .map(|c| {
                    Value::Word(u32::from_le_bytes([
                        pt[c * 4],
                        pt[c * 4 + 1],
                        pt[c * 4 + 2],
                        pt[c * 4 + 3],
                    ]))
                })
                .collect();
            let mut out = Vec::new();
            for _ in 0..11 {
                out = ev.run_cycle(&inputs).unwrap();
            }
            let mut ct = [0u8; 16];
            for c in 0..4 {
                ct[c * 4..c * 4 + 4].copy_from_slice(&out[c].as_word().unwrap().to_le_bytes());
            }
            assert_eq!(ct, encrypt_block(pt, &KEY));
        }
    }

    #[test]
    fn workload_scales_with_batch() {
        let a = Aes;
        let w1 = a.workload(1);
        let w256 = a.workload(BATCH);
        assert_eq!(w256.items, 256 * w1.items);
        assert_eq!(w256.input_bytes, w256.items * 16);
        assert_eq!(w1.cycles_per_item, 13);
    }

    #[test]
    fn trace_has_table_locality() {
        let t = Aes.sample_trace();
        // The T-table region (1 KB) dominates the footprint's hot part; the
        // total footprint stays modest.
        assert!(t.footprint_bytes() < 64 * 1024);
        assert!(t.accesses_per_item() > 40.0);
    }
}
