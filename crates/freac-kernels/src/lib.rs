//! The benchmark suite: MachSuite-style kernels plus the handwritten
//! vector kernels the paper evaluates (Sec. V).
//!
//! Eleven kernels cover the paper's compute-, memory-, and logic-bound
//! categories:
//!
//! | id | kernel | character |
//! |----|--------|-----------|
//! | AES  | AES-128 block encryption | logic/LUT bound |
//! | CONV | 2-D convolution, 3x3 taps | compute bound |
//! | DOT  | dot-product engine | memory bound |
//! | FC   | fully-connected layer + ReLU | compute bound |
//! | GEMM | dense matrix multiply PE | compute bound |
//! | KMP  | Knuth-Morris-Pratt string matching | logic bound |
//! | NW   | Needleman-Wunsch alignment cell | logic bound |
//! | SRT  | merge-sort compare-exchange | logic bound |
//! | STN2 | 2-D 5-point stencil | memory bound |
//! | STN3 | 3-D 7-point stencil | memory bound |
//! | VADD | vector add | memory bound |
//!
//! Every kernel provides three synchronized views of the same computation:
//!
//! 1. a **software reference** (what the CPU baseline executes, and the
//!    golden model for verification);
//! 2. an **accelerator circuit** built with the netlist DSL (what FReaC
//!    Cache folds and runs — property tests prove the folded execution
//!    matches the reference bit-for-bit);
//! 3. a **workload descriptor + instruction mix + address trace** (what the
//!    timing models consume).
//!
//! Inputs are scaled 256x in a batched, data-parallel fashion exactly as
//! the paper describes.

pub mod aes;
pub mod conv;
pub mod data;
pub mod dot;
pub mod fc;
pub mod gemm;
pub mod id;
pub mod kmp;
pub mod nw;
pub mod profile;
pub mod srt;
pub mod stn2;
pub mod stn3;
pub mod trace;
pub mod vadd;
pub mod workload;

pub use data::DataGen;
pub use id::{all_kernels, KernelId};
pub use profile::CpuProfile;
pub use trace::TraceSample;
pub use workload::Workload;

use freac_netlist::Netlist;

/// The paper's batch scaling factor ("we scaled the problem by a factor of
/// 256X in a batched fashion").
pub const BATCH: u64 = 256;

/// A benchmark kernel: reference implementation, accelerator circuit, and
/// workload characterization.
pub trait Kernel: Send + Sync {
    /// Which kernel this is.
    fn id(&self) -> KernelId;

    /// The accelerator datapath as an (un-mapped) netlist. Kernels follow
    /// the paper's mapping guidance: a single memory port, no internal
    /// buffers, and no pipelining (logic folding already pipelines
    /// temporally).
    fn circuit(&self) -> Netlist;

    /// The workload at `batch`x scaling (use [`BATCH`] for paper scale).
    fn workload(&self, batch: u64) -> Workload;

    /// Per-item instruction mix of the software reference, for the CPU
    /// timing model.
    fn cpu_profile(&self) -> CpuProfile;

    /// A representative address trace covering a known number of items, for
    /// the cache-hierarchy simulation.
    fn sample_trace(&self) -> TraceSample;
}

/// Constructs the kernel implementation for an id.
pub fn kernel(id: KernelId) -> Box<dyn Kernel> {
    match id {
        KernelId::Aes => Box::new(aes::Aes),
        KernelId::Conv => Box::new(conv::Conv),
        KernelId::Dot => Box::new(dot::Dot),
        KernelId::Fc => Box::new(fc::Fc),
        KernelId::Gemm => Box::new(gemm::Gemm),
        KernelId::Kmp => Box::new(kmp::Kmp),
        KernelId::Nw => Box::new(nw::Nw),
        KernelId::Srt => Box::new(srt::Srt),
        KernelId::Stn2 => Box::new(stn2::Stn2),
        KernelId::Stn3 => Box::new(stn3::Stn3),
        KernelId::Vadd => Box::new(vadd::Vadd),
    }
}
