//! A dependency-free deterministic PRNG and a small property-test loop.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the external `rand`/`proptest` crates are replaced by this minimal
//! local equivalent: a [SplitMix64] generator (full 2^64 period over its
//! state, passes BigCrush as a 64-bit mixer) plus [`cases`], a seeded loop
//! that stands in for property-based test harnesses. Everything is
//! deterministic by construction — the same seed always produces the same
//! stream, which the evaluation harness relies on for reproducible
//! workload data.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// A deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A generator seeded with `seed`. Distinct seeds give uncorrelated
    /// streams; the same seed always gives the same stream.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)` — `bound` itself is never returned —
    /// via the multiply-shift reduction (bias below 2^-32 for any bound that
    /// fits in 32 bits).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero (the range `[0, 0)` holds no values).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(
            bound > 0,
            "Rng64::below: bound must be non-zero (the range [0, 0) is empty)"
        );
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `usize` in `[0, bound)` — `bound` itself is never returned.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero (the range `[0, 0)` holds no values).
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(
            bound > 0,
            "Rng64::index: bound must be non-zero (the range [0, 0) is empty)"
        );
        self.below(bound as u64) as usize
    }

    /// A uniform value in `[lo, hi)`: `lo` is inclusive, `hi` is exclusive,
    /// so `range_u64(a, a + 1)` always returns `a` and `hi` itself is never
    /// returned.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` (the half-open range is empty).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(
            lo < hi,
            "Rng64::range_u64: empty range {lo}..{hi} (lo inclusive, hi exclusive)"
        );
        lo + self.below(hi - lo)
    }

    /// A uniform `u32` in `[lo, hi)`: `lo` inclusive, `hi` exclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` (the half-open range is empty).
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(
            lo < hi,
            "Rng64::range_u32: empty range {lo}..{hi} (lo inclusive, hi exclusive)"
        );
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }

    /// `n` uniform 32-bit words below `limit`.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn words(&mut self, n: usize, limit: u32) -> Vec<u32> {
        assert!(limit > 0, "limit must be positive");
        (0..n).map(|_| self.range_u32(0, limit)).collect()
    }

    /// One element of `choices`, uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty (use [`Self::choose`] for a
    /// non-panicking variant).
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        assert!(
            !choices.is_empty(),
            "Rng64::pick: cannot pick from an empty slice"
        );
        &choices[self.index(choices.len())]
    }

    /// One element of `choices`, uniformly, or `None` when the slice is
    /// empty.
    pub fn choose<'a, T>(&mut self, choices: &'a [T]) -> Option<&'a T> {
        if choices.is_empty() {
            None
        } else {
            Some(&choices[self.index(choices.len())])
        }
    }

    /// Shuffles `items` in place (Fisher–Yates); every permutation is
    /// equally likely and the result is a function of the seed alone.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// An index into `weights` with probability proportional to its weight.
    /// Zero-weight entries are never picked.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or all weights are zero (no pickable
    /// entry).
    pub fn weighted(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        assert!(
            total > 0,
            "Rng64::weighted: weights must be non-empty with a non-zero sum"
        );
        let mut x = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        unreachable!("below(total) is always less than the summed weights")
    }

    /// An index into `weights` with probability proportional to its
    /// (non-negative, finite) float weight — the seeding step of k-medoids++
    /// draws by squared distance, which is naturally a float. Zero-weight
    /// entries are never picked; when every weight is zero the pick falls
    /// back to uniform so callers need no special case for degenerate
    /// inputs (e.g. all-identical signature windows).
    ///
    /// Deterministic: the draw uses 53 uniform bits scaled into `[0, total)`
    /// and a left-to-right prefix walk, all in plain IEEE arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is negative or non-finite.
    pub fn weighted_f64(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "Rng64::weighted_f64: weights must be non-empty"
        );
        let mut total = 0.0f64;
        for &w in weights {
            assert!(
                w.is_finite() && w >= 0.0,
                "Rng64::weighted_f64: weights must be finite and non-negative, got {w}"
            );
            total += w;
        }
        if total <= 0.0 {
            return self.index(weights.len());
        }
        // 53 uniform bits in [0, 1), the full precision of an f64 mantissa.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let mut x = unit * total;
        let mut last_nonzero = 0;
        for (i, &w) in weights.iter().enumerate() {
            if w > 0.0 {
                if x < w {
                    return i;
                }
                last_nonzero = i;
            }
            x -= w;
        }
        // Float prefix-sum round-off can leave a sliver past the last
        // positive weight; land on it rather than a zero-weight entry.
        last_nonzero
    }
}

/// A stable 64-bit seed derived from a string (FNV-1a), for per-name
/// deterministic streams.
pub fn seed_from_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Runs `body` for `n` deterministic cases, each with its own generator.
///
/// This is the local stand-in for a property-test harness: the case index
/// is folded into the seed so every case sees an independent stream, and a
/// failure message can name the case by re-running with the same seed.
pub fn cases(n: usize, seed: u64, mut body: impl FnMut(&mut Rng64)) {
    for case in 0..n {
        let mut rng = Rng64::new(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        body(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = (0..16)
            .map({
                let mut r = Rng64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..16)
            .map({
                let mut r = Rng64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut r = Rng64::new(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.range_u64(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Rng64::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "vanishing odds of all-zero");
    }

    #[test]
    fn seed_from_name_is_stable_and_distinct() {
        assert_eq!(seed_from_name("aes"), seed_from_name("aes"));
        assert_ne!(seed_from_name("aes"), seed_from_name("gemm"));
    }

    #[test]
    fn cases_run_the_requested_count() {
        let mut count = 0;
        cases(32, 5, |_| count += 1);
        assert_eq!(count, 32);
    }

    #[test]
    fn below_is_exclusive_of_the_bound() {
        // A singleton bound pins the exclusivity: [0, 1) only holds 0.
        let mut r = Rng64::new(13);
        for _ in 0..1000 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn range_is_lo_inclusive_hi_exclusive() {
        let mut r = Rng64::new(17);
        // Singleton range: hi is exclusive, so [7, 8) only holds 7.
        for _ in 0..1000 {
            assert_eq!(r.range_u64(7, 8), 7);
            assert_eq!(r.range_u32(7, 8), 7);
        }
        // Both endpoints of the closed interval [5, 8] are reachable and 9
        // (== hi) never appears.
        let mut saw_lo = false;
        let mut saw_hi_minus_one = false;
        for _ in 0..4000 {
            let v = r.range_u32(5, 9);
            assert!((5..9).contains(&v), "{v} outside [5, 9)");
            saw_lo |= v == 5;
            saw_hi_minus_one |= v == 8;
        }
        assert!(saw_lo && saw_hi_minus_one, "both end values reachable");
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn below_zero_bound_panics_with_clear_message() {
        Rng64::new(0).below(0);
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn index_zero_bound_panics_with_clear_message() {
        Rng64::new(0).index(0);
    }

    #[test]
    #[should_panic(expected = "empty range 5..5")]
    fn empty_range_panics_with_clear_message() {
        Rng64::new(0).range_u64(5, 5);
    }

    #[test]
    fn choose_handles_empty_and_matches_pick_semantics() {
        let mut r = Rng64::new(21);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items).unwrap()));
        }
    }

    #[test]
    fn shuffle_is_a_deterministic_permutation() {
        let mut a: Vec<u32> = (0..32).collect();
        let mut b: Vec<u32> = (0..32).collect();
        Rng64::new(99).shuffle(&mut a);
        Rng64::new(99).shuffle(&mut b);
        assert_eq!(a, b, "same seed, same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "no element lost");
        assert_ne!(
            a,
            (0..32).collect::<Vec<_>>(),
            "32 elements virtually never fixed"
        );
    }

    #[test]
    fn weighted_never_picks_zero_weights_and_tracks_proportions() {
        let mut r = Rng64::new(33);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[r.weighted(&[0, 1, 0, 3])] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[3] > counts[1], "weight 3 beats weight 1");
        assert!(counts[1] > 0);
    }

    #[test]
    #[should_panic(expected = "non-zero sum")]
    fn weighted_all_zero_panics_with_clear_message() {
        Rng64::new(0).weighted(&[0, 0]);
    }

    #[test]
    fn weighted_f64_never_picks_zero_weights_and_tracks_proportions() {
        let mut r = Rng64::new(77);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[r.weighted_f64(&[0.0, 0.5, 0.0, 1.5])] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[3] > counts[1], "weight 1.5 beats weight 0.5");
        assert!(counts[1] > 0);
    }

    #[test]
    fn weighted_f64_all_zero_falls_back_to_uniform() {
        let mut r = Rng64::new(5);
        let mut seen = [false; 3];
        for _ in 0..256 {
            seen[r.weighted_f64(&[0.0, 0.0, 0.0])] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn weighted_f64_is_deterministic() {
        let w = [0.25, 1.0, 2.25, 0.125];
        let a: Vec<usize> = {
            let mut r = Rng64::new(9);
            (0..64).map(|_| r.weighted_f64(&w)).collect()
        };
        let b: Vec<usize> = {
            let mut r = Rng64::new(9);
            (0..64).map(|_| r.weighted_f64(&w)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn weighted_f64_rejects_negative_weights() {
        Rng64::new(0).weighted_f64(&[1.0, -0.5]);
    }
}
