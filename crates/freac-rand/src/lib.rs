//! A dependency-free deterministic PRNG and a small property-test loop.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the external `rand`/`proptest` crates are replaced by this minimal
//! local equivalent: a [SplitMix64] generator (full 2^64 period over its
//! state, passes BigCrush as a 64-bit mixer) plus [`cases`], a seeded loop
//! that stands in for property-based test harnesses. Everything is
//! deterministic by construction — the same seed always produces the same
//! stream, which the evaluation harness relies on for reproducible
//! workload data.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// A deterministic 64-bit PRNG (SplitMix64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A generator seeded with `seed`. Distinct seeds give uncorrelated
    /// streams; the same seed always gives the same stream.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, bound)` via the multiply-shift reduction
    /// (bias below 2^-32 for any bound that fits in 32 bits).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }

    /// `n` uniform 32-bit words below `limit`.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn words(&mut self, n: usize, limit: u32) -> Vec<u32> {
        assert!(limit > 0, "limit must be positive");
        (0..n).map(|_| self.range_u32(0, limit)).collect()
    }

    /// One element of `choices`, uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        assert!(!choices.is_empty(), "choices must be non-empty");
        &choices[self.index(choices.len())]
    }
}

/// A stable 64-bit seed derived from a string (FNV-1a), for per-name
/// deterministic streams.
pub fn seed_from_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Runs `body` for `n` deterministic cases, each with its own generator.
///
/// This is the local stand-in for a property-test harness: the case index
/// is folded into the seed so every case sees an independent stream, and a
/// failure message can name the case by re-running with the same seed.
pub fn cases(n: usize, seed: u64, mut body: impl FnMut(&mut Rng64)) {
    for case in 0..n {
        let mut rng = Rng64::new(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        body(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = (0..16)
            .map({
                let mut r = Rng64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..16)
            .map({
                let mut r = Rng64::new(42);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut r = Rng64::new(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.range_u64(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Rng64::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "vanishing odds of all-zero");
    }

    #[test]
    fn seed_from_name_is_stable_and_distinct() {
        assert_eq!(seed_from_name("aes"), seed_from_name("aes"));
        assert_ne!(seed_from_name("aes"), seed_from_name("gemm"));
    }

    #[test]
    fn cases_run_the_requested_count() {
        let mut count = 0;
        cases(32, 5, |_| count += 1);
        assert_eq!(count, 32);
    }
}
