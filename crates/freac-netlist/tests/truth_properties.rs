//! Algebraic properties of truth tables — the foundations the Shannon
//! technology mapper rests on.

use freac_netlist::TruthTable;
use proptest::prelude::*;

/// Strategy: a random truth table of 1..=8 inputs.
fn table() -> impl Strategy<Value = TruthTable> {
    (1usize..=8, any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(n, a, b, c, d)| {
            let words = [a, b, c, d];
            TruthTable::from_fn(n, |row| (words[row / 64] >> (row % 64)) & 1 == 1)
                .expect("n <= 8 is valid")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn shannon_expansion_is_an_identity(t in table(), var_seed in any::<usize>()) {
        // f(x) == (x_v ? f|x_v=1 : f|x_v=0) for every variable v and row.
        let var = var_seed % t.inputs();
        let (lo, hi) = t.cofactors(var);
        for row in 0..t.rows() {
            let bit = (row >> var) & 1 == 1;
            // Remove variable `var` from the row index for the cofactor.
            let low_mask = (1usize << var) - 1;
            let reduced = (row & low_mask) | ((row & !(low_mask | (1 << var))) >> 1);
            let expect = if bit { hi.get(reduced) } else { lo.get(reduced) };
            prop_assert_eq!(t.get(row), expect, "row {}, var {}", row, var);
        }
    }

    #[test]
    fn support_reduction_preserves_the_function(t in table()) {
        let (reduced, map) = t.support_reduce();
        for row in 0..t.rows() {
            let mut rrow = 0usize;
            for (new_pos, &orig) in map.iter().enumerate() {
                if (row >> orig) & 1 == 1 {
                    rrow |= 1 << new_pos;
                }
            }
            prop_assert_eq!(t.get(row), reduced.get(rrow));
        }
    }

    #[test]
    fn support_reduction_is_idempotent(t in table()) {
        let (once, _) = t.support_reduce();
        let (twice, map) = once.support_reduce();
        prop_assert_eq!(once.inputs(), twice.inputs());
        prop_assert_eq!(map, (0..once.inputs()).collect::<Vec<_>>());
    }

    #[test]
    fn reduced_tables_depend_on_every_input(t in table()) {
        let (reduced, _) = t.support_reduce();
        for v in 0..reduced.inputs() {
            if reduced.inputs() > 0 && reduced.is_constant().is_none() {
                // Every surviving input must be live.
                prop_assert!(
                    !reduced.is_independent_of(v),
                    "input {v} survived support reduction but is dead"
                );
            }
        }
    }

    #[test]
    fn cofactor_distance_zero_iff_independent(t in table(), var_seed in any::<usize>()) {
        let var = var_seed % t.inputs();
        prop_assert_eq!(t.cofactor_distance(var) == 0, t.is_independent_of(var));
    }

    #[test]
    fn constant_detection_matches_rows(t in table()) {
        match t.is_constant() {
            Some(v) => {
                for row in 0..t.rows() {
                    prop_assert_eq!(t.get(row), v);
                }
            }
            None => {
                let first = t.get(0);
                prop_assert!((0..t.rows()).any(|r| t.get(r) != first));
            }
        }
    }
}
