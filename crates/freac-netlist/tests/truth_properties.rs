//! Algebraic properties of truth tables — the foundations the Shannon
//! technology mapper rests on. Driven by deterministic seeded case loops
//! (`freac_rand::cases`).

use freac_netlist::TruthTable;
use freac_rand::{cases, Rng64};

/// A random truth table of 1..=8 inputs.
fn table(rng: &mut Rng64) -> TruthTable {
    let n = 1 + rng.index(8);
    let words = [
        rng.next_u64(),
        rng.next_u64(),
        rng.next_u64(),
        rng.next_u64(),
    ];
    TruthTable::from_fn(n, |row| (words[row / 64] >> (row % 64)) & 1 == 1).expect("n <= 8 is valid")
}

#[test]
fn shannon_expansion_is_an_identity() {
    cases(128, 0x7841, |rng| {
        // f(x) == (x_v ? f|x_v=1 : f|x_v=0) for every variable v and row.
        let t = table(rng);
        let var = rng.index(t.inputs());
        let (lo, hi) = t.cofactors(var);
        for row in 0..t.rows() {
            let bit = (row >> var) & 1 == 1;
            // Remove variable `var` from the row index for the cofactor.
            let low_mask = (1usize << var) - 1;
            let reduced = (row & low_mask) | ((row & !(low_mask | (1 << var))) >> 1);
            let expect = if bit {
                hi.get(reduced)
            } else {
                lo.get(reduced)
            };
            assert_eq!(t.get(row), expect, "row {row}, var {var}");
        }
    });
}

#[test]
fn support_reduction_preserves_the_function() {
    cases(128, 0x7842, |rng| {
        let t = table(rng);
        let (reduced, map) = t.support_reduce();
        for row in 0..t.rows() {
            let mut rrow = 0usize;
            for (new_pos, &orig) in map.iter().enumerate() {
                if (row >> orig) & 1 == 1 {
                    rrow |= 1 << new_pos;
                }
            }
            assert_eq!(t.get(row), reduced.get(rrow));
        }
    });
}

#[test]
fn support_reduction_is_idempotent() {
    cases(128, 0x7843, |rng| {
        let t = table(rng);
        let (once, _) = t.support_reduce();
        let (twice, map) = once.support_reduce();
        assert_eq!(once.inputs(), twice.inputs());
        assert_eq!(map, (0..once.inputs()).collect::<Vec<_>>());
    });
}

#[test]
fn reduced_tables_depend_on_every_input() {
    cases(128, 0x7844, |rng| {
        let t = table(rng);
        let (reduced, _) = t.support_reduce();
        for v in 0..reduced.inputs() {
            if reduced.inputs() > 0 && reduced.is_constant().is_none() {
                // Every surviving input must be live.
                assert!(
                    !reduced.is_independent_of(v),
                    "input {v} survived support reduction but is dead"
                );
            }
        }
    });
}

#[test]
fn cofactor_distance_zero_iff_independent() {
    cases(128, 0x7845, |rng| {
        let t = table(rng);
        let var = rng.index(t.inputs());
        assert_eq!(t.cofactor_distance(var) == 0, t.is_independent_of(var));
    });
}

#[test]
fn constant_detection_matches_rows() {
    cases(128, 0x7846, |rng| {
        let t = table(rng);
        match t.is_constant() {
            Some(v) => {
                for row in 0..t.rows() {
                    assert_eq!(t.get(row), v);
                }
            }
            None => {
                let first = t.get(0);
                assert!((0..t.rows()).any(|r| t.get(r) != first));
            }
        }
    });
}
