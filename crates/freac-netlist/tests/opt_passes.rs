//! Pass-unit integration suite: hand-built netlists with *known* redundancy
//! run through the public optimization API, asserting exact LUT deltas,
//! per-pass attribution, idempotence, and fixpoint termination — the
//! black-box counterpart to the white-box unit tests inside each pass.

use freac_netlist::builder::CircuitBuilder;
use freac_netlist::opt::DEFAULT_MAX_ITERATIONS;
use freac_netlist::{
    assert_equivalent_on, optimize, NetlistStats, OptLevel, OptOptions, PassKind, PassManager,
    Value,
};

fn full() -> OptOptions {
    OptOptions::at(OptLevel::Full)
}

#[test]
fn cse_removes_exactly_the_duplicate_cone() {
    // Two bit-identical xor cones feeding two outputs: exactly one LUT is
    // redundant, and CSE (not any other pass) must claim the rewrite.
    let mut b = CircuitBuilder::new("twins");
    let a = b.word_input("a", 2);
    let x = b.xor(a.bit(0), a.bit(1));
    let y = b.xor(a.bit(0), a.bit(1));
    b.bit_output("x", x);
    b.bit_output("y", y);
    let n = b.finish().unwrap();

    let (opt, report) = optimize(&n, full()).unwrap();
    assert_eq!(report.before.luts, 2);
    assert_eq!(report.after.luts, 1);
    assert_eq!(report.rewrites_for(PassKind::Cse), 1);
    assert_eq!(NetlistStats::of(&opt).luts, 1);
    let vectors: Vec<Vec<Value>> = (0..4u32).map(|i| vec![Value::Word(i)]).collect();
    assert_equivalent_on(&n, &opt, &vectors, 1);
}

#[test]
fn constprop_folds_a_constant_cone_to_nothing() {
    // or(and(x, false), xor(y, false)) is just y: constant propagation
    // collapses every LUT and the output becomes a plain rewire.
    let mut b = CircuitBuilder::new("constcone");
    let x = b.bit_input("x");
    let y = b.bit_input("y");
    let f = b.const_bit(false);
    let dead = b.and(x, f);
    let id = b.xor(y, f);
    let out = b.or(dead, id);
    b.bit_output("out", out);
    let n = b.finish().unwrap();

    let (opt, report) = optimize(&n, full()).unwrap();
    assert_eq!(report.after.luts, 0, "the whole cone folds away");
    assert!(report.rewrites_for(PassKind::ConstProp) >= 2);
    let vectors: Vec<Vec<Value>> = (0..4u32)
        .map(|i| vec![Value::Bit(i & 1 == 1), Value::Bit(i & 2 == 2)])
        .collect();
    assert_equivalent_on(&n, &opt, &vectors, 1);
}

#[test]
fn input_prune_collapses_a_self_xor() {
    // xor(a, a) is constant false; only InputPrune sees it (the two pins
    // are the same driver, not a constant).
    let mut b = CircuitBuilder::new("selfxor");
    let a = b.bit_input("a");
    let z = b.xor(a, a);
    b.bit_output("z", z);
    let n = b.finish().unwrap();

    let (opt, report) = optimize(&n, full()).unwrap();
    assert_eq!(report.after.luts, 0);
    assert!(report.rewrites_for(PassKind::InputPrune) >= 1);
    assert_equivalent_on(
        &n,
        &opt,
        &[vec![Value::Bit(false)], vec![Value::Bit(true)]],
        1,
    );
}

#[test]
fn repack_packs_a_reduction_tree_to_one_lut() {
    // reduce_xor over 4 bits builds 3 xor2 LUTs; at k=4 the whole tree is
    // one 4-input function. Exact delta: 3 -> 1.
    let mut b = CircuitBuilder::new("xor4");
    let a = b.word_input("a", 4);
    let bits: Vec<_> = (0..4).map(|i| a.bit(i)).collect();
    let r = b.reduce_xor(&bits);
    b.bit_output("r", r);
    let n = b.finish().unwrap();

    let (opt, report) = optimize(&n, full()).unwrap();
    assert_eq!(report.before.luts, 3);
    assert_eq!(report.after.luts, 1);
    assert_eq!(report.rewrites_for(PassKind::Repack), 2);
    let vectors: Vec<Vec<Value>> = (0..16u32).map(|i| vec![Value::Word(i)]).collect();
    assert_equivalent_on(&n, &opt, &vectors, 1);
}

#[test]
fn dce_sweeps_exactly_the_dangling_cone() {
    // A two-LUT cone nothing reads: DCE removes exactly those two nodes
    // and leaves the live path untouched.
    let mut b = CircuitBuilder::new("dangling");
    let a = b.word_input("a", 2);
    let live = b.and(a.bit(0), a.bit(1));
    let d1 = b.or(a.bit(0), a.bit(1));
    let _d2 = b.not(d1);
    b.bit_output("live", live);
    let n = b.finish().unwrap();

    let (_, report) = PassManager::new([PassKind::Dce], 4).run(&n).unwrap();
    assert_eq!(report.before.luts - report.after.luts, 2);
    assert_eq!(report.rewrites_for(PassKind::Dce), 2);
}

#[test]
fn single_pass_managers_preserve_function() {
    // Each pass alone, applied to one circuit containing every kind of
    // redundancy at once, must keep the function intact.
    let build = || {
        let mut b = CircuitBuilder::new("mixed");
        let a = b.word_input("a", 8);
        let f = b.const_bit(false);
        let t1 = b.xor(a.bit(0), a.bit(1));
        let t2 = b.xor(a.bit(0), a.bit(1)); // CSE fodder
        let c = b.or(t1, f); // ConstProp fodder
        let s = b.xor(a.bit(2), a.bit(2)); // InputPrune fodder
        let bits: Vec<_> = (3..8).map(|i| a.bit(i)).collect();
        let tree = b.reduce_xor(&bits); // Repack fodder
        let _dead = b.and(t2, tree); // DCE fodder (unread)
        let m1 = b.or(c, s);
        let out = b.xor(m1, tree);
        b.bit_output("out", out);
        b.finish().unwrap()
    };
    let n = build();
    let vectors: Vec<Vec<Value>> = (0..256u32).map(|i| vec![Value::Word(i)]).collect();
    for pass in [
        PassKind::Cse,
        PassKind::ConstProp,
        PassKind::InputPrune,
        PassKind::Repack,
        PassKind::Dce,
    ] {
        let (opt, report) = PassManager::new([pass], 4).run(&n).unwrap();
        assert!(
            report.after.luts <= report.before.luts,
            "{pass:?} grew the netlist"
        );
        assert_equivalent_on(&n, &opt, &vectors, 1);
    }
    // And the whole pipeline shrinks it strictly.
    let (opt, report) = optimize(&n, full()).unwrap();
    assert!(report.after.luts < report.before.luts);
    assert_equivalent_on(&n, &opt, &vectors, 1);
}

#[test]
fn pipeline_is_idempotent_on_mixed_redundancy() {
    let mut b = CircuitBuilder::new("idem");
    let a = b.word_input("a", 8);
    let x = b.xor(a.bit(0), a.bit(1));
    let y = b.xor(a.bit(0), a.bit(1));
    let bits: Vec<_> = (2..8).map(|i| a.bit(i)).collect();
    let tree = b.reduce_xor(&bits);
    let m = b.or(x, y);
    let out = b.and(m, tree);
    b.bit_output("out", out);
    let n = b.finish().unwrap();

    let (once, r1) = optimize(&n, full()).unwrap();
    assert!(r1.total_rewrites() > 0);
    let (twice, r2) = optimize(&once, full()).unwrap();
    assert_eq!(r2.total_rewrites(), 0, "second run must be a no-op");
    assert_eq!(NetlistStats::of(&once).luts, NetlistStats::of(&twice).luts);
    let vectors: Vec<Vec<Value>> = (0..256u32).map(|i| vec![Value::Word(i)]).collect();
    assert_equivalent_on(&n, &twice, &vectors, 1);
}

#[test]
fn pipeline_reaches_fixpoint_within_the_cap_on_deep_circuits() {
    // A wide sequential accumulator circuit with layered redundancy: the
    // pipeline must converge (a final zero-rewrite round) well inside the
    // iteration cap, not just stop at it.
    let mut b = CircuitBuilder::new("deep");
    let a = b.word_input("a", 16);
    let (q, h) = b.word_reg(0, 16);
    let s1 = b.add(&q, &a);
    let s2 = b.add(&q, &a); // duplicate adder
    let pick = b.xor(a.bit(0), a.bit(0)); // constant-false select
    let next = b.mux_word(pick, &s1, &s2);
    b.connect_word_reg(h, &next);
    b.word_output("q", &q);
    let n = b.finish().unwrap();

    let (opt, report) = optimize(&n, full()).unwrap();
    assert!(
        report.iterations <= DEFAULT_MAX_ITERATIONS,
        "ran {} rounds",
        report.iterations
    );
    let last_round: usize = report
        .passes
        .iter()
        .filter(|d| d.iteration == report.iterations)
        .map(|d| d.rewrites)
        .sum();
    assert_eq!(last_round, 0, "must end on a zero-rewrite round");
    // The duplicate adder and the constant mux must both be gone: only one
    // adder's worth of LUTs can survive.
    assert!(report.after.luts * 2 <= report.before.luts);
    let vectors: Vec<Vec<Value>> = (0..32u32).map(|i| vec![Value::Word(i * 4099)]).collect();
    assert_equivalent_on(&n, &opt, &vectors, 4);
}

#[test]
fn off_level_is_the_identity() {
    let mut b = CircuitBuilder::new("noop");
    let a = b.word_input("a", 4);
    let x = b.xor(a.bit(0), a.bit(1));
    let y = b.xor(a.bit(0), a.bit(1));
    let o = b.or(x, y);
    b.bit_output("o", o);
    let n = b.finish().unwrap();
    let (opt, report) = optimize(&n, OptOptions::at(OptLevel::Off)).unwrap();
    assert_eq!(report.total_rewrites(), 0);
    assert_eq!(opt.len(), n.len(), "Off must not touch the netlist");
}
