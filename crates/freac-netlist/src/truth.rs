//! Truth tables of up to 16 inputs.
//!
//! A [`TruthTable`] stores the output column of a Boolean function of `n`
//! inputs as a packed bit vector of length `2^n`. Input index 0 is the least
//! significant bit of the row index, so row `r` corresponds to the assignment
//! where input `i` takes value `(r >> i) & 1`.

use crate::error::NetlistError;

/// Maximum number of inputs a single truth-table node may have.
///
/// Wide nodes are only an intermediate representation; technology mapping
/// decomposes them into K-input LUTs before folding.
pub const MAX_TABLE_INPUTS: usize = 16;

/// The output column of a Boolean function with up to [`MAX_TABLE_INPUTS`]
/// inputs.
///
/// ```
/// use freac_netlist::TruthTable;
///
/// let xor = TruthTable::xor2();
/// assert!(xor.eval(0b01) && xor.eval(0b10));
/// assert!(!xor.eval(0b00) && !xor.eval(0b11));
/// let (lo, hi) = xor.cofactors(0); // Shannon expansion around input 0
/// assert_eq!(lo, TruthTable::identity());
/// assert_eq!(hi, TruthTable::not1());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    inputs: usize,
    /// Packed output bits; bit `r` of the vector is the function value on
    /// row `r`. `words.len() == max(1, 2^inputs / 64)`.
    words: Vec<u64>,
}

impl TruthTable {
    /// Creates the constant-false function of `inputs` variables.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::TruthTableTooWide`] if `inputs` exceeds
    /// [`MAX_TABLE_INPUTS`].
    pub fn constant(inputs: usize, value: bool) -> Result<Self, NetlistError> {
        if inputs > MAX_TABLE_INPUTS {
            return Err(NetlistError::TruthTableTooWide {
                inputs,
                max: MAX_TABLE_INPUTS,
            });
        }
        let rows = 1usize << inputs;
        let nwords = rows.div_ceil(64);
        let fill = if value { u64::MAX } else { 0 };
        let mut words = vec![fill; nwords.max(1)];
        if value && rows < 64 {
            words[0] = (1u64 << rows) - 1;
        }
        Ok(TruthTable { inputs, words })
    }

    /// Builds a table by evaluating `f` on every row.
    ///
    /// `f` receives the row index; input `i`'s value on that row is
    /// `(row >> i) & 1 == 1`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::TruthTableTooWide`] if `inputs` exceeds
    /// [`MAX_TABLE_INPUTS`].
    pub fn from_fn(inputs: usize, mut f: impl FnMut(usize) -> bool) -> Result<Self, NetlistError> {
        let mut t = TruthTable::constant(inputs, false)?;
        for row in 0..(1usize << inputs) {
            if f(row) {
                t.set(row, true);
            }
        }
        Ok(t)
    }

    /// The identity function of one input.
    pub fn identity() -> Self {
        TruthTable::from_fn(1, |r| r & 1 == 1).expect("1 input is always valid")
    }

    /// Two-input AND.
    pub fn and2() -> Self {
        TruthTable::from_fn(2, |r| r == 3).expect("2 inputs is always valid")
    }

    /// Two-input OR.
    pub fn or2() -> Self {
        TruthTable::from_fn(2, |r| r != 0).expect("2 inputs is always valid")
    }

    /// Two-input XOR.
    pub fn xor2() -> Self {
        TruthTable::from_fn(2, |r| (r.count_ones() & 1) == 1).expect("2 inputs is always valid")
    }

    /// One-input NOT.
    pub fn not1() -> Self {
        TruthTable::from_fn(1, |r| r & 1 == 0).expect("1 input is always valid")
    }

    /// Three-input multiplexer: inputs are `(sel, a, b)`; returns `b` when
    /// `sel` is true, otherwise `a`.
    pub fn mux3() -> Self {
        // input 0 = sel, input 1 = a (sel=0), input 2 = b (sel=1)
        TruthTable::from_fn(3, |r| {
            let sel = r & 1 == 1;
            let a = (r >> 1) & 1 == 1;
            let b = (r >> 2) & 1 == 1;
            if sel {
                b
            } else {
                a
            }
        })
        .expect("3 inputs is always valid")
    }

    /// Number of inputs of the function.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of rows (`2^inputs`).
    pub fn rows(&self) -> usize {
        1usize << self.inputs
    }

    /// The packed output column: bit `r % 64` of word `r / 64` is the
    /// function value on row `r`. Execution-plan compilation flattens these
    /// words into its dense table pool.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Value of the function on `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 2^inputs`.
    pub fn get(&self, row: usize) -> bool {
        assert!(row < self.rows(), "row {row} out of range");
        (self.words[row / 64] >> (row % 64)) & 1 == 1
    }

    /// Sets the function value on `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 2^inputs`.
    pub fn set(&mut self, row: usize, value: bool) {
        assert!(row < self.rows(), "row {row} out of range");
        let mask = 1u64 << (row % 64);
        if value {
            self.words[row / 64] |= mask;
        } else {
            self.words[row / 64] &= !mask;
        }
    }

    /// Evaluates the function on the assignment packed in `assignment`
    /// (input `i` = bit `i`).
    pub fn eval(&self, assignment: usize) -> bool {
        self.get(assignment & (self.rows() - 1))
    }

    /// The positive and negative cofactors with respect to input `var`:
    /// `(f | var=0, f | var=1)`. Both cofactors have one fewer input; inputs
    /// above `var` shift down by one.
    ///
    /// # Panics
    ///
    /// Panics if `var >= inputs` or the table has no inputs.
    pub fn cofactors(&self, var: usize) -> (TruthTable, TruthTable) {
        assert!(self.inputs > 0, "cannot cofactor a 0-input table");
        assert!(var < self.inputs, "variable {var} out of range");
        let n = self.inputs - 1;
        let mut lo = TruthTable::constant(n, false).expect("narrower table is valid");
        let mut hi = TruthTable::constant(n, false).expect("narrower table is valid");
        let low_mask = (1usize << var) - 1;
        for row in 0..(1usize << n) {
            let lower = row & low_mask;
            let upper = (row & !low_mask) << 1;
            let base = upper | lower;
            lo.set(row, self.get(base));
            hi.set(row, self.get(base | (1 << var)));
        }
        (lo, hi)
    }

    /// Returns `true` if the function does not depend on input `var`.
    pub fn is_independent_of(&self, var: usize) -> bool {
        let (lo, hi) = self.cofactors(var);
        lo == hi
    }

    /// Removes inputs the function does not depend on, returning the reduced
    /// table and, for each remaining input, the index of the original input
    /// it corresponds to.
    pub fn support_reduce(&self) -> (TruthTable, Vec<usize>) {
        let mut table = self.clone();
        let mut map: Vec<usize> = (0..self.inputs).collect();
        let mut var = 0;
        while var < table.inputs {
            if table.inputs > 0 && table.is_independent_of(var) {
                let (lo, _) = table.cofactors(var);
                table = lo;
                map.remove(var);
            } else {
                var += 1;
            }
        }
        (table, map)
    }

    /// Returns `true` if the function is constant (after support reduction it
    /// would have zero inputs).
    pub fn is_constant(&self) -> Option<bool> {
        let first = self.get(0);
        for row in 1..self.rows() {
            if self.get(row) != first {
                return None;
            }
        }
        Some(first)
    }

    /// Counts how many rows differ between the two cofactors of `var`; a
    /// rough binateness measure used by the mapper to pick split variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= inputs`.
    pub fn cofactor_distance(&self, var: usize) -> usize {
        let (lo, hi) = self.cofactors(var);
        let mut d = 0;
        for row in 0..lo.rows() {
            if lo.get(row) != hi.get(row) {
                d += 1;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_tables() {
        let f = TruthTable::constant(3, false).unwrap();
        let t = TruthTable::constant(3, true).unwrap();
        for r in 0..8 {
            assert!(!f.get(r));
            assert!(t.get(r));
        }
        assert_eq!(f.is_constant(), Some(false));
        assert_eq!(t.is_constant(), Some(true));
    }

    #[test]
    fn too_wide_rejected() {
        assert!(matches!(
            TruthTable::constant(17, false),
            Err(NetlistError::TruthTableTooWide {
                inputs: 17,
                max: 16
            })
        ));
    }

    #[test]
    fn basic_gates() {
        let and = TruthTable::and2();
        assert!(!and.eval(0b00) && !and.eval(0b01) && !and.eval(0b10) && and.eval(0b11));
        let or = TruthTable::or2();
        assert!(!or.eval(0b00) && or.eval(0b01) && or.eval(0b10) && or.eval(0b11));
        let xor = TruthTable::xor2();
        assert!(!xor.eval(0b00) && xor.eval(0b01) && xor.eval(0b10) && !xor.eval(0b11));
        let not = TruthTable::not1();
        assert!(not.eval(0) && !not.eval(1));
    }

    #[test]
    fn mux_semantics() {
        let mux = TruthTable::mux3();
        for a in 0..2usize {
            for b in 0..2usize {
                // sel = 0 -> a
                assert_eq!(mux.eval((b << 2) | (a << 1)), a == 1);
                // sel = 1 -> b
                assert_eq!(mux.eval((b << 2) | (a << 1) | 1), b == 1);
            }
        }
    }

    #[test]
    fn cofactors_of_xor() {
        let xor = TruthTable::xor2();
        let (lo, hi) = xor.cofactors(0);
        // xor | x0=0 = x1 ; xor | x0=1 = !x1
        assert_eq!(lo, TruthTable::identity());
        assert_eq!(hi, TruthTable::not1());
    }

    #[test]
    fn cofactors_wide_table() {
        // f(x0..x4) = x3, cofactor on x1 should still be x2 in the reduced
        // numbering (x3 shifts down past removed x1).
        let f = TruthTable::from_fn(5, |r| (r >> 3) & 1 == 1).unwrap();
        let (lo, hi) = f.cofactors(1);
        assert_eq!(lo, hi);
        for r in 0..16 {
            assert_eq!(lo.get(r), (r >> 2) & 1 == 1);
        }
    }

    #[test]
    fn support_reduction_drops_dead_inputs() {
        // f(x0, x1, x2) = x2 only.
        let f = TruthTable::from_fn(3, |r| (r >> 2) & 1 == 1).unwrap();
        let (g, map) = f.support_reduce();
        assert_eq!(g.inputs(), 1);
        assert_eq!(map, vec![2]);
        assert_eq!(g, TruthTable::identity());
    }

    #[test]
    fn support_reduction_keeps_live_inputs() {
        let f = TruthTable::from_fn(4, |r| (r & 1 == 1) ^ ((r >> 3) & 1 == 1)).unwrap();
        let (g, map) = f.support_reduce();
        assert_eq!(g.inputs(), 2);
        assert_eq!(map, vec![0, 3]);
        assert_eq!(g, TruthTable::xor2());
    }

    #[test]
    fn sixteen_input_table_round_trip() {
        let f = TruthTable::from_fn(16, |r| r.count_ones() % 3 == 0).unwrap();
        for r in [0usize, 1, 2, 65535, 32768, 12345] {
            assert_eq!(f.get(r), r.count_ones() % 3 == 0);
        }
    }

    #[test]
    fn cofactor_distance_measures_dependence() {
        let xor = TruthTable::xor2();
        assert_eq!(xor.cofactor_distance(0), 2);
        let f = TruthTable::from_fn(2, |r| r & 1 == 1).unwrap(); // depends only on x0
        assert_eq!(f.cofactor_distance(1), 0);
    }
}
