//! Netlist export: BLIF (for interoperability with academic CAD flows like
//! VTR/ABC) and Graphviz DOT (for inspection).

use std::fmt::Write as _;

use crate::graph::{Netlist, NodeId, NodeKind};

/// Renders the netlist in Berkeley Logic Interchange Format.
///
/// Word-level nodes (MAC, pack/unpack, word I/O) have no direct BLIF
/// equivalent; they are emitted as `.subckt` instances so downstream tools
/// can treat them as black boxes — the same convention VTR uses for DSP
/// blocks.
pub fn to_blif(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", sanitize(netlist.name()));

    let sig = |id: NodeId| format!("n{}", id.0);

    let mut ins: Vec<String> = Vec::new();
    let mut outs: Vec<String> = Vec::new();
    for (i, node) in netlist.nodes().iter().enumerate() {
        match node.kind {
            NodeKind::BitInput { .. } | NodeKind::WordInput { .. } => {
                ins.push(sig(NodeId(i as u32)));
            }
            NodeKind::BitOutput { .. } | NodeKind::WordOutput { .. } => {
                outs.push(sig(NodeId(i as u32)));
            }
            _ => {}
        }
    }
    let _ = writeln!(out, ".inputs {}", ins.join(" "));
    let _ = writeln!(out, ".outputs {}", outs.join(" "));

    for (i, node) in netlist.nodes().iter().enumerate() {
        let me = sig(NodeId(i as u32));
        match &node.kind {
            NodeKind::BitInput { .. } | NodeKind::WordInput { .. } => {}
            NodeKind::ConstBit(v) => {
                let _ = writeln!(out, ".names {me}");
                if *v {
                    let _ = writeln!(out, "1");
                }
            }
            NodeKind::ConstWord(v) => {
                let _ = writeln!(out, ".subckt const_word value={v:#x} out={me}");
            }
            NodeKind::Lut(t) => {
                let operands: Vec<String> = node.inputs.iter().map(|&x| sig(x)).collect();
                let _ = writeln!(out, ".names {} {me}", operands.join(" "));
                for row in 0..t.rows() {
                    if t.get(row) {
                        let mut cube = String::new();
                        for bit in 0..t.inputs() {
                            cube.push(if (row >> bit) & 1 == 1 { '1' } else { '0' });
                        }
                        let _ = writeln!(out, "{cube} 1");
                    }
                }
            }
            NodeKind::Ff { init } => {
                let _ = writeln!(
                    out,
                    ".latch {} {me} re clk {}",
                    sig(node.inputs[0]),
                    u8::from(*init)
                );
            }
            NodeKind::WordReg { init } => {
                let _ = writeln!(
                    out,
                    ".subckt word_reg d={} q={me} init={init:#x}",
                    sig(node.inputs[0])
                );
            }
            NodeKind::Mac => {
                let _ = writeln!(
                    out,
                    ".subckt mac32 a={} b={} acc={} out={me}",
                    sig(node.inputs[0]),
                    sig(node.inputs[1]),
                    sig(node.inputs[2])
                );
            }
            NodeKind::Pack => {
                let operands: Vec<String> = node
                    .inputs
                    .iter()
                    .enumerate()
                    .map(|(b, &x)| format!("b{b}={}", sig(x)))
                    .collect();
                let _ = writeln!(out, ".subckt pack {} out={me}", operands.join(" "));
            }
            NodeKind::Unpack { bit } => {
                let _ = writeln!(
                    out,
                    ".subckt unpack word={} bit={bit} out={me}",
                    sig(node.inputs[0])
                );
            }
            NodeKind::BitOutput { .. } | NodeKind::WordOutput { .. } => {
                // BLIF outputs are nets; alias via a buffer table.
                let _ = writeln!(out, ".names {} {me}", sig(node.inputs[0]));
                let _ = writeln!(out, "1 1");
            }
        }
    }
    let _ = writeln!(out, ".end");
    out
}

/// Renders the netlist as a Graphviz digraph.
pub fn to_dot(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(netlist.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    for (i, node) in netlist.nodes().iter().enumerate() {
        let shape = match node.kind {
            NodeKind::BitInput { .. } | NodeKind::WordInput { .. } => "invtriangle",
            NodeKind::BitOutput { .. } | NodeKind::WordOutput { .. } => "triangle",
            NodeKind::Ff { .. } | NodeKind::WordReg { .. } => "box3d",
            NodeKind::Mac => "doubleoctagon",
            _ => "box",
        };
        let _ = writeln!(
            out,
            "  n{i} [label=\"n{i}\\n{}\" shape={shape}];",
            node.kind.mnemonic()
        );
        for &inp in &node.inputs {
            let _ = writeln!(out, "  n{} -> n{i};", inp.0);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    fn sample() -> Netlist {
        let mut b = CircuitBuilder::new("blif sample");
        let a = b.word_input("a", 4);
        let c = b.word_input("b", 4);
        let s = b.add(&a, &c);
        let z = b.const_word(0, 32);
        let a32 = b.resize(&a, 32);
        let c32 = b.resize(&c, 32);
        let m = b.mac(&a32, &c32, &z);
        let (q, h) = b.ff(false);
        let d = b.xor(q, s.bit(0));
        b.connect_ff(h, d);
        b.word_output("s", &s);
        b.word_output("m", &m);
        b.bit_output("q", q);
        b.finish().unwrap()
    }

    #[test]
    fn blif_has_model_io_and_tables() {
        let s = to_blif(&sample());
        assert!(s.starts_with(".model blif_sample\n"));
        assert!(s.contains(".inputs "));
        assert!(s.contains(".outputs "));
        assert!(s.contains(".names "));
        assert!(s.contains(".latch "));
        assert!(s.contains(".subckt mac32 "));
        assert!(s.trim_end().ends_with(".end"));
    }

    #[test]
    fn blif_lut_cubes_match_truth_table() {
        // xor2: exactly two ON-set cubes: 10 and 01.
        let mut b = CircuitBuilder::new("x");
        let a = b.word_input("a", 2);
        let x = b.xor(a.bit(0), a.bit(1));
        b.bit_output("x", x);
        let s = to_blif(&b.finish().unwrap());
        assert!(s.contains("10 1"));
        assert!(s.contains("01 1"));
        assert!(!s.contains("11 1"));
    }

    #[test]
    fn dot_renders_every_node_and_edge() {
        let n = sample();
        let s = to_dot(&n);
        assert!(s.starts_with("digraph"));
        for i in 0..n.len() {
            assert!(s.contains(&format!("n{i} [label=")), "node {i} missing");
        }
        let edges: usize = n.nodes().iter().map(|nd| nd.inputs.len()).sum();
        assert_eq!(s.matches(" -> ").count(), edges);
    }
}
