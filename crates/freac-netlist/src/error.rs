//! Error types for netlist construction, mapping, and evaluation.

use std::fmt;

use crate::graph::NodeId;

/// Errors produced while building, transforming, or evaluating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A combinational cycle was found involving the given node.
    ///
    /// Combinational loops are illegal; sequential feedback must go through a
    /// flip-flop node, which breaks the cycle for scheduling purposes.
    CombinationalCycle(NodeId),
    /// A node referenced an operand of the wrong signal type (bit vs word).
    TypeMismatch {
        /// The node whose operand was mistyped.
        node: NodeId,
        /// Human-readable description of the expected operand shape.
        expected: &'static str,
    },
    /// A node has a different number of inputs than its kind requires.
    ArityMismatch {
        /// The offending node.
        node: NodeId,
        /// Number of inputs the node kind requires.
        expected: usize,
        /// Number of inputs actually connected.
        found: usize,
    },
    /// A truth table was requested with an unsupported number of inputs.
    TruthTableTooWide {
        /// Requested input count.
        inputs: usize,
        /// Maximum supported input count.
        max: usize,
    },
    /// The number of primary input values supplied to the evaluator does not
    /// match the netlist's primary input count.
    InputCountMismatch {
        /// Number of primary inputs the netlist declares.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// A primary input value had the wrong signal type.
    InputTypeMismatch {
        /// Index of the primary input.
        index: usize,
    },
    /// Technology mapping was asked for a LUT size outside `2..=6`.
    BadLutSize(usize),
    /// A node id was out of range for the netlist it was used with.
    UnknownNode(NodeId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through node {n}")
            }
            NetlistError::TypeMismatch { node, expected } => {
                write!(f, "type mismatch at node {node}: expected {expected}")
            }
            NetlistError::ArityMismatch {
                node,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch at node {node}: expected {expected} inputs, found {found}"
            ),
            NetlistError::TruthTableTooWide { inputs, max } => {
                write!(
                    f,
                    "truth table with {inputs} inputs exceeds maximum of {max}"
                )
            }
            NetlistError::InputCountMismatch { expected, found } => write!(
                f,
                "primary input count mismatch: netlist has {expected}, got {found} values"
            ),
            NetlistError::InputTypeMismatch { index } => {
                write!(f, "primary input {index} has the wrong signal type")
            }
            NetlistError::BadLutSize(k) => {
                write!(f, "unsupported LUT size {k}, must be between 2 and 6")
            }
            NetlistError::UnknownNode(n) => write!(f, "node {n} does not exist in this netlist"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<NetlistError> = vec![
            NetlistError::CombinationalCycle(NodeId(3)),
            NetlistError::TypeMismatch {
                node: NodeId(1),
                expected: "bit operand",
            },
            NetlistError::ArityMismatch {
                node: NodeId(0),
                expected: 3,
                found: 2,
            },
            NetlistError::TruthTableTooWide {
                inputs: 19,
                max: 16,
            },
            NetlistError::InputCountMismatch {
                expected: 2,
                found: 1,
            },
            NetlistError::InputTypeMismatch { index: 0 },
            NetlistError::BadLutSize(9),
            NetlistError::UnknownNode(NodeId(42)),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
