//! Bit-level netlist infrastructure for FReaC Cache.
//!
//! This crate plays the role that VTR (logic synthesis + technology mapping)
//! plays in the paper: it provides
//!
//! * a structural [`Netlist`] IR whose combinational nodes are arbitrary
//!   truth-table functions plus word-level multiply-accumulate units,
//! * a [`builder::CircuitBuilder`] DSL used by the benchmark kernels to
//!   describe accelerator datapaths (XOR trees, ripple adders, comparators,
//!   S-box table lookups, registers, MACs),
//! * a [`techmap`] pass that Shannon-decomposes wide logic nodes into
//!   K-input LUTs (K = 4 or 5, matching the micro compute cluster modes),
//! * [`level`]ing utilities that produce the leveled DAG consumed by the
//!   logic-folding scheduler, and
//! * a reference [`eval::Evaluator`] so that folded execution can be checked
//!   bit-exactly against the un-folded circuit.
//!
//! # Example
//!
//! ```
//! use freac_netlist::builder::CircuitBuilder;
//! use freac_netlist::techmap::{tech_map, TechMapOptions};
//! use freac_netlist::eval::Evaluator;
//! use freac_netlist::Value;
//!
//! // out = a ^ b over 8-bit words, built from primary word inputs.
//! let mut b = CircuitBuilder::new("xor8");
//! let a = b.word_input("a", 8);
//! let c = b.word_input("b", 8);
//! let x = b.xor_words(&a, &c);
//! b.word_output("out", &x);
//! let netlist = b.finish().expect("acyclic circuit");
//!
//! let mapped = tech_map(&netlist, TechMapOptions::lut4()).expect("mappable");
//! let mut ev = Evaluator::new(&mapped);
//! let out = ev.run_cycle(&[Value::Word(0xA5), Value::Word(0x0F)]).expect("eval");
//! assert_eq!(out, vec![Value::Word(0xAA)]);
//! ```

pub mod builder;
pub mod error;
pub mod eval;
pub mod export;
pub mod graph;
pub mod level;
pub mod opt;
pub mod plan;
pub mod stats;
pub mod techmap;
pub mod truth;
pub mod verilog;

pub use error::NetlistError;
pub use eval::{assert_equivalent_on, equivalent_on, first_mismatch, EquivalenceMismatch};
pub use graph::{Netlist, Node, NodeId, NodeKind, SignalType, Value};
pub use opt::{
    optimize, pack_luts, OptLevel, OptMetrics, OptOptions, OptReport, PackReport, PassDelta,
    PassKind, PassManager, WorkGraph,
};
pub use plan::{
    compile, AnyBatchState, BatchState, ExecPlan, PlanState, BATCH_LANES, BATCH_WIDTHS,
    MAX_BATCH_LANES, MAX_BATCH_WORDS,
};
pub use stats::NetlistStats;
pub use truth::TruthTable;
