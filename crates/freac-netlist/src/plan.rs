//! Compiled execution plans: the netlist flattened into an allocation-free
//! micro-op stream.
//!
//! [`Evaluator`](crate::eval::Evaluator) re-dispatches on
//! [`NodeKind`](crate::graph::NodeKind) for every node of every cycle and
//! returns a freshly allocated output `Vec` per call. An [`ExecPlan`] pays
//! that analysis cost once, at compile time — the same pay-once insight the
//! paper's config-row streaming applies in hardware (one pre-resolved
//! configuration row per fold step, no per-step decision-making):
//!
//! * every operand is resolved to a dense *slot* in one of two state
//!   planes — a packed bit plane of `u64` words and a `u32` word plane —
//!   so there is no `Option<Value>` state and no enum-tagged values;
//! * LUT truth tables are flattened into one contiguous `u64` pool and
//!   referenced by dense offset;
//! * the circuit becomes a flat struct-of-arrays stream of micro-ops that
//!   a branch-light loop executes with zero per-cycle allocation
//!   ([`ExecPlan::run_cycle_into`]).
//!
//! On top of the packed bit plane the plan also evaluates batches of
//! independent input vectors per pass: bit-typed logic runs *bit-sliced* —
//! lane `l` of every bit slot belongs to input vector `l`, so one AND/OR
//! pass over a LUT's minterms evaluates a whole chunk of lanes at once —
//! while word-typed ops iterate the lanes of a widened word plane. The
//! chunk is a `[u64; N]` array ([`BatchState`] is generic over `N`), so
//! the same plan sweeps 64 lanes per word (`N = 1`,
//! [`ExecPlan::run_batch_cycle`]), or 256/512 lanes (`N = 4` / `N = 8`,
//! [`ExecPlan::run_wide_batch_cycle`]) with straight-line inner loops the
//! autovectorizer turns into SIMD. Callers that only learn the batch size
//! at runtime dispatch through [`AnyBatchState`].
//!
//! Plan compilation is shared with `freac-fold`: [`PlanBuilder`] exposes
//! the slot assignment and op emission primitives, and the folding crate
//! drives them in *schedule order* (validating dependencies at compile
//! time) while [`compile`] drives them in topological order to reproduce
//! the reference evaluator.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId, NodeKind, SignalType, Value};
use crate::level::level_graph;

/// Number of independent input vectors one single-word (`N = 1`) batch
/// pass evaluates: the lane count of one `u64` bit-slice.
pub const BATCH_LANES: usize = 64;

/// Widest supported batch chunk, in `u64` words per bit slot.
pub const MAX_BATCH_WORDS: usize = 8;

/// Widest supported batch, in lanes (512 = 8 × 64).
pub const MAX_BATCH_LANES: usize = MAX_BATCH_WORDS * BATCH_LANES;

/// The supported batch widths, in lanes, narrowest first. Each is a
/// monomorphized `[u64; N]` sweep (`N` ∈ {1, 4, 8}); [`AnyBatchState`]
/// picks the narrowest width that fits a runtime lane count.
pub const BATCH_WIDTHS: [usize; 3] = [BATCH_LANES, 4 * BATCH_LANES, MAX_BATCH_LANES];

/// Where a node's runtime value lives: a dense index into the packed bit
/// plane or into the word plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// Bit `index % 64` of word `index / 64` of the bit plane.
    Bit(u32),
    /// Element `index` of the word plane.
    Word(u32),
}

impl Slot {
    /// The signal type stored in this slot.
    pub fn signal_type(self) -> SignalType {
        match self {
            Slot::Bit(_) => SignalType::Bit,
            Slot::Word(_) => SignalType::Word,
        }
    }
}

/// Which op stream an emitted micro-op joins: the main (pre-latch) stream
/// or the post-latch stream (folded output plumbing reads *new* sequential
/// state, mirroring the interpreter's resolve-after-latch semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Executed before sequential elements latch.
    Main,
    /// Executed after sequential elements latch.
    Post,
}

/// Micro-op opcodes. Operand meaning per code is documented on
/// [`OpStream`]'s fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum OpCode {
    /// Truth-table lookup over bit operands.
    Lut,
    /// `a.wrapping_mul(b).wrapping_add(acc)` over word slots.
    Mac,
    /// Packs bit operands (LSB first) into a word slot.
    Pack,
    /// Extracts one bit of a word slot.
    Unpack,
    /// Copies a bit slot (output nodes, plumbing).
    CopyBit,
    /// Copies a word slot.
    CopyWord,
}

/// The flat micro-op stream in struct-of-arrays layout: four parallel
/// operand columns keep each op record at 17 bytes and let the hot loop
/// stream them sequentially.
#[derive(Debug, Clone, Default)]
struct OpStream {
    /// Opcode per op.
    codes: Vec<OpCode>,
    /// Destination slot index (bit plane for bit-typed results, word plane
    /// for word-typed results — implied by the opcode).
    dst: Vec<u32>,
    /// `Lut`/`Pack`: offset into the operand pool. `Mac`: `a` word slot.
    /// `Unpack`/`CopyBit`/`CopyWord`: source slot.
    a: Vec<u32>,
    /// `Lut`: offset into the table pool. `Mac`: `b` word slot.
    /// `Unpack`: bit index. Others: unused.
    b: Vec<u32>,
    /// `Lut`/`Pack`: operand count. `Mac`: `acc` word slot. Others: unused.
    c: Vec<u32>,
}

impl OpStream {
    fn len(&self) -> usize {
        self.codes.len()
    }

    fn push(&mut self, code: OpCode, dst: u32, a: u32, b: u32, c: u32) {
        self.codes.push(code);
        self.dst.push(dst);
        self.a.push(a);
        self.b.push(b);
        self.c.push(c);
    }

    /// Zipped column iteration: lets the hot loops stream the SoA columns
    /// without per-column bounds checks.
    fn iter(&self) -> impl Iterator<Item = (OpCode, u32, u32, u32, u32)> + '_ {
        self.codes
            .iter()
            .zip(&self.dst)
            .zip(&self.a)
            .zip(&self.b)
            .zip(&self.c)
            .map(|((((&code, &dst), &a), &b), &c)| (code, dst, a, b, c))
    }
}

/// A netlist (or fold schedule) compiled to a flat execution plan.
///
/// The plan is immutable shared data (`Send + Sync`); all mutable run
/// state lives in a [`PlanState`] / [`BatchState`] owned by the caller, so
/// one compiled plan serves any number of concurrent executions.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    /// Pre-latch micro-ops.
    ops: OpStream,
    /// Post-latch micro-ops (fold-order output plumbing; empty for plans
    /// compiled in topological order).
    post_ops: OpStream,
    /// Slot-index pool for `Lut`/`Pack` operand lists.
    operands: Vec<u32>,
    /// Flattened truth-table words (`TruthTable::words`), one run per
    /// distinct LUT node.
    tables: Vec<u64>,
    /// Sequential bit latches `(src bit slot, dst bit slot)`.
    bit_latches: Vec<(u32, u32)>,
    /// Sequential word latches `(src word slot, dst word slot)`.
    word_latches: Vec<(u32, u32)>,
    /// Primary-input slots in declaration order.
    inputs: Vec<Slot>,
    /// Primary-output slots in declaration order.
    outputs: Vec<Slot>,
    /// Bit slots allocated (plane length is `bit_slots.div_ceil(64)`).
    bit_slots: u32,
    /// Word slots allocated.
    word_slots: u32,
    /// Initial packed bit plane (constants and flip-flop init values).
    bit_init: Vec<u64>,
    /// Initial word plane (constants and register init values).
    word_init: Vec<u32>,
}

/// Mutable single-vector execution state for an [`ExecPlan`].
#[derive(Debug, Clone)]
pub struct PlanState {
    /// Byte-per-slot bit plane (0 or 1): single-vector LUT input gathers
    /// are one indexed load each, with no shift/mask to locate the bit.
    /// (The 64-lane [`BatchState`] uses the packed layout instead, where
    /// one word *is* the 64 lanes.)
    bits: Vec<u8>,
    /// Word plane.
    words: Vec<u32>,
    /// Latch staging (two-phase commit so swap-style feedback reads
    /// pre-latch values).
    bit_stage: Vec<u8>,
    /// Word-latch staging.
    word_stage: Vec<u32>,
    cycles: u64,
}

impl PlanState {
    /// Original clock cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

/// Mutable `N * 64`-lane batch state: lane `l` of every slot belongs to
/// input vector `l`, each lane an independent simulation from power-on
/// state. `N` is the bit-slice width in `u64` words — `N = 1` (the
/// default) is the classic 64-lane state, `N = 4` / `N = 8` widen one
/// sweep to 256 / 512 lanes.
#[derive(Debug, Clone)]
pub struct BatchState<const N: usize = 1> {
    /// One `[u64; N]` chunk per bit slot; bit `l % 64` of word `l / 64`
    /// is lane `l`.
    bits: Vec<[u64; N]>,
    /// Lane-major word plane: word slot `s` occupies
    /// `s * N * 64 .. (s + 1) * N * 64`.
    words: Vec<u32>,
    bit_stage: Vec<[u64; N]>,
    word_stage: Vec<u32>,
    cycles: u64,
}

impl<const N: usize> BatchState<N> {
    /// Original clock cycles executed so far (per lane; lanes advance in
    /// lock-step).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Lanes one pass over this state evaluates (`N * 64`).
    pub const fn lane_capacity() -> usize {
        N * BATCH_LANES
    }
}

/// Runtime-width batch state: wraps one of the supported monomorphized
/// widths ([`BATCH_WIDTHS`]) so callers that only learn the batch size at
/// runtime — the serve coalescer, [`equivalent_on`](crate::eval::equivalent_on)
/// — still execute the straight-line `[u64; N]` loops. Build with
/// [`ExecPlan::new_batch_state_for`], run with
/// [`ExecPlan::run_batch_cycle_any`].
#[derive(Debug, Clone)]
pub enum AnyBatchState {
    /// 64 lanes (one `u64` per bit slot).
    W1(BatchState<1>),
    /// 256 lanes.
    W4(BatchState<4>),
    /// 512 lanes.
    W8(BatchState<8>),
}

impl AnyBatchState {
    /// Lanes one pass over this state evaluates.
    pub fn lane_capacity(&self) -> usize {
        match self {
            AnyBatchState::W1(_) => BATCH_LANES,
            AnyBatchState::W4(_) => 4 * BATCH_LANES,
            AnyBatchState::W8(_) => MAX_BATCH_LANES,
        }
    }

    /// Original clock cycles executed so far.
    pub fn cycles(&self) -> u64 {
        match self {
            AnyBatchState::W1(s) => s.cycles(),
            AnyBatchState::W4(s) => s.cycles(),
            AnyBatchState::W8(s) => s.cycles(),
        }
    }
}

/// Bit count at which the batch `Pack`/`Unpack` paths switch from
/// per-lane assembly to a full 64×64 block transpose: the transpose costs
/// a fixed ~`64 · log2(64)` word ops per block, the per-lane form
/// `64 · bits`, so the crossover sits near 6–8 bits.
const TRANSPOSE_MIN_BITS: usize = 8;

/// In-place 64×64 bit-matrix transpose over the packed lane convention
/// (bit `j` of `m[i]` is element `(i, j)`): afterwards bit `j` of `m[i]`
/// holds what bit `i` of `m[j]` held. Recursive block swap (the
/// Hacker's-Delight butterfly, flipped for LSB-first columns).
fn transpose64(m: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((m[k] >> j) ^ m[k + j]) & mask;
            m[k] ^= t << j;
            m[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

#[inline]
fn get_bit(bits: &[u64], slot: u32) -> bool {
    (bits[(slot >> 6) as usize] >> (slot & 63)) & 1 == 1
}

#[inline]
fn set_bit(bits: &mut [u64], slot: u32, v: bool) {
    let w = (slot >> 6) as usize;
    let m = 1u64 << (slot & 63);
    if v {
        bits[w] |= m;
    } else {
        bits[w] &= !m;
    }
}

impl ExecPlan {
    /// Fresh single-vector state at power-on values.
    pub fn new_state(&self) -> PlanState {
        let bits = (0..self.bit_slots)
            .map(|s| get_bit(&self.bit_init, s) as u8)
            .collect();
        PlanState {
            bits,
            words: self.word_init.clone(),
            bit_stage: vec![0; self.bit_latches.len().max(1)],
            word_stage: vec![0; self.word_latches.len().max(1)],
            cycles: 0,
        }
    }

    /// Fresh 64-lane batch state, every lane at power-on values.
    pub fn new_batch_state(&self) -> BatchState {
        self.new_wide_batch_state::<1>()
    }

    /// Fresh `N * 64`-lane batch state, every lane at power-on values.
    pub fn new_wide_batch_state<const N: usize>(&self) -> BatchState<N> {
        let lanes = N * BATCH_LANES;
        let mut bits = vec![[0u64; N]; self.bit_slots as usize];
        for (s, chunk) in bits.iter_mut().enumerate() {
            if get_bit(&self.bit_init, s as u32) {
                *chunk = [u64::MAX; N];
            }
        }
        let mut words = vec![0u32; self.word_slots as usize * lanes];
        for (s, &init) in self.word_init.iter().enumerate() {
            words[s * lanes..(s + 1) * lanes].fill(init);
        }
        BatchState {
            bits,
            words,
            bit_stage: vec![[0u64; N]; self.bit_latches.len().max(1)],
            word_stage: vec![0; self.word_latches.len() * lanes + 1],
            cycles: 0,
        }
    }

    /// Fresh batch state at the narrowest supported width
    /// ([`BATCH_WIDTHS`]) that fits `max_lanes` lanes (clamped to
    /// [`MAX_BATCH_LANES`]).
    pub fn new_batch_state_for(&self, max_lanes: usize) -> AnyBatchState {
        if max_lanes <= BATCH_LANES {
            AnyBatchState::W1(self.new_wide_batch_state())
        } else if max_lanes <= 4 * BATCH_LANES {
            AnyBatchState::W4(self.new_wide_batch_state())
        } else {
            AnyBatchState::W8(self.new_wide_batch_state())
        }
    }

    /// Whether the plan carries no sequential state (no latches): batch
    /// lanes and carried-state evaluation are then interchangeable.
    pub fn is_combinational(&self) -> bool {
        self.bit_latches.is_empty() && self.word_latches.is_empty()
    }

    /// Total micro-ops in the flattened streams (compile-time size probe).
    pub fn micro_ops(&self) -> usize {
        self.ops.len() + self.post_ops.len()
    }

    /// Primary inputs expected per cycle.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Primary outputs produced per cycle.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Runs one original clock cycle, writing the primary outputs (in
    /// declaration order) into `out` without allocating: `out` is cleared
    /// and refilled, retaining its capacity across calls.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputCountMismatch`] /
    /// [`NetlistError::InputTypeMismatch`] exactly like the reference
    /// evaluator; the plan itself cannot fail mid-cycle (dependencies were
    /// validated at compile time).
    pub fn run_cycle_into(
        &self,
        state: &mut PlanState,
        inputs: &[Value],
        out: &mut Vec<Value>,
    ) -> Result<(), NetlistError> {
        if inputs.len() != self.inputs.len() {
            return Err(NetlistError::InputCountMismatch {
                expected: self.inputs.len(),
                found: inputs.len(),
            });
        }
        for (i, (&slot, &v)) in self.inputs.iter().zip(inputs).enumerate() {
            match (slot, v) {
                (Slot::Bit(s), Value::Bit(b)) => state.bits[s as usize] = b as u8,
                (Slot::Word(s), Value::Word(w)) => state.words[s as usize] = w,
                _ => return Err(NetlistError::InputTypeMismatch { index: i }),
            }
        }

        self.exec(&self.ops, &mut state.bits, &mut state.words);

        // Two-phase latch: stage every source, then commit, so feedback
        // between sequential elements reads pre-latch values.
        for (i, &(src, _)) in self.bit_latches.iter().enumerate() {
            state.bit_stage[i] = state.bits[src as usize];
        }
        for (i, &(src, _)) in self.word_latches.iter().enumerate() {
            state.word_stage[i] = state.words[src as usize];
        }
        for (i, &(_, dst)) in self.bit_latches.iter().enumerate() {
            state.bits[dst as usize] = state.bit_stage[i];
        }
        for (i, &(_, dst)) in self.word_latches.iter().enumerate() {
            state.words[dst as usize] = state.word_stage[i];
        }

        self.exec(&self.post_ops, &mut state.bits, &mut state.words);
        state.cycles += 1;

        out.clear();
        for &slot in &self.outputs {
            out.push(match slot {
                Slot::Bit(s) => Value::Bit(state.bits[s as usize] != 0),
                Slot::Word(s) => Value::Word(state.words[s as usize]),
            });
        }
        Ok(())
    }

    /// Allocating convenience wrapper over [`ExecPlan::run_cycle_into`].
    ///
    /// # Errors
    ///
    /// Propagates input-shape errors from [`ExecPlan::run_cycle_into`].
    pub fn run_cycle(
        &self,
        state: &mut PlanState,
        inputs: &[Value],
    ) -> Result<Vec<Value>, NetlistError> {
        let mut out = Vec::with_capacity(self.outputs.len());
        self.run_cycle_into(state, inputs, &mut out)?;
        Ok(out)
    }

    /// Runs one original clock cycle for up to [`BATCH_LANES`] independent
    /// input vectors at once (the `N = 1` width of
    /// [`ExecPlan::run_wide_batch_cycle`]).
    ///
    /// # Errors
    ///
    /// Returns input-shape errors for the first offending lane, plus
    /// [`NetlistError::InputCountMismatch`] if more than [`BATCH_LANES`]
    /// lanes are supplied.
    pub fn run_batch_cycle(
        &self,
        state: &mut BatchState,
        lanes: &[Vec<Value>],
        out: &mut Vec<Vec<Value>>,
    ) -> Result<(), NetlistError> {
        self.run_wide_batch_cycle::<1>(state, lanes, out)
    }

    /// Runs one original clock cycle at whichever width `state` carries:
    /// the runtime-dispatch face of [`ExecPlan::run_wide_batch_cycle`].
    ///
    /// # Errors
    ///
    /// Exactly [`ExecPlan::run_wide_batch_cycle`]'s, at `state`'s width.
    pub fn run_batch_cycle_any(
        &self,
        state: &mut AnyBatchState,
        lanes: &[Vec<Value>],
        out: &mut Vec<Vec<Value>>,
    ) -> Result<(), NetlistError> {
        match state {
            AnyBatchState::W1(s) => self.run_wide_batch_cycle(s, lanes, out),
            AnyBatchState::W4(s) => self.run_wide_batch_cycle(s, lanes, out),
            AnyBatchState::W8(s) => self.run_wide_batch_cycle(s, lanes, out),
        }
    }

    /// Runs one original clock cycle for up to `N * 64` independent input
    /// vectors at once. Lane `l` consumes `lanes[l]` and its outputs land
    /// in `out[l]` (declaration order); `out` is resized and its inner
    /// vectors reused, so steady-state batch evaluation allocates nothing.
    ///
    /// Bit-typed logic evaluates bit-sliced (one minterm sweep over
    /// `[u64; N]` chunks serves all lanes); word-typed ops iterate the
    /// lanes. Every lane carries its own sequential state inside `state`.
    /// Tail lanes (indices at or past `lanes.len()`) keep sweeping
    /// power-on state but are never read back out: outputs, like inputs,
    /// cover exactly the supplied lanes.
    ///
    /// # Errors
    ///
    /// Returns input-shape errors for the first offending lane, plus
    /// [`NetlistError::InputCountMismatch`] if more than `N * 64` lanes
    /// are supplied.
    pub fn run_wide_batch_cycle<const N: usize>(
        &self,
        state: &mut BatchState<N>,
        lanes: &[Vec<Value>],
        out: &mut Vec<Vec<Value>>,
    ) -> Result<(), NetlistError> {
        let width = N * BATCH_LANES;
        if lanes.is_empty() || lanes.len() > width {
            return Err(NetlistError::InputCountMismatch {
                expected: width,
                found: lanes.len(),
            });
        }
        for lane in lanes {
            if lane.len() != self.inputs.len() {
                return Err(NetlistError::InputCountMismatch {
                    expected: self.inputs.len(),
                    found: lane.len(),
                });
            }
        }
        for (i, &slot) in self.inputs.iter().enumerate() {
            match slot {
                Slot::Bit(s) => {
                    let mut w = [0u64; N];
                    for (l, lane) in lanes.iter().enumerate() {
                        let b = lane[i]
                            .as_bit()
                            .ok_or(NetlistError::InputTypeMismatch { index: i })?;
                        w[l >> 6] |= (b as u64) << (l & 63);
                    }
                    state.bits[s as usize] = w;
                }
                Slot::Word(s) => {
                    let base = s as usize * width;
                    for (l, lane) in lanes.iter().enumerate() {
                        state.words[base + l] = lane[i]
                            .as_word()
                            .ok_or(NetlistError::InputTypeMismatch { index: i })?;
                    }
                }
            }
        }

        self.exec_batch(&self.ops, &mut state.bits, &mut state.words);

        for (i, &(src, _)) in self.bit_latches.iter().enumerate() {
            state.bit_stage[i] = state.bits[src as usize];
        }
        for (i, &(src, _)) in self.word_latches.iter().enumerate() {
            let base = src as usize * width;
            state.word_stage[i * width..(i + 1) * width]
                .copy_from_slice(&state.words[base..base + width]);
        }
        for (i, &(_, dst)) in self.bit_latches.iter().enumerate() {
            state.bits[dst as usize] = state.bit_stage[i];
        }
        for (i, &(_, dst)) in self.word_latches.iter().enumerate() {
            let base = dst as usize * width;
            state.words[base..base + width]
                .copy_from_slice(&state.word_stage[i * width..(i + 1) * width]);
        }

        self.exec_batch(&self.post_ops, &mut state.bits, &mut state.words);
        state.cycles += 1;

        out.resize_with(lanes.len(), Vec::new);
        for (l, lane_out) in out.iter_mut().enumerate() {
            lane_out.clear();
            for &slot in &self.outputs {
                lane_out.push(match slot {
                    Slot::Bit(s) => {
                        Value::Bit((state.bits[s as usize][l >> 6] >> (l & 63)) & 1 == 1)
                    }
                    Slot::Word(s) => Value::Word(state.words[s as usize * width + l]),
                });
            }
        }
        Ok(())
    }

    /// The branch-light single-vector inner loop.
    fn exec(&self, stream: &OpStream, bits: &mut [u8], words: &mut [u32]) {
        for (code, dst, a, b, c) in stream.iter() {
            match code {
                OpCode::Lut => {
                    let off = a as usize;
                    let mut row = 0usize;
                    for (k, &slot) in self.operands[off..off + c as usize].iter().enumerate() {
                        row |= (bits[slot as usize] as usize) << k;
                    }
                    let t = b as usize;
                    bits[dst as usize] = ((self.tables[t + (row >> 6)] >> (row & 63)) & 1) as u8;
                }
                OpCode::Mac => {
                    let x = words[a as usize];
                    let y = words[b as usize];
                    let acc = words[c as usize];
                    words[dst as usize] = x.wrapping_mul(y).wrapping_add(acc);
                }
                OpCode::Pack => {
                    let off = a as usize;
                    let mut w = 0u32;
                    for (k, &slot) in self.operands[off..off + c as usize].iter().enumerate() {
                        w |= (bits[slot as usize] as u32) << k;
                    }
                    words[dst as usize] = w;
                }
                OpCode::Unpack => {
                    bits[dst as usize] = ((words[a as usize] >> b) & 1) as u8;
                }
                OpCode::CopyBit => {
                    bits[dst as usize] = bits[a as usize];
                }
                OpCode::CopyWord => {
                    words[dst as usize] = words[a as usize];
                }
            }
        }
    }

    /// The `N * 64`-lane batch inner loop: bit-sliced for bit logic, lane
    /// loops for word arithmetic. All chunk loops run over `[u64; N]`
    /// arrays with no cross-iteration dependency, so the autovectorizer
    /// widens them to whatever SIMD the target offers.
    ///
    /// Consecutive `Lut` ops sharing one truth table (common after
    /// tech-mapping: adder/xor columns all compile to the same LUT
    /// function, and [`compile`] groups them) execute as a *fused run*:
    /// the table is decoded once — parity tables (XOR/XNOR chains,
    /// everywhere in adders and AES) collapse to a chain of chunk XORs,
    /// anything else to a minterm list over whichever of the true/false
    /// row sets is smaller (complementing the result when the false set
    /// won) — then every op in the run sweeps the decoded form with its
    /// operand chunks hoisted into stack locals, so the row loop never
    /// re-reads the bit plane.
    ///
    /// Consecutive word ops (`Mac`/`CopyWord` — region-blocked scheduling
    /// groups them) execute lane-block-wise: each 64-lane column of the
    /// run completes before the next starts, keeping a dependent chain's
    /// working set at 64 lanes regardless of `N` instead of streaming
    /// `N * 64`-lane planes through cache once per op.
    fn exec_batch<const N: usize>(
        &self,
        stream: &OpStream,
        bits: &mut [[u64; N]],
        words: &mut [u32],
    ) {
        let width = N * BATCH_LANES;
        let len = stream.len();
        let mut i = 0usize;
        while i < len {
            let dst = stream.dst[i] as usize;
            match stream.codes[i] {
                OpCode::Lut => {
                    let n = stream.c[i] as usize;
                    let t = stream.b[i] as usize;
                    if n <= 6 {
                        let table = self.tables[t];
                        let nrows_total = 1usize << n;
                        let row_mask = if n == 6 {
                            u64::MAX
                        } else {
                            (1u64 << nrows_total) - 1
                        };
                        // Fused run: every following op with the same
                        // table and arity reuses the decoded form.
                        let mut end = i + 1;
                        while end < len
                            && stream.codes[end] == OpCode::Lut
                            && stream.b[end] as usize == t
                            && stream.c[end] as usize == n
                        {
                            end += 1;
                        }
                        // Parity fast path: T[row] == parity(row) ^ c for
                        // all rows ⇔ the op is an XOR/XNOR chain.
                        let mut parity_mask = 0u64;
                        for row in 0..nrows_total {
                            parity_mask |= (((row as u64).count_ones() & 1) as u64) << row;
                        }
                        if table & row_mask == parity_mask & row_mask
                            || table & row_mask == !parity_mask & row_mask
                        {
                            let flip = if table & 1 == 1 { u64::MAX } else { 0 };
                            for op in i..end {
                                let off = stream.a[op] as usize;
                                let ins = &self.operands[off..off + n];
                                let mut acc = [flip; N];
                                for &slot in ins {
                                    let v = &bits[slot as usize];
                                    for x in 0..N {
                                        acc[x] ^= v[x];
                                    }
                                }
                                bits[stream.dst[op] as usize] = acc;
                            }
                            i = end;
                            continue;
                        }
                        // Decode whichever of the true/false row sets is
                        // smaller; sweeping the false set computes the
                        // complement, undone by `flip` at the end.
                        let trues = (table & row_mask).count_ones() as usize;
                        let decode_false = trues * 2 > nrows_total;
                        let (want, flip) = if decode_false {
                            (0u64, u64::MAX)
                        } else {
                            (1u64, 0u64)
                        };
                        let mut rows = [0u8; 64];
                        let mut nrows = 0usize;
                        for row in 0..nrows_total {
                            if (table >> row) & 1 == want {
                                rows[nrows] = row as u8;
                                nrows += 1;
                            }
                        }
                        for op in i..end {
                            let off = stream.a[op] as usize;
                            let ins = &self.operands[off..off + n];
                            // Hoist the operand chunks: the row sweep then
                            // runs entirely out of stack slots/registers.
                            let mut v = [[0u64; N]; 6];
                            for (k, &slot) in ins.iter().enumerate() {
                                v[k] = bits[slot as usize];
                            }
                            let mut acc = [0u64; N];
                            for &row in &rows[..nrows] {
                                let mut term = [u64::MAX; N];
                                for (k, vk) in v[..n].iter().enumerate() {
                                    // Branch-free polarity: all-ones XOR
                                    // complements the operand chunk.
                                    let inv = (((row >> k) & 1) as u64).wrapping_sub(1);
                                    for x in 0..N {
                                        term[x] &= vk[x] ^ inv;
                                    }
                                }
                                for x in 0..N {
                                    acc[x] |= term[x];
                                }
                            }
                            for a in &mut acc {
                                *a ^= flip;
                            }
                            bits[stream.dst[op] as usize] = acc;
                        }
                        i = end;
                        continue;
                    }
                    // Wide pre-mapping LUTs: the 2^n sweep loses to a
                    // per-lane table lookup, so index lanes directly.
                    let off = stream.a[i] as usize;
                    let ins = &self.operands[off..off + n];
                    let mut acc = [0u64; N];
                    for l in 0..width {
                        let (w, sh) = (l >> 6, l & 63);
                        let mut row = 0usize;
                        for (k, &slot) in ins.iter().enumerate() {
                            row |= (((bits[slot as usize][w] >> sh) & 1) as usize) << k;
                        }
                        acc[w] |= ((self.tables[t + (row >> 6)] >> (row & 63)) & 1) << sh;
                    }
                    bits[dst] = acc;
                }
                OpCode::Mac | OpCode::CopyWord => {
                    // Word run: lane-block the whole stretch so dependent
                    // chains stay L1-resident at every width.
                    let mut end = i + 1;
                    while end < len && matches!(stream.codes[end], OpCode::Mac | OpCode::CopyWord) {
                        end += 1;
                    }
                    for base in (0..width).step_by(BATCH_LANES) {
                        for op in i..end {
                            let db = stream.dst[op] as usize * width + base;
                            match stream.codes[op] {
                                OpCode::Mac => {
                                    let ab = stream.a[op] as usize * width + base;
                                    let bb = stream.b[op] as usize * width + base;
                                    let cb = stream.c[op] as usize * width + base;
                                    for j in 0..BATCH_LANES {
                                        words[db + j] = words[ab + j]
                                            .wrapping_mul(words[bb + j])
                                            .wrapping_add(words[cb + j]);
                                    }
                                }
                                OpCode::CopyWord => {
                                    let sb = stream.a[op] as usize * width + base;
                                    words.copy_within(sb..sb + BATCH_LANES, db);
                                }
                                _ => unreachable!("word run only holds Mac/CopyWord"),
                            }
                        }
                    }
                    i = end;
                    continue;
                }
                OpCode::Pack => {
                    // One pass per 64-lane chunk: hoist each operand's
                    // chunk word once, then either transpose the 64×64
                    // bit block (wide packs — one O(64·log 64) shuffle
                    // instead of `64 · operand count` bit extracts) or
                    // assemble each lane's value in a register (narrow
                    // packs, where the transpose doesn't pay for itself).
                    // Either way each destination lane is stored exactly
                    // once — no `operand count + 1` read-modify-write
                    // sweeps over the destination row.
                    let off = stream.a[i] as usize;
                    let n = stream.c[i] as usize;
                    let ins = &self.operands[off..off + n];
                    let db = dst * width;
                    // `w` also offsets the lane-major word plane, so the
                    // index form beats iterating `bits` here.
                    #[allow(clippy::needless_range_loop)]
                    for w in 0..N {
                        let mut ms = [0u64; 64];
                        for (k, &slot) in ins.iter().enumerate() {
                            ms[k] = bits[slot as usize][w];
                        }
                        let base = db + w * BATCH_LANES;
                        let out = &mut words[base..base + BATCH_LANES];
                        if n >= TRANSPOSE_MIN_BITS {
                            transpose64(&mut ms);
                            for (o, &m) in out.iter_mut().zip(&ms) {
                                *o = m as u32;
                            }
                        } else {
                            for (j, o) in out.iter_mut().enumerate() {
                                let mut packed = 0u32;
                                for (k, m) in ms[..n].iter().enumerate() {
                                    packed |= (((m >> j) & 1) as u32) << k;
                                }
                                *o = packed;
                            }
                        }
                    }
                }
                OpCode::Unpack => {
                    // Fused run: tech-mapped word logic unpacks *every*
                    // bit of a word in sequence, so consecutive Unpacks
                    // of one source slot transpose each 64-lane block
                    // once and hand every op in the run its row — the
                    // naive form re-reads all lanes once per bit.
                    let src = stream.a[i] as usize;
                    let mut end = i + 1;
                    while end < len
                        && stream.codes[end] == OpCode::Unpack
                        && stream.a[end] as usize == src
                    {
                        end += 1;
                    }
                    let sb = src * width;
                    #[allow(clippy::needless_range_loop)]
                    for w in 0..N {
                        let base = sb + w * BATCH_LANES;
                        let lanes = &words[base..base + BATCH_LANES];
                        if end - i >= TRANSPOSE_MIN_BITS {
                            let mut m = [0u64; 64];
                            for (j, &word) in lanes.iter().enumerate() {
                                m[j] = word as u64;
                            }
                            transpose64(&mut m);
                            for op in i..end {
                                bits[stream.dst[op] as usize][w] = m[stream.b[op] as usize];
                            }
                        } else {
                            for op in i..end {
                                let bit = stream.b[op];
                                let mut m = 0u64;
                                for (j, &word) in lanes.iter().enumerate() {
                                    m |= (((word >> bit) & 1) as u64) << j;
                                }
                                bits[stream.dst[op] as usize][w] = m;
                            }
                        }
                    }
                    i = end;
                    continue;
                }
                OpCode::CopyBit => {
                    bits[dst] = bits[stream.a[i] as usize];
                }
            }
            i += 1;
        }
    }
}

/// Incrementally lowers a validated netlist into an [`ExecPlan`].
///
/// [`compile`] drives the builder in topological order (the reference
/// evaluator's semantics); `freac-fold` drives it in schedule order,
/// emitting free-plumbing chains per reference exactly where the step
/// interpreter would resolve them.
#[derive(Debug)]
pub struct PlanBuilder<'a> {
    netlist: &'a Netlist,
    /// Slot of every node.
    slots: Vec<Slot>,
    /// Table-pool offset per node (`u32::MAX` until first emission).
    table_off: Vec<u32>,
    /// Table-pool offset by *content*: distinct nodes computing the same
    /// LUT function share one pool run, which both shrinks the pool and
    /// lets the batch engine fuse their minterm sweeps.
    table_index: HashMap<Vec<u64>, u32>,
    main: OpStream,
    post: OpStream,
    operands: Vec<u32>,
    tables: Vec<u64>,
    bit_latches: Vec<(u32, u32)>,
    word_latches: Vec<(u32, u32)>,
    bit_slots: u32,
    word_slots: u32,
    bit_init: Vec<u64>,
    word_init: Vec<u32>,
}

impl<'a> PlanBuilder<'a> {
    /// Validates the netlist, assigns every node a dense slot in its
    /// plane, and seeds the initial planes with constants and power-on
    /// register values.
    ///
    /// # Errors
    ///
    /// Propagates [`Netlist::validate`] failures.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let mut slots = Vec::with_capacity(netlist.len());
        let (mut bit_slots, mut word_slots) = (0u32, 0u32);
        for node in netlist.nodes() {
            match node.kind.output_type() {
                SignalType::Bit => {
                    slots.push(Slot::Bit(bit_slots));
                    bit_slots += 1;
                }
                SignalType::Word => {
                    slots.push(Slot::Word(word_slots));
                    word_slots += 1;
                }
            }
        }
        let mut bit_init = vec![0u64; (bit_slots as usize).div_ceil(64).max(1)];
        let mut word_init = vec![0u32; word_slots as usize];
        for (i, node) in netlist.nodes().iter().enumerate() {
            match (&node.kind, slots[i]) {
                (NodeKind::ConstBit(v), Slot::Bit(s)) => set_bit(&mut bit_init, s, *v),
                (NodeKind::Ff { init }, Slot::Bit(s)) => set_bit(&mut bit_init, s, *init),
                (NodeKind::ConstWord(w), Slot::Word(s)) => word_init[s as usize] = *w,
                (NodeKind::WordReg { init }, Slot::Word(s)) => word_init[s as usize] = *init,
                _ => {}
            }
        }
        Ok(PlanBuilder {
            netlist,
            slots,
            table_off: vec![u32::MAX; netlist.len()],
            table_index: HashMap::new(),
            main: OpStream::default(),
            post: OpStream::default(),
            operands: Vec::new(),
            tables: Vec::new(),
            bit_latches: Vec::new(),
            word_latches: Vec::new(),
            bit_slots,
            word_slots,
            bit_init,
            word_init,
        })
    }

    /// The slot assigned to `id`.
    pub fn slot(&self, id: NodeId) -> Slot {
        self.slots[id.index()]
    }

    fn raw(&self, id: NodeId) -> u32 {
        match self.slots[id.index()] {
            Slot::Bit(s) | Slot::Word(s) => s,
        }
    }

    /// Emits the micro-op computing node `id` into `segment`. Source
    /// nodes — inputs, constants, sequential elements — need no op (their
    /// slots are written by the input prologue, the initial planes, or the
    /// latch phase) and emit nothing.
    pub fn emit(&mut self, id: NodeId, segment: Segment) {
        let node = &self.netlist.nodes()[id.index()];
        let dst = self.raw(id);
        let op = match &node.kind {
            NodeKind::BitInput { .. }
            | NodeKind::WordInput { .. }
            | NodeKind::ConstBit(_)
            | NodeKind::ConstWord(_)
            | NodeKind::Ff { .. }
            | NodeKind::WordReg { .. } => return,
            NodeKind::Lut(table) => {
                let toff = if self.table_off[id.index()] != u32::MAX {
                    self.table_off[id.index()]
                } else {
                    let off = match self.table_index.get(table.words()) {
                        Some(&off) => off,
                        None => {
                            let off = self.tables.len() as u32;
                            self.tables.extend_from_slice(table.words());
                            self.table_index.insert(table.words().to_vec(), off);
                            off
                        }
                    };
                    self.table_off[id.index()] = off;
                    off
                };
                let off = self.operands.len() as u32;
                for &inp in &node.inputs {
                    let s = self.raw(inp);
                    self.operands.push(s);
                }
                (OpCode::Lut, dst, off, toff, node.inputs.len() as u32)
            }
            NodeKind::Mac => (
                OpCode::Mac,
                dst,
                self.raw(node.inputs[0]),
                self.raw(node.inputs[1]),
                self.raw(node.inputs[2]),
            ),
            NodeKind::Pack => {
                let off = self.operands.len() as u32;
                for &inp in &node.inputs {
                    let s = self.raw(inp);
                    self.operands.push(s);
                }
                (OpCode::Pack, dst, off, 0, node.inputs.len() as u32)
            }
            NodeKind::Unpack { bit } => (OpCode::Unpack, dst, self.raw(node.inputs[0]), *bit, 0),
            NodeKind::BitOutput { .. } => (OpCode::CopyBit, dst, self.raw(node.inputs[0]), 0, 0),
            NodeKind::WordOutput { .. } => (OpCode::CopyWord, dst, self.raw(node.inputs[0]), 0, 0),
        };
        let stream = match segment {
            Segment::Main => &mut self.main,
            Segment::Post => &mut self.post,
        };
        stream.push(op.0, op.1, op.2, op.3, op.4);
    }

    /// Records the latch pair of every sequential node (source = its D
    /// input's slot, destination = its own slot).
    pub fn latch_all(&mut self) {
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            if !node.kind.is_sequential() {
                continue;
            }
            let src = self.raw(node.inputs[0]);
            let dst = self.raw(NodeId(i as u32));
            match node.kind {
                NodeKind::Ff { .. } => self.bit_latches.push((src, dst)),
                NodeKind::WordReg { .. } => self.word_latches.push((src, dst)),
                _ => unreachable!("is_sequential covers exactly Ff and WordReg"),
            }
        }
    }

    /// Seals the plan, wiring the primary input/output slot maps.
    pub fn finish(self) -> ExecPlan {
        let inputs = self
            .netlist
            .primary_inputs()
            .iter()
            .map(|&pi| self.slots[pi.index()])
            .collect();
        let outputs = self
            .netlist
            .primary_outputs()
            .iter()
            .map(|&po| self.slots[po.index()])
            .collect();
        ExecPlan {
            ops: self.main,
            post_ops: self.post,
            operands: self.operands,
            tables: self.tables,
            bit_latches: self.bit_latches,
            word_latches: self.word_latches,
            inputs,
            outputs,
            bit_slots: self.bit_slots,
            word_slots: self.word_slots,
            bit_init: self.bit_init,
            word_init: self.word_init,
        }
    }
}

/// Compiles a netlist into an [`ExecPlan`] with the reference evaluator's
/// semantics: combinational settle in topological order, sequential latch,
/// outputs sampled from settle-time values.
///
/// Dead logic is eliminated: the reference evaluator computes every node
/// each cycle, but only nodes in the transitive input cone of a primary
/// output or of a sequential element's D input are observable, so the plan
/// emits just those. (Builder conveniences such as `word_reg`/`mac` create
/// per-bit unpack views that circuits often never read.)
///
/// Within each ASAP level — whose nodes are independent by construction,
/// so any emission order preserves the evaluator's semantics — micro-ops
/// are blocked by state-plane region: LUTs first (grouped by truth-table
/// content so the batch engine's fused sweep covers whole runs, then by
/// destination slot so bit-plane writes stream), then the remaining
/// bit-plane ops, then word-plane ops. Plans driven in *schedule order*
/// by `freac-fold` are never reordered.
///
/// # Errors
///
/// Returns validation failures and
/// [`NetlistError::CombinationalCycle`] for cyclic netlists — the same
/// conditions under which [`Evaluator::new`](crate::eval::Evaluator::new)
/// panics.
pub fn compile(netlist: &Netlist) -> Result<ExecPlan, NetlistError> {
    let leveled = level_graph(netlist)?;
    let mut b = PlanBuilder::new(netlist)?;
    let mut live = vec![false; netlist.len()];
    let mut stack: Vec<NodeId> = netlist.primary_outputs().to_vec();
    for (i, node) in netlist.nodes().iter().enumerate() {
        if node.kind.is_sequential() {
            stack.push(NodeId(i as u32));
        }
    }
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        for &inp in &netlist.nodes()[id.index()].inputs {
            if !live[inp.index()] {
                stack.push(inp);
            }
        }
    }
    // Intern truth-table contents so the sort key groups same-function
    // LUTs (interning order is node-id order: deterministic).
    let mut table_rank = vec![0u32; netlist.len()];
    let mut intern: HashMap<&[u64], u32> = HashMap::new();
    for (i, node) in netlist.nodes().iter().enumerate() {
        if !live[i] {
            continue;
        }
        if let NodeKind::Lut(table) = &node.kind {
            let next = intern.len() as u32;
            table_rank[i] = *intern.entry(table.words()).or_insert(next);
        }
    }
    let raw_slot: Vec<u32> = (0..netlist.len())
        .map(|i| match b.slot(NodeId(i as u32)) {
            Slot::Bit(s) | Slot::Word(s) => s,
        })
        .collect();
    let region_key = |id: &NodeId| {
        let i = id.index();
        match &netlist.nodes()[i].kind {
            NodeKind::Lut(_) => (0u8, table_rank[i], raw_slot[i]),
            kind if kind.output_type() == SignalType::Bit => (1, 0, raw_slot[i]),
            _ => (2, 0, raw_slot[i]),
        }
    };
    for level in leveled.by_level() {
        let mut block: Vec<NodeId> = level.into_iter().filter(|id| live[id.index()]).collect();
        block.sort_by_key(region_key);
        for id in block {
            b.emit(id, Segment::Main);
        }
    }
    b.latch_all();
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::eval::Evaluator;
    use crate::techmap::{tech_map, TechMapOptions};

    fn compiled_matches_reference(netlist: &Netlist, stimuli: &[Vec<Value>], cycles: usize) {
        let plan = compile(netlist).unwrap();
        let mut state = plan.new_state();
        let mut ev = Evaluator::new(netlist);
        let mut out = Vec::new();
        for v in stimuli {
            for c in 0..cycles {
                plan.run_cycle_into(&mut state, v, &mut out).unwrap();
                let reference = ev.run_cycle(v).unwrap();
                assert_eq!(out, reference, "cycle {c} diverged");
            }
        }
        assert_eq!(state.cycles(), (stimuli.len() * cycles) as u64);
    }

    #[test]
    fn combinational_adder_matches() {
        let mut b = CircuitBuilder::new("add");
        let a = b.word_input("a", 16);
        let c = b.word_input("b", 16);
        let s = b.add(&a, &c);
        b.word_output("s", &s);
        let n = b.finish().unwrap();
        compiled_matches_reference(
            &n,
            &[
                vec![Value::Word(65535), Value::Word(2)],
                vec![Value::Word(12345), Value::Word(999)],
            ],
            1,
        );
    }

    #[test]
    fn sequential_counter_matches() {
        let mut b = CircuitBuilder::new("ctr");
        let (q, h) = b.word_reg(5, 8);
        let next = b.inc(&q);
        b.connect_word_reg(h, &next);
        b.word_output("q", &q);
        let n = b.finish().unwrap();
        compiled_matches_reference(&n, &[vec![]], 6);
    }

    #[test]
    fn mapped_rom_matches() {
        let table: Vec<u32> = (0..256u32).map(|i| i.wrapping_mul(131) & 0xFF).collect();
        let mut b = CircuitBuilder::new("rom");
        let a = b.word_input("a", 8);
        let v = b.rom(&table, a.bits(), 8);
        b.word_output("v", &v);
        let n = tech_map(&b.finish().unwrap(), TechMapOptions::lut4()).unwrap();
        let stimuli: Vec<Vec<Value>> = [0u32, 1, 127, 200, 255]
            .iter()
            .map(|&x| vec![Value::Word(x)])
            .collect();
        compiled_matches_reference(&n, &stimuli, 1);
    }

    #[test]
    fn mac_and_state_matches() {
        let mut b = CircuitBuilder::new("macpipe");
        let a = b.word_input("a", 32);
        let c = b.word_input("b", 32);
        let (acc, h) = b.word_reg(0, 32);
        let m = b.mac(&a, &c, &acc);
        b.connect_word_reg(h, &m);
        b.word_output("acc", &acc);
        let n = b.finish().unwrap();
        compiled_matches_reference(&n, &[vec![Value::Word(3), Value::Word(5)]], 5);
    }

    #[test]
    fn input_shape_errors_match_reference() {
        let mut b = CircuitBuilder::new("t");
        let a = b.word_input("a", 8);
        b.word_output("o", &a);
        let n = b.finish().unwrap();
        let plan = compile(&n).unwrap();
        let mut st = plan.new_state();
        let mut out = Vec::new();
        assert!(matches!(
            plan.run_cycle_into(&mut st, &[], &mut out),
            Err(NetlistError::InputCountMismatch {
                expected: 1,
                found: 0
            })
        ));
        assert!(matches!(
            plan.run_cycle_into(&mut st, &[Value::Bit(true)], &mut out),
            Err(NetlistError::InputTypeMismatch { index: 0 })
        ));
    }

    #[test]
    fn batch_matches_per_lane_reference() {
        // A sequential datapath: every lane is an independent simulation.
        let mut b = CircuitBuilder::new("acc");
        let x = b.word_input("x", 16);
        let (acc, h) = b.word_reg(0, 16);
        let sum = b.add(&acc, &x);
        b.connect_word_reg(h, &sum);
        b.word_output("acc", &acc);
        let n = tech_map(&b.finish().unwrap(), TechMapOptions::lut4()).unwrap();
        let plan = compile(&n).unwrap();
        let lanes: Vec<Vec<Value>> = (0..BATCH_LANES as u32)
            .map(|l| vec![Value::Word(l.wrapping_mul(37) & 0xFFFF)])
            .collect();
        let mut state = plan.new_batch_state();
        let mut out = Vec::new();
        let mut refs: Vec<Evaluator> = (0..BATCH_LANES).map(|_| Evaluator::new(&n)).collect();
        for cycle in 0..4 {
            plan.run_batch_cycle(&mut state, &lanes, &mut out).unwrap();
            for (l, reference) in refs.iter_mut().enumerate() {
                let expect = reference.run_cycle(&lanes[l]).unwrap();
                assert_eq!(out[l], expect, "lane {l} cycle {cycle}");
            }
        }
    }

    #[test]
    fn batch_partial_lanes_and_errors() {
        let mut b = CircuitBuilder::new("xor");
        let a = b.word_input("a", 8);
        let c = b.word_input("b", 8);
        let x = b.xor_words(&a, &c);
        b.word_output("x", &x);
        let n = b.finish().unwrap();
        let plan = compile(&n).unwrap();
        assert!(plan.is_combinational());
        let mut state = plan.new_batch_state();
        let mut out = Vec::new();
        let lanes = vec![
            vec![Value::Word(3), Value::Word(5)],
            vec![Value::Word(0xFF), Value::Word(0x0F)],
        ];
        plan.run_batch_cycle(&mut state, &lanes, &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![Value::Word(6)]);
        assert_eq!(out[1], vec![Value::Word(0xF0)]);
        assert!(plan.run_batch_cycle(&mut state, &[], &mut out).is_err());
        let bad = vec![vec![Value::Word(1)]];
        assert!(matches!(
            plan.run_batch_cycle(&mut state, &bad, &mut out),
            Err(NetlistError::InputCountMismatch { .. })
        ));
    }

    #[test]
    fn wide_lut_batch_path_matches() {
        // An 8-input ROM LUT before mapping exercises the per-lane wide-LUT
        // branch of the batch interpreter.
        let table: Vec<u32> = (0..256u32).map(|i| (i * i) & 1).collect();
        let mut b = CircuitBuilder::new("widelut");
        let a = b.word_input("a", 8);
        let v = b.rom(&table, a.bits(), 1);
        b.word_output("v", &v);
        let n = b.finish().unwrap();
        let plan = compile(&n).unwrap();
        let lanes: Vec<Vec<Value>> = (0..BATCH_LANES as u32)
            .map(|l| vec![Value::Word((l * 3) & 0xFF)])
            .collect();
        let mut state = plan.new_batch_state();
        let mut out = Vec::new();
        plan.run_batch_cycle(&mut state, &lanes, &mut out).unwrap();
        for (l, lane) in lanes.iter().enumerate() {
            let mut ev = Evaluator::new(&n);
            assert_eq!(out[l], ev.run_cycle(lane).unwrap(), "lane {l}");
        }
    }

    #[test]
    fn wide_batch_matches_per_lane_reference_at_every_width() {
        // Sequential datapath at widths 256 and 512: every lane is an
        // independent simulation, and the wide sweeps must agree with the
        // per-lane reference (and therefore with the 64-lane path).
        let mut b = CircuitBuilder::new("acc");
        let x = b.word_input("x", 16);
        let (acc, h) = b.word_reg(3, 16);
        let sum = b.add(&acc, &x);
        b.connect_word_reg(h, &sum);
        b.word_output("acc", &acc);
        let n = tech_map(&b.finish().unwrap(), TechMapOptions::lut4()).unwrap();
        let plan = compile(&n).unwrap();

        fn check<const N: usize>(plan: &ExecPlan, n: &Netlist) {
            let width = N * BATCH_LANES;
            let lanes: Vec<Vec<Value>> = (0..width as u32)
                .map(|l| vec![Value::Word(l.wrapping_mul(131).wrapping_add(7) & 0xFFFF)])
                .collect();
            let mut state = plan.new_wide_batch_state::<N>();
            let mut out = Vec::new();
            let mut refs: Vec<Evaluator> = (0..width).map(|_| Evaluator::new(n)).collect();
            for cycle in 0..3 {
                plan.run_wide_batch_cycle(&mut state, &lanes, &mut out)
                    .unwrap();
                assert_eq!(out.len(), width);
                for (l, reference) in refs.iter_mut().enumerate() {
                    let expect = reference.run_cycle(&lanes[l]).unwrap();
                    assert_eq!(out[l], expect, "width {width} lane {l} cycle {cycle}");
                }
            }
            assert_eq!(state.cycles(), 3);
        }
        check::<4>(&plan, &n);
        check::<8>(&plan, &n);
    }

    #[test]
    fn any_batch_state_picks_narrowest_fitting_width() {
        let mut b = CircuitBuilder::new("t");
        let a = b.word_input("a", 8);
        b.word_output("o", &a);
        let plan = compile(&b.finish().unwrap()).unwrap();
        assert_eq!(plan.new_batch_state_for(1).lane_capacity(), 64);
        assert_eq!(plan.new_batch_state_for(64).lane_capacity(), 64);
        assert_eq!(plan.new_batch_state_for(65).lane_capacity(), 256);
        assert_eq!(plan.new_batch_state_for(256).lane_capacity(), 256);
        assert_eq!(plan.new_batch_state_for(257).lane_capacity(), 512);
        assert_eq!(plan.new_batch_state_for(100_000).lane_capacity(), 512);

        // Runtime dispatch runs the width the state carries and rejects
        // overflowing batches.
        let lanes: Vec<Vec<Value>> = (0..100u32).map(|l| vec![Value::Word(l)]).collect();
        let mut state = plan.new_batch_state_for(lanes.len());
        let mut out = Vec::new();
        plan.run_batch_cycle_any(&mut state, &lanes, &mut out)
            .unwrap();
        assert_eq!(state.cycles(), 1);
        assert_eq!(out.len(), 100);
        for (l, o) in out.iter().enumerate() {
            assert_eq!(o[0], Value::Word(l as u32));
        }
        let mut narrow = plan.new_batch_state_for(64);
        assert!(matches!(
            plan.run_batch_cycle_any(&mut narrow, &lanes, &mut out),
            Err(NetlistError::InputCountMismatch {
                expected: 64,
                found: 100
            })
        ));
    }

    #[test]
    fn tail_lanes_never_leak_into_outputs() {
        // Partial batches on a stateful circuit: tail lanes keep sweeping
        // power-on state, but outputs must cover exactly the supplied
        // lanes and match a full-width run lane for lane.
        let mut b = CircuitBuilder::new("acc");
        let x = b.word_input("x", 16);
        let (acc, h) = b.word_reg(41, 16);
        let sum = b.add(&acc, &x);
        b.connect_word_reg(h, &sum);
        b.word_output("acc", &acc);
        let n = tech_map(&b.finish().unwrap(), TechMapOptions::lut4()).unwrap();
        let plan = compile(&n).unwrap();

        fn check<const N: usize>(plan: &ExecPlan, active: usize) {
            let width = N * BATCH_LANES;
            assert!(active < width);
            let lanes: Vec<Vec<Value>> = (0..active as u32)
                .map(|l| vec![Value::Word(l.wrapping_mul(37) & 0xFFFF)])
                .collect();
            let mut partial = plan.new_wide_batch_state::<N>();
            let mut full = plan.new_wide_batch_state::<N>();
            let mut pout = Vec::new();
            let mut fout = Vec::new();
            let full_lanes: Vec<Vec<Value>> = (0..width)
                .map(|l| {
                    if l < active {
                        lanes[l].clone()
                    } else {
                        vec![Value::Word(0xDEAD)]
                    }
                })
                .collect();
            for _ in 0..3 {
                plan.run_wide_batch_cycle(&mut partial, &lanes, &mut pout)
                    .unwrap();
                plan.run_wide_batch_cycle(&mut full, &full_lanes, &mut fout)
                    .unwrap();
                assert_eq!(pout.len(), active, "outputs must cover exactly the batch");
                assert_eq!(pout[..], fout[..active], "active lanes diverged");
            }
        }
        check::<1>(&plan, 5);
        check::<4>(&plan, 65);
        check::<8>(&plan, 300);
    }

    #[test]
    fn same_function_luts_share_one_table_run() {
        // A ripple-carry adder tech-maps every column to the same pair of
        // LUT functions: the content-deduped pool must stay tiny.
        let mut b = CircuitBuilder::new("add");
        let a = b.word_input("a", 16);
        let c = b.word_input("b", 16);
        let s = b.add(&a, &c);
        b.word_output("s", &s);
        let n = tech_map(&b.finish().unwrap(), TechMapOptions::lut4()).unwrap();
        let plan = compile(&n).unwrap();
        let distinct: std::collections::HashSet<u64> = plan.tables.iter().copied().collect();
        assert_eq!(
            plan.tables.len(),
            distinct.len(),
            "table pool must hold each function once"
        );
        assert!(
            plan.tables.len() <= 8,
            "16-bit adder needs only a handful of LUT functions, got {}",
            plan.tables.len()
        );
    }

    #[test]
    fn transpose64_is_a_transpose() {
        let mut m = [0u64; 64];
        for (i, row) in m.iter_mut().enumerate() {
            *row = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(i as u32);
        }
        let orig = m;
        transpose64(&mut m);
        for (i, &row) in m.iter().enumerate() {
            for (j, &orow) in orig.iter().enumerate() {
                assert_eq!((row >> j) & 1, (orow >> i) & 1, "element ({i}, {j})");
            }
        }
        // An involution: transposing twice restores the matrix.
        transpose64(&mut m);
        assert_eq!(m, orig);
    }

    #[test]
    fn plan_reports_shape() {
        let mut b = CircuitBuilder::new("t");
        let a = b.word_input("a", 4);
        let c = b.word_input("b", 4);
        let s = b.add(&a, &c);
        b.word_output("s", &s);
        let plan = compile(&b.finish().unwrap()).unwrap();
        assert_eq!(plan.input_count(), 2);
        assert_eq!(plan.output_count(), 1);
        assert!(plan.micro_ops() > 0);
        assert!(plan.is_combinational());
    }
}
