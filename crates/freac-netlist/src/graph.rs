//! The netlist graph IR.
//!
//! A [`Netlist`] is a directed graph of [`Node`]s. Bit-level combinational
//! logic is represented by truth-table nodes ([`NodeKind::Lut`]); word-level
//! arithmetic is carried by 32-bit multiply-accumulate nodes
//! ([`NodeKind::Mac`]); state is held in flip-flops ([`NodeKind::Ff`]) and
//! word registers ([`NodeKind::WordReg`]). Primary inputs and outputs are
//! explicit nodes so the folding scheduler can treat operand fetches
//! (word inputs) and result writebacks (word outputs) as bus operations.

use std::fmt;

use crate::error::NetlistError;
use crate::truth::TruthTable;

/// Index of a node within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position in [`Netlist::nodes`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Whether a signal carries a single bit or a 32-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalType {
    /// One bit.
    Bit,
    /// A 32-bit word.
    Word,
}

/// A runtime signal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A single bit.
    Bit(bool),
    /// A 32-bit word.
    Word(u32),
}

impl Value {
    /// The signal type of this value.
    pub fn signal_type(self) -> SignalType {
        match self {
            Value::Bit(_) => SignalType::Bit,
            Value::Word(_) => SignalType::Word,
        }
    }

    /// Extracts the bit, if this is a bit value.
    pub fn as_bit(self) -> Option<bool> {
        match self {
            Value::Bit(b) => Some(b),
            Value::Word(_) => None,
        }
    }

    /// Extracts the word, if this is a word value.
    pub fn as_word(self) -> Option<u32> {
        match self {
            Value::Word(w) => Some(w),
            Value::Bit(_) => None,
        }
    }
}

/// The operation a node performs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Primary bit input with index `index` into the netlist input list.
    ///
    /// Bit inputs model configuration/parameter pins that are latched before
    /// an accelerator run; they are free at fold-schedule time.
    BitInput {
        /// Position in the primary input list.
        index: u32,
    },
    /// Primary 32-bit word input. Fetching it consumes a bus operation in
    /// the fold schedule (an operand load from scratchpad or LLC).
    WordInput {
        /// Position in the primary input list.
        index: u32,
    },
    /// Constant bit.
    ConstBit(bool),
    /// Constant word.
    ConstWord(u32),
    /// A combinational Boolean function of the node's inputs.
    ///
    /// Before technology mapping a LUT may have up to 16 inputs; after
    /// mapping every LUT has at most K inputs (4 or 5).
    Lut(TruthTable),
    /// D flip-flop: output is the value latched at the end of the previous
    /// original clock cycle; one bit input (D).
    Ff {
        /// Power-on value.
        init: bool,
    },
    /// 32-bit register: word analogue of [`NodeKind::Ff`]; one word input.
    WordReg {
        /// Power-on value.
        init: u32,
    },
    /// 32-bit multiply-accumulate: inputs `(a, b, acc)`, output
    /// `a.wrapping_mul(b).wrapping_add(acc)`. Maps to the dedicated MAC unit
    /// in a micro compute cluster.
    Mac,
    /// Packs up to 32 bit inputs (LSB first) into a word.
    Pack,
    /// Extracts bit `bit` of a single word input.
    Unpack {
        /// Which bit to extract (0 = LSB).
        bit: u32,
    },
    /// Primary bit output; one bit input.
    BitOutput {
        /// Position in the primary output list.
        index: u32,
    },
    /// Primary word output; one word input. Writing it consumes a bus
    /// operation in the fold schedule (a result store).
    WordOutput {
        /// Position in the primary output list.
        index: u32,
    },
}

impl NodeKind {
    /// Signal type this node produces.
    pub fn output_type(&self) -> SignalType {
        match self {
            NodeKind::BitInput { .. }
            | NodeKind::ConstBit(_)
            | NodeKind::Lut(_)
            | NodeKind::Ff { .. }
            | NodeKind::Unpack { .. }
            | NodeKind::BitOutput { .. } => SignalType::Bit,
            NodeKind::WordInput { .. }
            | NodeKind::ConstWord(_)
            | NodeKind::WordReg { .. }
            | NodeKind::Mac
            | NodeKind::Pack
            | NodeKind::WordOutput { .. } => SignalType::Word,
        }
    }

    /// Whether this node breaks combinational paths (its output at cycle
    /// `t` depends only on values from cycle `t - 1`).
    pub fn is_sequential(&self) -> bool {
        matches!(self, NodeKind::Ff { .. } | NodeKind::WordReg { .. })
    }

    /// Whether evaluating this node consumes a bus operation in the fold
    /// schedule (operand fetch or result writeback).
    pub fn is_bus_op(&self) -> bool {
        matches!(
            self,
            NodeKind::WordInput { .. } | NodeKind::WordOutput { .. }
        )
    }

    /// Short mnemonic for debug output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            NodeKind::BitInput { .. } => "ibit",
            NodeKind::WordInput { .. } => "iword",
            NodeKind::ConstBit(_) => "cbit",
            NodeKind::ConstWord(_) => "cword",
            NodeKind::Lut(_) => "lut",
            NodeKind::Ff { .. } => "ff",
            NodeKind::WordReg { .. } => "wreg",
            NodeKind::Mac => "mac",
            NodeKind::Pack => "pack",
            NodeKind::Unpack { .. } => "unpack",
            NodeKind::BitOutput { .. } => "obit",
            NodeKind::WordOutput { .. } => "oword",
        }
    }
}

/// A node plus its input connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The operation.
    pub kind: NodeKind,
    /// Operand nodes, in positional order.
    pub inputs: Vec<NodeId>,
}

/// A complete circuit.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    /// Primary inputs in declaration order.
    primary_inputs: Vec<NodeId>,
    /// Primary outputs in declaration order.
    primary_outputs: Vec<NodeId>,
    input_names: Vec<String>,
    output_names: Vec<String>,
}

impl Netlist {
    /// Creates an empty netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] for an out-of-range id.
    pub fn node(&self, id: NodeId) -> Result<&Node, NetlistError> {
        self.nodes
            .get(id.index())
            .ok_or(NetlistError::UnknownNode(id))
    }

    /// Swaps the truth table of LUT `id` for `table`, keeping its fan-in.
    ///
    /// This is the only sanctioned way to rewrite a finished netlist:
    /// ECO-style mask edits and deliberate fault injection (differential
    /// test harnesses corrupt one LUT mask to prove they can detect and
    /// shrink a real divergence) both go through it, so structural
    /// invariants stay checked.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] for an out-of-range id,
    /// [`NetlistError::TypeMismatch`] if the node is not a LUT, and
    /// [`NetlistError::ArityMismatch`] if `table` expects a different
    /// number of inputs than the node has wired.
    pub fn replace_lut_table(
        &mut self,
        id: NodeId,
        table: crate::truth::TruthTable,
    ) -> Result<(), NetlistError> {
        let node = self
            .nodes
            .get_mut(id.index())
            .ok_or(NetlistError::UnknownNode(id))?;
        let NodeKind::Lut(_) = node.kind else {
            return Err(NetlistError::TypeMismatch {
                node: id,
                expected: "a LUT node",
            });
        };
        if table.inputs() != node.inputs.len() {
            return Err(NetlistError::ArityMismatch {
                node: id,
                expected: node.inputs.len(),
                found: table.inputs(),
            });
        }
        node.kind = NodeKind::Lut(table);
        Ok(())
    }

    /// Primary inputs in declaration order.
    pub fn primary_inputs(&self) -> &[NodeId] {
        &self.primary_inputs
    }

    /// Primary outputs in declaration order.
    pub fn primary_outputs(&self) -> &[NodeId] {
        &self.primary_outputs
    }

    /// Name of primary input `index`.
    pub fn input_name(&self, index: usize) -> Option<&str> {
        self.input_names.get(index).map(String::as_str)
    }

    /// Name of primary output `index`.
    pub fn output_name(&self, index: usize) -> Option<&str> {
        self.output_names.get(index).map(String::as_str)
    }

    /// Adds a node and returns its id.
    ///
    /// This is a low-level operation; prefer
    /// [`CircuitBuilder`](crate::builder::CircuitBuilder). Input/output nodes
    /// added here are *also* registered in the primary input/output lists.
    pub fn push(&mut self, kind: NodeKind, inputs: Vec<NodeId>, name: Option<&str>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        match &kind {
            NodeKind::BitInput { .. } | NodeKind::WordInput { .. } => {
                self.primary_inputs.push(id);
                self.input_names
                    .push(name.unwrap_or("anonymous input").to_owned());
            }
            NodeKind::BitOutput { .. } | NodeKind::WordOutput { .. } => {
                self.primary_outputs.push(id);
                self.output_names
                    .push(name.unwrap_or("anonymous output").to_owned());
            }
            _ => {}
        }
        self.nodes.push(Node { kind, inputs });
        id
    }

    /// Replaces input `pos` of `node` with `src`.
    ///
    /// Used by the builder to close sequential feedback loops after the
    /// flip-flop node has been created.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] if `node` or `src` is out of
    /// range, or [`NetlistError::ArityMismatch`] if `pos` is not an existing
    /// input position of `node`.
    pub fn set_input(&mut self, node: NodeId, pos: usize, src: NodeId) -> Result<(), NetlistError> {
        if src.index() >= self.nodes.len() {
            return Err(NetlistError::UnknownNode(src));
        }
        let n = self
            .nodes
            .get_mut(node.index())
            .ok_or(NetlistError::UnknownNode(node))?;
        if pos >= n.inputs.len() {
            return Err(NetlistError::ArityMismatch {
                node,
                expected: pos + 1,
                found: n.inputs.len(),
            });
        }
        n.inputs[pos] = src;
        Ok(())
    }

    /// Checks structural invariants: arities, operand types, and absence of
    /// forward references that are not broken by sequential elements is *not*
    /// checked here (see [`crate::level::level_graph`] for cycle detection).
    ///
    /// # Errors
    ///
    /// Returns the first arity or type violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            for &inp in &node.inputs {
                if inp.index() >= self.nodes.len() {
                    return Err(NetlistError::UnknownNode(inp));
                }
            }
            let in_types: Vec<SignalType> = node
                .inputs
                .iter()
                .map(|&n| self.nodes[n.index()].kind.output_type())
                .collect();
            let require_arity = |n: usize| -> Result<(), NetlistError> {
                if node.inputs.len() != n {
                    Err(NetlistError::ArityMismatch {
                        node: id,
                        expected: n,
                        found: node.inputs.len(),
                    })
                } else {
                    Ok(())
                }
            };
            let all_bits = |expected: &'static str| -> Result<(), NetlistError> {
                if in_types.iter().any(|&t| t != SignalType::Bit) {
                    Err(NetlistError::TypeMismatch { node: id, expected })
                } else {
                    Ok(())
                }
            };
            let all_words = |expected: &'static str| -> Result<(), NetlistError> {
                if in_types.iter().any(|&t| t != SignalType::Word) {
                    Err(NetlistError::TypeMismatch { node: id, expected })
                } else {
                    Ok(())
                }
            };
            match &node.kind {
                NodeKind::BitInput { .. }
                | NodeKind::WordInput { .. }
                | NodeKind::ConstBit(_)
                | NodeKind::ConstWord(_) => require_arity(0)?,
                NodeKind::Lut(t) => {
                    require_arity(t.inputs())?;
                    all_bits("bit operands for LUT")?;
                }
                NodeKind::Ff { .. } => {
                    require_arity(1)?;
                    all_bits("bit operand for flip-flop")?;
                }
                NodeKind::WordReg { .. } => {
                    require_arity(1)?;
                    all_words("word operand for register")?;
                }
                NodeKind::Mac => {
                    require_arity(3)?;
                    all_words("word operands for MAC")?;
                }
                NodeKind::Pack => {
                    if node.inputs.is_empty() || node.inputs.len() > 32 {
                        return Err(NetlistError::ArityMismatch {
                            node: id,
                            expected: 32,
                            found: node.inputs.len(),
                        });
                    }
                    all_bits("bit operands for pack")?;
                }
                NodeKind::Unpack { .. } => {
                    require_arity(1)?;
                    all_words("word operand for unpack")?;
                }
                NodeKind::BitOutput { .. } => {
                    require_arity(1)?;
                    all_bits("bit operand for output")?;
                }
                NodeKind::WordOutput { .. } => {
                    require_arity(1)?;
                    all_words("word operand for output")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut n = Netlist::new("tiny");
        let a = n.push(NodeKind::BitInput { index: 0 }, vec![], Some("a"));
        let b = n.push(NodeKind::BitInput { index: 1 }, vec![], Some("b"));
        let x = n.push(NodeKind::Lut(TruthTable::xor2()), vec![a, b], None);
        n.push(NodeKind::BitOutput { index: 0 }, vec![x], Some("y"));
        n
    }

    #[test]
    fn push_registers_io() {
        let n = tiny();
        assert_eq!(n.primary_inputs().len(), 2);
        assert_eq!(n.primary_outputs().len(), 1);
        assert_eq!(n.input_name(0), Some("a"));
        assert_eq!(n.output_name(0), Some("y"));
        assert_eq!(n.len(), 4);
        n.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut n = Netlist::new("bad");
        let a = n.push(NodeKind::BitInput { index: 0 }, vec![], None);
        n.push(NodeKind::Lut(TruthTable::xor2()), vec![a], None);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let mut n = Netlist::new("bad");
        let w = n.push(NodeKind::WordInput { index: 0 }, vec![], None);
        let i = n.push(NodeKind::BitInput { index: 1 }, vec![], None);
        n.push(NodeKind::Mac, vec![w, w, i], None);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_unknown_node() {
        let mut n = Netlist::new("bad");
        n.push(NodeKind::BitOutput { index: 0 }, vec![NodeId(99)], None);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::UnknownNode(NodeId(99)))
        ));
    }

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Ff { init: false }.is_sequential());
        assert!(NodeKind::WordReg { init: 0 }.is_sequential());
        assert!(!NodeKind::Mac.is_sequential());
        assert!(NodeKind::WordInput { index: 0 }.is_bus_op());
        assert!(NodeKind::WordOutput { index: 0 }.is_bus_op());
        assert!(!NodeKind::BitInput { index: 0 }.is_bus_op());
        assert_eq!(NodeKind::Mac.output_type(), SignalType::Word);
        assert_eq!(
            NodeKind::Lut(TruthTable::and2()).output_type(),
            SignalType::Bit
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Bit(true).as_bit(), Some(true));
        assert_eq!(Value::Bit(true).as_word(), None);
        assert_eq!(Value::Word(7).as_word(), Some(7));
        assert_eq!(Value::Word(7).signal_type(), SignalType::Word);
    }
}
