//! Netlist optimization: LUT packing.
//!
//! Shannon decomposition and gate-level construction leave many small LUTs
//! whose only consumer is another LUT. When the merged function still fits
//! the physical LUT width, collapsing producer into consumer removes a
//! node *and* a fold step's worth of work. The pass is semantics-preserving
//! (property-tested against the reference evaluator) and is evaluated as an
//! ablation: the baseline evaluation runs without it, matching the paper's
//! VTR-produced netlists.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId, NodeKind};
use crate::truth::TruthTable;

/// Result summary of a packing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackReport {
    /// LUT nodes before packing.
    pub luts_before: usize,
    /// LUT nodes after packing.
    pub luts_after: usize,
    /// Merges performed.
    pub merges: usize,
}

impl PackReport {
    /// Fraction of LUTs eliminated (0 when there were none).
    pub fn reduction(&self) -> f64 {
        if self.luts_before == 0 {
            0.0
        } else {
            1.0 - self.luts_after as f64 / self.luts_before as f64
        }
    }
}

/// Packs single-fanout LUTs into their consumers when the merged support
/// fits `k` inputs. Returns the optimized netlist and a report.
///
/// # Errors
///
/// Returns [`NetlistError::BadLutSize`] for `k` outside `2..=6`, or
/// structural errors from a malformed input.
pub fn pack_luts(netlist: &Netlist, k: usize) -> Result<(Netlist, PackReport), NetlistError> {
    if !(2..=6).contains(&k) {
        return Err(NetlistError::BadLutSize(k));
    }
    netlist.validate()?;

    // Fanout counts (all uses, including sequential and output consumers —
    // a producer feeding anything else must survive).
    let mut fanout = vec![0usize; netlist.len()];
    for node in netlist.nodes() {
        for &inp in &node.inputs {
            fanout[inp.index()] += 1;
        }
    }

    // Working copy of every node's (kind, inputs); merged nodes are
    // tombstoned and dropped during rebuild.
    let mut kinds: Vec<NodeKind> = netlist.nodes().iter().map(|n| n.kind.clone()).collect();
    let mut inputs: Vec<Vec<NodeId>> = netlist.nodes().iter().map(|n| n.inputs.clone()).collect();
    let mut dead = vec![false; netlist.len()];
    let mut merges = 0usize;

    // Process consumers in id order; producers have smaller ids (builder
    // invariant for combinational nodes), so each merge sees producers that
    // are themselves already packed.
    for c in 0..netlist.len() {
        while let NodeKind::Lut(c_table) = kinds[c].clone() {
            // Find a mergeable operand: a LUT with exactly one fanout.
            let candidate = inputs[c].iter().enumerate().find_map(|(pos, &p)| {
                let pi = p.index();
                if dead[pi] || fanout[pi] != 1 {
                    return None;
                }
                let NodeKind::Lut(p_table) = &kinds[pi] else {
                    return None;
                };
                // Combined support: consumer inputs minus p, plus p's inputs.
                let mut support: Vec<NodeId> =
                    inputs[c].iter().copied().filter(|&x| x != p).collect();
                for &pin in &inputs[pi] {
                    if !support.contains(&pin) {
                        support.push(pin);
                    }
                }
                if support.len() <= k {
                    Some((pos, p, p_table.clone(), support))
                } else {
                    None
                }
            });
            let Some((pos, p, p_table, support)) = candidate else {
                break;
            };

            // Build the merged table over `support`.
            let c_inputs = inputs[c].clone();
            let p_inputs = inputs[p.index()].clone();
            let position_of: HashMap<NodeId, usize> =
                support.iter().enumerate().map(|(i, &n)| (n, i)).collect();
            let merged = TruthTable::from_fn(support.len(), |row| {
                let bit_of = |n: NodeId| (row >> position_of[&n]) & 1 == 1;
                // Evaluate the producer on this assignment.
                let mut p_row = 0usize;
                for (i, &pin) in p_inputs.iter().enumerate() {
                    if bit_of(pin) {
                        p_row |= 1 << i;
                    }
                }
                let p_val = p_table.eval(p_row);
                // Evaluate the consumer, substituting the producer's value.
                let mut c_row = 0usize;
                for (i, &cin) in c_inputs.iter().enumerate() {
                    let v = if i == pos { p_val } else { bit_of(cin) };
                    if v {
                        c_row |= 1 << i;
                    }
                }
                c_table.eval(c_row)
            })?;

            kinds[c] = NodeKind::Lut(merged);
            inputs[c] = support;
            dead[p.index()] = true;
            merges += 1;
            // Fanout bookkeeping: p's consumer edges to its inputs are
            // gone; c now reads each of them once. An input p shared with
            // c therefore nets one fewer consumer; an input new to c nets
            // zero change.
            for &pin in &p_inputs {
                fanout[pin.index()] -= 1;
                let already_read_by_c = c_inputs.contains(&pin);
                if !already_read_by_c {
                    fanout[pin.index()] += 1;
                }
            }
        }
    }

    // Rebuild, dropping tombstones and remapping ids.
    let mut out = Netlist::new(netlist.name().to_owned());
    let mut map: Vec<Option<NodeId>> = vec![None; netlist.len()];
    let mut seq_patches: Vec<(NodeId, NodeId)> = Vec::new();
    for i in 0..netlist.len() {
        if dead[i] {
            continue;
        }
        let name = primary_name(netlist, NodeId(i as u32));
        let new_id = if kinds[i].is_sequential() {
            let placeholder = NodeId(out.len() as u32);
            let id = out.push(kinds[i].clone(), vec![placeholder], name);
            seq_patches.push((id, inputs[i][0]));
            id
        } else {
            let ins: Result<Vec<NodeId>, NetlistError> = inputs[i]
                .iter()
                .map(|&x| map[x.index()].ok_or(NetlistError::UnknownNode(x)))
                .collect();
            out.push(kinds[i].clone(), ins?, name)
        };
        map[i] = Some(new_id);
    }
    for (node, old_src) in seq_patches {
        let src = map[old_src.index()].ok_or(NetlistError::UnknownNode(old_src))?;
        out.set_input(node, 0, src)?;
    }
    out.validate()?;

    let before = netlist
        .nodes()
        .iter()
        .filter(|n| matches!(n.kind, NodeKind::Lut(_)))
        .count();
    Ok((
        out,
        PackReport {
            luts_before: before,
            luts_after: before - merges,
            merges,
        },
    ))
}

fn primary_name(netlist: &Netlist, id: NodeId) -> Option<&str> {
    let node = &netlist.nodes()[id.index()];
    match node.kind {
        NodeKind::BitInput { .. } | NodeKind::WordInput { .. } => {
            let pos = netlist.primary_inputs().iter().position(|&x| x == id)?;
            netlist.input_name(pos)
        }
        NodeKind::BitOutput { .. } | NodeKind::WordOutput { .. } => {
            let pos = netlist.primary_outputs().iter().position(|&x| x == id)?;
            netlist.output_name(pos)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::eval::equivalent_on;
    use crate::graph::Value;
    use crate::techmap::{tech_map, TechMapOptions};

    fn adder(width: usize) -> Netlist {
        let mut b = CircuitBuilder::new("add");
        let a = b.word_input("a", width);
        let c = b.word_input("b", width);
        let s = b.add(&a, &c);
        b.word_output("s", &s);
        b.finish().unwrap()
    }

    #[test]
    fn bad_k_rejected() {
        let n = adder(4);
        assert!(matches!(pack_luts(&n, 1), Err(NetlistError::BadLutSize(1))));
    }

    #[test]
    fn packing_preserves_function_exhaustively() {
        let n = tech_map(&adder(6), TechMapOptions::lut4()).unwrap();
        let (packed, report) = pack_luts(&n, 4).unwrap();
        assert_eq!(report.luts_after + report.merges, report.luts_before);
        let vectors: Vec<Vec<Value>> = (0..64u32)
            .flat_map(|a| (0..4u32).map(move |b| vec![Value::Word(a), Value::Word(b * 17 % 64)]))
            .collect();
        assert!(equivalent_on(&n, &packed, &vectors, 1).unwrap());
    }

    #[test]
    fn packing_reduces_xor_reduction_trees() {
        // A wide XOR reduction built from xor2 gates packs well at k=4.
        let mut b = CircuitBuilder::new("xorred");
        let a = b.word_input("a", 16);
        let bits: Vec<_> = (0..16).map(|i| a.bit(i)).collect();
        let r = b.reduce_xor(&bits);
        b.bit_output("r", r);
        let n = b.finish().unwrap();
        let (packed, report) = pack_luts(&n, 4).unwrap();
        assert!(report.merges > 0, "xor tree must pack");
        assert!(report.reduction() > 0.3, "got {}", report.reduction());
        let vecs: Vec<Vec<Value>> = (0..200u32)
            .map(|i| vec![Value::Word(i * 327 % 65536)])
            .collect();
        assert!(equivalent_on(&n, &packed, &vecs, 1).unwrap());
    }

    #[test]
    fn multi_fanout_producers_survive() {
        // x = a ^ b feeds two consumers: it must not be merged away.
        let mut b = CircuitBuilder::new("shared");
        let a = b.word_input("a", 2);
        let x = b.xor(a.bit(0), a.bit(1));
        let y = b.not(x);
        let z = b.and(x, a.bit(0));
        b.bit_output("y", y);
        b.bit_output("z", z);
        let n = b.finish().unwrap();
        let (packed, _) = pack_luts(&n, 4).unwrap();
        let vecs: Vec<Vec<Value>> = (0..4u32).map(|i| vec![Value::Word(i)]).collect();
        assert!(equivalent_on(&n, &packed, &vecs, 1).unwrap());
    }

    #[test]
    fn sequential_circuits_pack_safely() {
        let mut b = CircuitBuilder::new("ctr");
        let (q, h) = b.word_reg(0, 8);
        let one = b.const_word(1, 8);
        let next = b.add(&q, &one);
        b.connect_word_reg(h, &next);
        b.word_output("q", &q);
        let n = b.finish().unwrap();
        let (packed, _) = pack_luts(&n, 4).unwrap();
        assert!(equivalent_on(&n, &packed, &[vec![]], 10).unwrap());
    }

    #[test]
    fn packed_netlists_still_tech_map_and_fold() {
        use freac_fold_check::check;
        // Internal helper avoided: simply assert a mapped+packed netlist
        // schedules (cross-crate folding is covered by integration tests).
        mod freac_fold_check {
            use super::super::pack_luts;
            use crate::techmap::{tech_map, TechMapOptions};
            use crate::Netlist;

            pub fn check(n: &Netlist) {
                let mapped = tech_map(n, TechMapOptions::lut4()).unwrap();
                let (packed, _) = pack_luts(&mapped, 4).unwrap();
                packed.validate().unwrap();
                crate::level::level_graph(&packed).unwrap();
            }
        }
        check(&adder(16));
    }
}
