//! Structural Verilog export.
//!
//! Emits a synthesizable module: LUT nodes become `assign` equations
//! derived from their truth tables, sequential elements become clocked
//! `always` blocks, and word-level nodes (MAC, pack/unpack) become
//! behavioural assigns — the form an RTL engineer would hand to a synthesis
//! tool to cross-check the netlist against its HLS source.

use std::fmt::Write as _;

use crate::graph::{Netlist, NodeId, NodeKind, SignalType};

/// Renders the netlist as a Verilog-2001 module.
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let name = sanitize(netlist.name());
    let sig = |id: NodeId| format!("n{}", id.0);

    // Ports: clk + every primary input/output under its declared name.
    let mut ports = vec!["clk".to_owned()];
    let mut port_decls = vec!["  input wire clk;".to_owned()];
    for (pos, &id) in netlist.primary_inputs().iter().enumerate() {
        let pname = format!(
            "{}_{}",
            sanitize(netlist.input_name(pos).unwrap_or("in")),
            id.0
        );
        ports.push(pname.clone());
        let width = width_decl(netlist, id);
        port_decls.push(format!("  input wire {width}{pname};"));
    }
    for (pos, &id) in netlist.primary_outputs().iter().enumerate() {
        let pname = format!(
            "{}_{}",
            sanitize(netlist.output_name(pos).unwrap_or("out")),
            id.0
        );
        ports.push(pname.clone());
        let width = width_decl(netlist, id);
        port_decls.push(format!("  output wire {width}{pname};"));
    }

    let _ = writeln!(out, "module {name} (");
    let _ = writeln!(out, "  {}", ports.join(",\n  "));
    let _ = writeln!(out, ");");
    for d in port_decls {
        let _ = writeln!(out, "{d}");
    }
    let _ = writeln!(out);

    // Internal declarations.
    for (i, node) in netlist.nodes().iter().enumerate() {
        let id = NodeId(i as u32);
        let width = width_decl(netlist, id);
        match node.kind {
            NodeKind::Ff { .. } | NodeKind::WordReg { .. } => {
                let _ = writeln!(out, "  reg {width}{};", sig(id));
            }
            _ => {
                let _ = writeln!(out, "  wire {width}{};", sig(id));
            }
        }
    }
    let _ = writeln!(out);

    // Bodies.
    for (i, node) in netlist.nodes().iter().enumerate() {
        let id = NodeId(i as u32);
        let me = sig(id);
        match &node.kind {
            NodeKind::BitInput { .. } | NodeKind::WordInput { .. } => {
                let pos = netlist
                    .primary_inputs()
                    .iter()
                    .position(|&x| x == id)
                    .expect("registered input");
                let pname = format!(
                    "{}_{}",
                    sanitize(netlist.input_name(pos).unwrap_or("in")),
                    id.0
                );
                let _ = writeln!(out, "  assign {me} = {pname};");
            }
            NodeKind::ConstBit(v) => {
                let _ = writeln!(out, "  assign {me} = 1'b{};", u8::from(*v));
            }
            NodeKind::ConstWord(v) => {
                let _ = writeln!(out, "  assign {me} = 32'h{v:08x};");
            }
            NodeKind::Lut(t) => {
                // Sum-of-products over the ON-set.
                let terms: Vec<String> = (0..t.rows())
                    .filter(|&r| t.get(r))
                    .map(|r| {
                        let lits: Vec<String> = node
                            .inputs
                            .iter()
                            .enumerate()
                            .map(|(b, &inp)| {
                                if (r >> b) & 1 == 1 {
                                    sig(inp)
                                } else {
                                    format!("~{}", sig(inp))
                                }
                            })
                            .collect();
                        format!("({})", lits.join(" & "))
                    })
                    .collect();
                if terms.is_empty() {
                    let _ = writeln!(out, "  assign {me} = 1'b0;");
                } else {
                    let _ = writeln!(out, "  assign {me} = {};", terms.join(" | "));
                }
            }
            NodeKind::Ff { init } => {
                let _ = writeln!(out, "  initial {me} = 1'b{};", u8::from(*init));
                let _ = writeln!(
                    out,
                    "  always @(posedge clk) {me} <= {};",
                    sig(node.inputs[0])
                );
            }
            NodeKind::WordReg { init } => {
                let _ = writeln!(out, "  initial {me} = 32'h{init:08x};");
                let _ = writeln!(
                    out,
                    "  always @(posedge clk) {me} <= {};",
                    sig(node.inputs[0])
                );
            }
            NodeKind::Mac => {
                let _ = writeln!(
                    out,
                    "  assign {me} = {} * {} + {};",
                    sig(node.inputs[0]),
                    sig(node.inputs[1]),
                    sig(node.inputs[2])
                );
            }
            NodeKind::Pack => {
                // Bits LSB-first -> concatenation MSB-first, zero padded.
                let mut parts: Vec<String> = Vec::new();
                let pad = 32 - node.inputs.len();
                if pad > 0 {
                    parts.push(format!("{pad}'b0"));
                }
                for &inp in node.inputs.iter().rev() {
                    parts.push(sig(inp));
                }
                let _ = writeln!(out, "  assign {me} = {{{}}};", parts.join(", "));
            }
            NodeKind::Unpack { bit } => {
                let _ = writeln!(out, "  assign {me} = {}[{bit}];", sig(node.inputs[0]));
            }
            NodeKind::BitOutput { .. } | NodeKind::WordOutput { .. } => {
                let _ = writeln!(out, "  assign {me} = {};", sig(node.inputs[0]));
                let pos = netlist
                    .primary_outputs()
                    .iter()
                    .position(|&x| x == id)
                    .expect("registered output");
                let pname = format!(
                    "{}_{}",
                    sanitize(netlist.output_name(pos).unwrap_or("out")),
                    id.0
                );
                let _ = writeln!(out, "  assign {pname} = {me};");
            }
        }
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn width_decl(netlist: &Netlist, id: NodeId) -> &'static str {
    match netlist.nodes()[id.index()].kind.output_type() {
        SignalType::Bit => "",
        SignalType::Word => "[31:0] ",
    }
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    fn sample() -> Netlist {
        let mut b = CircuitBuilder::new("vlog sample");
        let a = b.word_input("a", 8);
        let c = b.word_input("b", 8);
        let s = b.add(&a, &c);
        let (q, h) = b.ff(true);
        let d = b.xor(q, s.bit(0));
        b.connect_ff(h, d);
        b.word_output("sum", &s);
        b.bit_output("tgl", q);
        b.finish().unwrap()
    }

    #[test]
    fn module_structure() {
        let v = to_verilog(&sample());
        assert!(v.starts_with("module vlog_sample ("));
        assert!(v.contains("input wire clk;"));
        assert!(v.contains("input wire [31:0] a_"));
        assert!(v.contains("output wire [31:0] sum_"));
        assert!(v.contains("output wire tgl_"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn luts_become_sum_of_products() {
        let mut b = CircuitBuilder::new("x");
        let a = b.word_input("a", 2);
        let x = b.xor(a.bit(0), a.bit(1));
        b.bit_output("x", x);
        let v = to_verilog(&b.finish().unwrap());
        // XOR ON-set: (~a & b) | (a & ~b) in some node naming.
        assert!(v.contains(" | "), "{v}");
        assert!(v.contains("~n"), "{v}");
    }

    #[test]
    fn sequential_elements_are_clocked() {
        let v = to_verilog(&sample());
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("initial"));
    }

    #[test]
    fn every_wire_is_driven_exactly_once() {
        let n = sample();
        let v = to_verilog(&n);
        for i in 0..n.len() {
            let drives = v.matches(&format!("assign n{i} = ")).count()
                + v.matches(&format!("always @(posedge clk) n{i} <= "))
                    .count();
            assert_eq!(drives, 1, "node n{i} must have exactly one driver");
        }
    }

    #[test]
    fn mac_is_behavioural() {
        let mut b = CircuitBuilder::new("m");
        let a = b.word_input("a", 32);
        let c = b.word_input("b", 32);
        let z = b.const_word(0, 32);
        let m = b.mac(&a, &c, &z);
        b.word_output("m", &m);
        let v = to_verilog(&b.finish().unwrap());
        assert!(v.contains(" * "), "{v}");
        assert!(v.contains(" + "), "{v}");
    }
}
