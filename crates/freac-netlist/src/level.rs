//! Topological ordering and leveling of the combinational DAG.
//!
//! Logic folding implements one *original* clock cycle of the circuit as a
//! sequence of fold steps. Within one original cycle, sequential nodes
//! (flip-flops, word registers) act as sources: they present the value
//! latched at the end of the previous cycle, so their inputs do not
//! constrain the combinational order. The leveled graph produced here is the
//! structure partitioned by the folding scheduler (paper Sec. IV, Fig. 4a).

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId};

/// A topological order of the combinational dependencies plus the ASAP level
/// of every node.
#[derive(Debug, Clone)]
pub struct LeveledGraph {
    order: Vec<NodeId>,
    level: Vec<u32>,
    depth: u32,
}

impl LeveledGraph {
    /// Nodes in a valid combinational evaluation order. Sequential nodes
    /// appear first (level 0) since they supply last-cycle values.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// ASAP level of `id` (0 for sources).
    pub fn level_of(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// Number of levels (combinational depth + 1); 0 for an empty netlist.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Nodes grouped by level, each inner vector in id order.
    pub fn by_level(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.depth as usize];
        for &n in &self.order {
            out[self.level[n.index()] as usize].push(n);
        }
        out
    }
}

/// Computes a topological order of the netlist's combinational dependency
/// graph, with ASAP levels.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the circuit contains a
/// cycle that is not broken by a sequential element.
pub fn level_graph(netlist: &Netlist) -> Result<LeveledGraph, NetlistError> {
    let n = netlist.len();
    // Combinational in-degree: sequential nodes contribute no combinational
    // dependency to their consumers, and their own inputs are ignored within
    // a cycle.
    let mut indeg = vec![0u32; n];
    let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (i, node) in netlist.nodes().iter().enumerate() {
        if node.kind.is_sequential() {
            continue; // its D input is consumed at the *end* of the cycle
        }
        for &inp in &node.inputs {
            let src = &netlist.nodes()[inp.index()];
            if src.kind.is_sequential() {
                continue; // acts as a source within the cycle
            }
            indeg[i] += 1;
            succs[inp.index()].push(NodeId(i as u32));
        }
    }

    let mut level = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    // Process in id order for determinism.
    let mut ready: std::collections::VecDeque<NodeId> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(|i| NodeId(i as u32))
        .collect();
    while let Some(id) = ready.pop_front() {
        order.push(id);
        for &s in &succs[id.index()] {
            let li = level[id.index()] + 1;
            if li > level[s.index()] {
                level[s.index()] = li;
            }
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                ready.push_back(s);
            }
        }
    }
    if order.len() != n {
        // Find a node still blocked: it participates in (or depends on) a cycle.
        let blocked = (0..n)
            .find(|&i| indeg[i] > 0)
            .map(|i| NodeId(i as u32))
            .expect("some node must be blocked if order is incomplete");
        return Err(NetlistError::CombinationalCycle(blocked));
    }
    let depth = if n == 0 {
        0
    } else {
        level.iter().copied().max().unwrap_or(0) + 1
    };
    Ok(LeveledGraph {
        order,
        level,
        depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Netlist, NodeKind};
    use crate::truth::TruthTable;

    #[test]
    fn chain_levels() {
        let mut n = Netlist::new("chain");
        let a = n.push(NodeKind::BitInput { index: 0 }, vec![], None);
        let x1 = n.push(NodeKind::Lut(TruthTable::not1()), vec![a], None);
        let x2 = n.push(NodeKind::Lut(TruthTable::not1()), vec![x1], None);
        let o = n.push(NodeKind::BitOutput { index: 0 }, vec![x2], None);
        let lg = level_graph(&n).unwrap();
        assert_eq!(lg.level_of(a), 0);
        assert_eq!(lg.level_of(x1), 1);
        assert_eq!(lg.level_of(x2), 2);
        assert_eq!(lg.level_of(o), 3);
        assert_eq!(lg.depth(), 4);
    }

    #[test]
    fn ff_breaks_cycle() {
        // counter bit: ff -> not -> ff (feedback through the flip-flop)
        let mut n = Netlist::new("t");
        // Push the FF first with a placeholder input, then patch: easier to
        // construct via two pushes since push API takes inputs eagerly. Use
        // index trick: NOT reads FF, FF reads NOT.
        let ff = n.push(NodeKind::Ff { init: false }, vec![NodeId(1)], None);
        let inv = n.push(NodeKind::Lut(TruthTable::not1()), vec![ff], None);
        n.push(NodeKind::BitOutput { index: 0 }, vec![inv], None);
        n.validate().unwrap();
        let lg = level_graph(&n).unwrap();
        // The FF's Q value is available at the start of the cycle, so both
        // it and its consumer sit at level 0 of the combinational graph.
        assert_eq!(lg.level_of(ff), 0);
        assert_eq!(lg.level_of(inv), 0);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("loop");
        // lut0 reads lut1, lut1 reads lut0.
        n.push(NodeKind::Lut(TruthTable::not1()), vec![NodeId(1)], None);
        n.push(NodeKind::Lut(TruthTable::not1()), vec![NodeId(0)], None);
        assert!(matches!(
            level_graph(&n),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn by_level_partitions_all_nodes() {
        let mut n = Netlist::new("p");
        let a = n.push(NodeKind::BitInput { index: 0 }, vec![], None);
        let b = n.push(NodeKind::BitInput { index: 1 }, vec![], None);
        let x = n.push(NodeKind::Lut(TruthTable::and2()), vec![a, b], None);
        let y = n.push(NodeKind::Lut(TruthTable::or2()), vec![a, b], None);
        let z = n.push(NodeKind::Lut(TruthTable::xor2()), vec![x, y], None);
        n.push(NodeKind::BitOutput { index: 0 }, vec![z], None);
        let lg = level_graph(&n).unwrap();
        let levels = lg.by_level();
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, n.len());
        assert_eq!(levels[0].len(), 2); // the two inputs
        assert_eq!(levels[1].len(), 2); // and, or
    }

    #[test]
    fn empty_netlist() {
        let n = Netlist::new("empty");
        let lg = level_graph(&n).unwrap();
        assert_eq!(lg.depth(), 0);
        assert!(lg.order().is_empty());
    }
}
