//! Reference (un-folded) evaluation of a netlist.
//!
//! [`Evaluator`] executes the circuit one *original* clock cycle at a time:
//! all combinational logic settles within the cycle and sequential elements
//! latch at the cycle boundary. The folded executor in `freac-fold` must
//! produce bit-identical results; that equivalence is the central functional
//! correctness property of the reproduction and is property-tested.

use std::fmt;

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeKind, Value};
use crate::level::{level_graph, LeveledGraph};

/// Evaluates a netlist cycle by cycle.
#[derive(Debug)]
pub struct Evaluator<'a> {
    netlist: &'a Netlist,
    leveled: LeveledGraph,
    /// Current combinational value of every node.
    values: Vec<Value>,
    /// Latched state of sequential nodes (indexed like nodes; unused slots
    /// stay at their init).
    state: Vec<Value>,
    cycles: u64,
}

impl<'a> Evaluator<'a> {
    /// Prepares an evaluator, resetting all sequential state to its init
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation or contains a combinational
    /// cycle — construct netlists through
    /// [`CircuitBuilder`](crate::builder::CircuitBuilder) to rule both out.
    pub fn new(netlist: &'a Netlist) -> Self {
        netlist
            .validate()
            .expect("netlist must be structurally valid");
        let leveled = level_graph(netlist).expect("netlist must be acyclic");
        let mut state = vec![Value::Bit(false); netlist.len()];
        for (i, node) in netlist.nodes().iter().enumerate() {
            match node.kind {
                NodeKind::Ff { init } => state[i] = Value::Bit(init),
                NodeKind::WordReg { init } => state[i] = Value::Word(init),
                _ => {}
            }
        }
        Evaluator {
            netlist,
            leveled,
            values: vec![Value::Bit(false); netlist.len()],
            state,
            cycles: 0,
        }
    }

    /// Number of original clock cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets sequential state to power-on values.
    pub fn reset(&mut self) {
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            match node.kind {
                NodeKind::Ff { init } => self.state[i] = Value::Bit(init),
                NodeKind::WordReg { init } => self.state[i] = Value::Word(init),
                _ => {}
            }
        }
        self.cycles = 0;
    }

    /// Runs one original clock cycle with the given primary input values (in
    /// primary-input declaration order) and returns the primary outputs (in
    /// declaration order).
    ///
    /// # Errors
    ///
    /// Returns an error if the number or types of `inputs` do not match the
    /// netlist's primary inputs.
    pub fn run_cycle(&mut self, inputs: &[Value]) -> Result<Vec<Value>, NetlistError> {
        let mut out = Vec::with_capacity(self.netlist.primary_outputs().len());
        self.run_cycle_into(inputs, &mut out)?;
        Ok(out)
    }

    /// Like [`Self::run_cycle`] but writes the outputs into `out` (cleared
    /// first), so a caller driving many cycles reuses one buffer instead of
    /// allocating per cycle.
    ///
    /// # Errors
    ///
    /// Returns an error if the number or types of `inputs` do not match the
    /// netlist's primary inputs; `out` is left cleared in that case.
    pub fn run_cycle_into(
        &mut self,
        inputs: &[Value],
        out: &mut Vec<Value>,
    ) -> Result<(), NetlistError> {
        out.clear();
        let pis = self.netlist.primary_inputs();
        if inputs.len() != pis.len() {
            return Err(NetlistError::InputCountMismatch {
                expected: pis.len(),
                found: inputs.len(),
            });
        }
        for (i, (&pi, &v)) in pis.iter().zip(inputs).enumerate() {
            let expect = self.netlist.nodes()[pi.index()].kind.output_type();
            if v.signal_type() != expect {
                return Err(NetlistError::InputTypeMismatch { index: i });
            }
            self.values[pi.index()] = v;
        }

        // Combinational settle in topological order.
        for &id in self.leveled.order().iter() {
            let node = &self.netlist.nodes()[id.index()];
            let val = match &node.kind {
                NodeKind::BitInput { .. } | NodeKind::WordInput { .. } => {
                    continue; // set above
                }
                NodeKind::ConstBit(b) => Value::Bit(*b),
                NodeKind::ConstWord(w) => Value::Word(*w),
                NodeKind::Ff { .. } | NodeKind::WordReg { .. } => self.state[id.index()],
                NodeKind::Lut(t) => {
                    let mut row = 0usize;
                    for (i, &inp) in node.inputs.iter().enumerate() {
                        if self.values[inp.index()]
                            .as_bit()
                            .expect("validated bit operand")
                        {
                            row |= 1 << i;
                        }
                    }
                    Value::Bit(t.eval(row))
                }
                NodeKind::Mac => {
                    let a = self.word_at(node.inputs[0]);
                    let b = self.word_at(node.inputs[1]);
                    let acc = self.word_at(node.inputs[2]);
                    Value::Word(a.wrapping_mul(b).wrapping_add(acc))
                }
                NodeKind::Pack => {
                    let mut w = 0u32;
                    for (i, &inp) in node.inputs.iter().enumerate() {
                        if self.values[inp.index()]
                            .as_bit()
                            .expect("validated bit operand")
                        {
                            w |= 1 << i;
                        }
                    }
                    Value::Word(w)
                }
                NodeKind::Unpack { bit } => {
                    let w = self.word_at(node.inputs[0]);
                    Value::Bit((w >> bit) & 1 == 1)
                }
                NodeKind::BitOutput { .. } => self.values[node.inputs[0].index()],
                NodeKind::WordOutput { .. } => self.values[node.inputs[0].index()],
            };
            self.values[id.index()] = val;
        }

        // Latch sequential elements.
        for (i, node) in self.netlist.nodes().iter().enumerate() {
            if node.kind.is_sequential() {
                self.state[i] = self.values[node.inputs[0].index()];
            }
        }
        self.cycles += 1;

        out.extend(
            self.netlist
                .primary_outputs()
                .iter()
                .map(|&o| self.values[o.index()]),
        );
        Ok(())
    }

    /// Runs `cycles` cycles feeding the same inputs each cycle; returns the
    /// outputs of the final cycle. One output buffer is reused across all
    /// cycles.
    ///
    /// # Errors
    ///
    /// Propagates input mismatch errors from [`Self::run_cycle`].
    pub fn run_cycles(
        &mut self,
        inputs: &[Value],
        cycles: usize,
    ) -> Result<Vec<Value>, NetlistError> {
        let mut last = Vec::with_capacity(self.netlist.primary_outputs().len());
        for _ in 0..cycles {
            self.run_cycle_into(inputs, &mut last)?;
        }
        Ok(last)
    }

    /// Current value of a node (after the most recent cycle).
    pub fn value_of(&self, id: crate::graph::NodeId) -> Value {
        self.values[id.index()]
    }

    fn word_at(&self, id: crate::graph::NodeId) -> u32 {
        self.values[id.index()]
            .as_word()
            .expect("validated word operand")
    }
}

/// The first divergence [`first_mismatch`] found between two netlists:
/// which input vector disagreed, on which cycle, under which primary-input
/// assignment, and what each side produced.
///
/// The [`fmt::Display`] form is the debugging payload the differential
/// oracles print when an optimization pass breaks equivalence — an opaque
/// `false` from [`equivalent_on`] names none of this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceMismatch {
    /// Index of the diverging vector in the caller's `input_vectors`.
    pub vector: usize,
    /// 0-based cycle within that vector's replay.
    pub cycle: usize,
    /// The primary-input assignment of the diverging vector.
    pub inputs: Vec<Value>,
    /// Outputs of the first (`a`) netlist, declaration order.
    pub left: Vec<Value>,
    /// Outputs of the second (`b`) netlist, declaration order.
    pub right: Vec<Value>,
}

impl fmt::Display for EquivalenceMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlists diverge on vector #{} (cycle {}): inputs {:?} -> left {:?}, right {:?}",
            self.vector, self.cycle, self.inputs, self.left, self.right
        )
    }
}

/// Finds the first input vector on which two netlists disagree, if any.
///
/// Both netlists are compiled to [execution plans](crate::plan::ExecPlan)
/// and, when they carry no sequential state, checked up to
/// [`MAX_BATCH_LANES`](crate::plan::MAX_BATCH_LANES) input vectors per
/// bit-sliced batch pass (512 with the 8-word sweep). Sequential netlists
/// fall back to single-vector compiled execution with state carried across
/// vectors — the original evaluator semantics. The reported vector index
/// is always the smallest diverging index within the first diverging
/// batch pass.
///
/// # Errors
///
/// Propagates compilation and evaluation errors from either netlist.
pub fn first_mismatch(
    a: &Netlist,
    b: &Netlist,
    input_vectors: &[Vec<Value>],
    cycles_per_vector: usize,
) -> Result<Option<EquivalenceMismatch>, NetlistError> {
    let pa = crate::plan::compile(a)?;
    let pb = crate::plan::compile(b)?;
    if pa.is_combinational() && pb.is_combinational() {
        // Stateless circuits: vectors are independent, so pack them into
        // the widest bit-sliced batch pass. Repeating a combinational
        // cycle cannot change its outputs, but run all requested cycles
        // anyway to keep the error behaviour (and any future sequential
        // drift) identical.
        let mut sa = pa.new_batch_state_for(crate::plan::MAX_BATCH_LANES);
        let mut sb = pb.new_batch_state_for(crate::plan::MAX_BATCH_LANES);
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        for (chunk_idx, chunk) in input_vectors
            .chunks(crate::plan::MAX_BATCH_LANES)
            .enumerate()
        {
            for cycle in 0..cycles_per_vector {
                pa.run_batch_cycle_any(&mut sa, chunk, &mut oa)?;
                pb.run_batch_cycle_any(&mut sb, chunk, &mut ob)?;
                if oa != ob {
                    let lane = oa
                        .iter()
                        .zip(&ob)
                        .position(|(x, y)| x != y)
                        .expect("unequal batches have a diverging lane");
                    let vector = chunk_idx * crate::plan::MAX_BATCH_LANES + lane;
                    return Ok(Some(EquivalenceMismatch {
                        vector,
                        cycle,
                        inputs: chunk[lane].clone(),
                        left: oa[lane].clone(),
                        right: ob[lane].clone(),
                    }));
                }
            }
        }
    } else {
        let mut sa = pa.new_state();
        let mut sb = pb.new_state();
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        for (vector, v) in input_vectors.iter().enumerate() {
            for cycle in 0..cycles_per_vector {
                pa.run_cycle_into(&mut sa, v, &mut oa)?;
                pb.run_cycle_into(&mut sb, v, &mut ob)?;
                if oa != ob {
                    return Ok(Some(EquivalenceMismatch {
                        vector,
                        cycle,
                        inputs: v.clone(),
                        left: oa.clone(),
                        right: ob.clone(),
                    }));
                }
            }
        }
    }
    Ok(None)
}

/// Convenience check that two netlists compute the same function on a batch
/// of input vectors (used to verify technology mapping preserves semantics).
///
/// Thin wrapper over [`first_mismatch`]; use that (or
/// [`assert_equivalent_on`]) when a failure needs to say *which* vector
/// diverged.
///
/// # Errors
///
/// Propagates compilation and evaluation errors from either netlist.
pub fn equivalent_on(
    a: &Netlist,
    b: &Netlist,
    input_vectors: &[Vec<Value>],
    cycles_per_vector: usize,
) -> Result<bool, NetlistError> {
    Ok(first_mismatch(a, b, input_vectors, cycles_per_vector)?.is_none())
}

/// Asserts two netlists agree on every vector, panicking with the first
/// diverging vector index, PI assignment, and both output rows.
///
/// # Panics
///
/// Panics on the first divergence, or on a compilation/evaluation error
/// from either netlist.
pub fn assert_equivalent_on(
    a: &Netlist,
    b: &Netlist,
    input_vectors: &[Vec<Value>],
    cycles_per_vector: usize,
) {
    match first_mismatch(a, b, input_vectors, cycles_per_vector) {
        Ok(None) => {}
        Ok(Some(m)) => panic!("{} vs {}: {m}", a.name(), b.name()),
        Err(e) => panic!(
            "equivalence check of {} vs {} failed to run: {e}",
            a.name(),
            b.name()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn input_count_checked() {
        let mut b = CircuitBuilder::new("t");
        let a = b.word_input("a", 8);
        b.word_output("o", &a);
        let n = b.finish().unwrap();
        let mut ev = Evaluator::new(&n);
        assert!(matches!(
            ev.run_cycle(&[]),
            Err(NetlistError::InputCountMismatch {
                expected: 1,
                found: 0
            })
        ));
    }

    #[test]
    fn input_type_checked() {
        let mut b = CircuitBuilder::new("t");
        let a = b.word_input("a", 8);
        b.word_output("o", &a);
        let n = b.finish().unwrap();
        let mut ev = Evaluator::new(&n);
        assert!(matches!(
            ev.run_cycle(&[Value::Bit(true)]),
            Err(NetlistError::InputTypeMismatch { index: 0 })
        ));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut b = CircuitBuilder::new("ctr");
        let (q, h) = b.word_reg(5, 8);
        let next = b.inc(&q);
        b.connect_word_reg(h, &next);
        b.word_output("q", &q);
        let n = b.finish().unwrap();
        let mut ev = Evaluator::new(&n);
        assert_eq!(ev.run_cycle(&[]).unwrap()[0].as_word(), Some(5));
        assert_eq!(ev.run_cycle(&[]).unwrap()[0].as_word(), Some(6));
        ev.reset();
        assert_eq!(ev.cycles(), 0);
        assert_eq!(ev.run_cycle(&[]).unwrap()[0].as_word(), Some(5));
    }

    #[test]
    fn equivalence_helper_detects_difference() {
        let build = |xor: bool| {
            let mut b = CircuitBuilder::new("g");
            let a = b.word_input("a", 4);
            let c = b.word_input("b", 4);
            let r = if xor {
                b.xor_words(&a, &c)
            } else {
                b.and_words(&a, &c)
            };
            b.word_output("r", &r);
            b.finish().unwrap()
        };
        let x = build(true);
        let y = build(false);
        let vecs = vec![vec![Value::Word(3), Value::Word(5)]];
        assert!(equivalent_on(&x, &x, &vecs, 1).unwrap());
        assert!(!equivalent_on(&x, &y, &vecs, 1).unwrap());
    }
}
