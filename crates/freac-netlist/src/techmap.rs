//! Technology mapping: decompose wide logic into K-input LUTs.
//!
//! The micro compute clusters of FReaC Cache realize either four 5-LUTs or
//! eight 4-LUTs per fold step (paper Sec. III-A). Kernels describe logic
//! with truth-table nodes of up to 16 inputs (e.g. the AES S-box columns);
//! this pass Shannon-decomposes every node wider than K into a multiplexer
//! tree of K-input LUTs, after first removing inputs the function does not
//! depend on. The result is functionally identical to the input netlist —
//! an invariant the test-suite checks by exhaustive and randomized
//! co-simulation.

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId, NodeKind};
use crate::truth::TruthTable;

/// Options controlling technology mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TechMapOptions {
    /// Maximum LUT input count (2..=6). FReaC Cache uses 4 or 5.
    pub k: usize,
}

impl TechMapOptions {
    /// 4-input LUT mode (eight LUTs per cluster per fold step).
    pub fn lut4() -> Self {
        TechMapOptions { k: 4 }
    }

    /// 5-input LUT mode (four LUTs per cluster per fold step).
    pub fn lut5() -> Self {
        TechMapOptions { k: 5 }
    }
}

impl Default for TechMapOptions {
    fn default() -> Self {
        TechMapOptions::lut4()
    }
}

/// Maps `netlist` so that every LUT node has at most `options.k` inputs.
///
/// Nodes other than LUTs (MACs, registers, pack/unpack plumbing, primary
/// I/O) pass through unchanged. LUTs that already fit are copied verbatim;
/// wider ones are decomposed.
///
/// # Errors
///
/// Returns [`NetlistError::BadLutSize`] for `k` outside `2..=6`, or a
/// structural error if the input netlist is malformed.
pub fn tech_map(netlist: &Netlist, options: TechMapOptions) -> Result<Netlist, NetlistError> {
    if !(2..=6).contains(&options.k) {
        return Err(NetlistError::BadLutSize(options.k));
    }
    netlist.validate()?;

    let mut out = Netlist::new(netlist.name().to_owned());
    let mut map: Vec<Option<NodeId>> = vec![None; netlist.len()];
    // Sequential nodes may have forward references (feedback); create them
    // with self-loop placeholders and patch at the end.
    let mut seq_patches: Vec<(NodeId, NodeId)> = Vec::new(); // (new node, old D source)

    let mut in_idx = 0u32;
    let mut word_in_idx = 0u32;
    let mut out_idx = 0u32;
    let mut word_out_idx = 0u32;

    for (i, node) in netlist.nodes().iter().enumerate() {
        let old_id = NodeId(i as u32);
        let resolve = |map: &[Option<NodeId>], id: NodeId| -> Result<NodeId, NetlistError> {
            map[id.index()].ok_or(NetlistError::UnknownNode(id))
        };
        let new_id = match &node.kind {
            NodeKind::BitInput { .. } => {
                let idx = in_idx;
                in_idx += 1;
                out.push(
                    NodeKind::BitInput { index: idx },
                    vec![],
                    netlist.input_name(primary_pos(netlist, old_id, true)),
                )
            }
            NodeKind::WordInput { .. } => {
                let idx = word_in_idx;
                word_in_idx += 1;
                out.push(
                    NodeKind::WordInput { index: idx },
                    vec![],
                    netlist.input_name(primary_pos(netlist, old_id, true)),
                )
            }
            NodeKind::ConstBit(b) => out.push(NodeKind::ConstBit(*b), vec![], None),
            NodeKind::ConstWord(w) => out.push(NodeKind::ConstWord(*w), vec![], None),
            NodeKind::Lut(table) => {
                let ins: Result<Vec<NodeId>, _> =
                    node.inputs.iter().map(|&x| resolve(&map, x)).collect();
                decompose_lut(&mut out, table, &ins?, options.k)
            }
            NodeKind::Ff { init } => {
                let placeholder = NodeId(out.len() as u32);
                let id = out.push(NodeKind::Ff { init: *init }, vec![placeholder], None);
                seq_patches.push((id, node.inputs[0]));
                id
            }
            NodeKind::WordReg { init } => {
                let placeholder = NodeId(out.len() as u32);
                let id = out.push(NodeKind::WordReg { init: *init }, vec![placeholder], None);
                seq_patches.push((id, node.inputs[0]));
                id
            }
            NodeKind::Mac | NodeKind::Pack => {
                let ins: Result<Vec<NodeId>, _> =
                    node.inputs.iter().map(|&x| resolve(&map, x)).collect();
                out.push(node.kind.clone(), ins?, None)
            }
            NodeKind::Unpack { bit } => {
                let src = resolve(&map, node.inputs[0])?;
                out.push(NodeKind::Unpack { bit: *bit }, vec![src], None)
            }
            NodeKind::BitOutput { .. } => {
                let src = resolve(&map, node.inputs[0])?;
                let idx = out_idx;
                out_idx += 1;
                out.push(
                    NodeKind::BitOutput { index: idx },
                    vec![src],
                    netlist.output_name(primary_pos(netlist, old_id, false)),
                )
            }
            NodeKind::WordOutput { .. } => {
                let src = resolve(&map, node.inputs[0])?;
                let idx = word_out_idx;
                word_out_idx += 1;
                out.push(
                    NodeKind::WordOutput { index: idx },
                    vec![src],
                    netlist.output_name(primary_pos(netlist, old_id, false)),
                )
            }
        };
        map[i] = Some(new_id);
    }

    for (new_node, old_src) in seq_patches {
        let src = map[old_src.index()].ok_or(NetlistError::UnknownNode(old_src))?;
        out.set_input(new_node, 0, src)?;
    }

    out.validate()?;
    Ok(out)
}

/// Position of `id` within the primary input (or output) list of `netlist`.
fn primary_pos(netlist: &Netlist, id: NodeId, input: bool) -> usize {
    let list = if input {
        netlist.primary_inputs()
    } else {
        netlist.primary_outputs()
    };
    list.iter()
        .position(|&x| x == id)
        .expect("node must be registered in the primary i/o list")
}

/// Recursively decomposes `table` over the given (already-mapped) input
/// nodes into a tree of ≤K-input LUTs, returning the root node.
fn decompose_lut(out: &mut Netlist, table: &TruthTable, inputs: &[NodeId], k: usize) -> NodeId {
    // Strip dead inputs first: ROM columns frequently do not depend on every
    // address bit and this shrinks the mux tree substantially.
    let (reduced, support) = table.support_reduce();
    let live_inputs: Vec<NodeId> = support.iter().map(|&i| inputs[i]).collect();

    if let Some(c) = reduced.is_constant() {
        return out.push(NodeKind::ConstBit(c), vec![], None);
    }
    if reduced.inputs() <= k {
        return out.push(NodeKind::Lut(reduced), live_inputs, None);
    }

    // Shannon: pick the most binate variable so cofactors simplify fastest.
    let split = (0..reduced.inputs())
        .max_by_key(|&v| reduced.cofactor_distance(v))
        .expect("non-constant table has at least one input");
    let (lo, hi) = reduced.cofactors(split);
    let mut rest_inputs = live_inputs.clone();
    let sel = rest_inputs.remove(split);
    let lo_id = decompose_lut(out, &lo, &rest_inputs, k);
    let hi_id = decompose_lut(out, &hi, &rest_inputs, k);
    out.push(
        NodeKind::Lut(TruthTable::mux3()),
        vec![sel, lo_id, hi_id],
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::eval::equivalent_on;
    use crate::graph::Value;
    use crate::stats::NetlistStats;

    /// The max LUT width present in a netlist.
    fn max_lut_width(n: &Netlist) -> usize {
        n.nodes()
            .iter()
            .filter_map(|nd| match &nd.kind {
                NodeKind::Lut(t) => Some(t.inputs()),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    fn rom_circuit(entries: &[u32], in_bits: usize, out_bits: usize) -> Netlist {
        let mut b = CircuitBuilder::new("rom");
        let a = b.word_input("a", in_bits);
        let v = b.rom(entries, a.bits(), out_bits);
        b.word_output("v", &v);
        b.finish().unwrap()
    }

    #[test]
    fn bad_k_rejected() {
        let n = Netlist::new("x");
        assert!(matches!(
            tech_map(&n, TechMapOptions { k: 1 }),
            Err(NetlistError::BadLutSize(1))
        ));
        assert!(matches!(
            tech_map(&n, TechMapOptions { k: 7 }),
            Err(NetlistError::BadLutSize(7))
        ));
    }

    #[test]
    fn eight_input_rom_maps_to_lut4_exactly() {
        // A pseudo-random 256-entry byte table, like an S-box.
        let entries: Vec<u32> = (0..256u32)
            .map(|i| (i.wrapping_mul(167).wrapping_add(13)) & 0xFF)
            .collect();
        let n = rom_circuit(&entries, 8, 8);
        let mapped = tech_map(&n, TechMapOptions::lut4()).unwrap();
        assert!(max_lut_width(&mapped) <= 4);
        // Exhaustive equivalence over all 256 inputs.
        let vecs: Vec<Vec<Value>> = (0..256).map(|i| vec![Value::Word(i)]).collect();
        assert!(equivalent_on(&n, &mapped, &vecs, 1).unwrap());
    }

    #[test]
    fn lut5_uses_fewer_luts_than_lut4() {
        let entries: Vec<u32> = (0..256u32).map(|i| i.rotate_left(3) & 0xFF).collect();
        let n = rom_circuit(&entries, 8, 8);
        let m4 = tech_map(&n, TechMapOptions::lut4()).unwrap();
        let m5 = tech_map(&n, TechMapOptions::lut5()).unwrap();
        let c4 = NetlistStats::of(&m4).luts;
        let c5 = NetlistStats::of(&m5).luts;
        assert!(
            c5 <= c4,
            "5-LUT mapping should not need more LUTs ({c5} vs {c4})"
        );
    }

    #[test]
    fn small_luts_pass_through() {
        let mut b = CircuitBuilder::new("t");
        let a = b.word_input("a", 2);
        let x = b.xor(a.bit(0), a.bit(1));
        b.bit_output("x", x);
        let n = b.finish().unwrap();
        let before = NetlistStats::of(&n).luts;
        let m = tech_map(&n, TechMapOptions::lut4()).unwrap();
        assert_eq!(NetlistStats::of(&m).luts, before);
    }

    #[test]
    fn sequential_feedback_survives_mapping() {
        let mut b = CircuitBuilder::new("ctr");
        let (q, h) = b.word_reg(0, 8);
        let next = b.inc(&q);
        b.connect_word_reg(h, &next);
        b.word_output("q", &q);
        let n = b.finish().unwrap();
        let m = tech_map(&n, TechMapOptions::lut4()).unwrap();
        // Run both for several cycles and compare counting behaviour.
        assert!(equivalent_on(&n, &m, &[vec![]], 10).unwrap());
    }

    #[test]
    fn constant_columns_become_constants() {
        // ROM whose bit 3 is always 1 and bit 2 always 0.
        let entries: Vec<u32> = (0..16u32).map(|i| 0b1000 | (i & 0b11)).collect();
        let n = rom_circuit(&entries, 4, 4);
        let m = tech_map(&n, TechMapOptions::lut4()).unwrap();
        let vecs: Vec<Vec<Value>> = (0..16).map(|i| vec![Value::Word(i)]).collect();
        assert!(equivalent_on(&n, &m, &vecs, 1).unwrap());
        // Mapped netlist should contain at least one constant bit node for
        // the constant columns.
        assert!(m
            .nodes()
            .iter()
            .any(|nd| matches!(nd.kind, NodeKind::ConstBit(_))));
    }

    #[test]
    fn macs_and_packs_pass_through() {
        let mut b = CircuitBuilder::new("m");
        let a = b.word_input("a", 32);
        let c = b.word_input("b", 32);
        let z = b.const_word(0, 32);
        let m = b.mac(&a, &c, &z);
        b.word_output("m", &m);
        let n = b.finish().unwrap();
        let mapped = tech_map(&n, TechMapOptions::lut4()).unwrap();
        let s = NetlistStats::of(&mapped);
        assert_eq!(s.macs, 1);
        let vecs = vec![vec![Value::Word(1234), Value::Word(77)]];
        assert!(equivalent_on(&n, &mapped, &vecs, 1).unwrap());
    }
}
