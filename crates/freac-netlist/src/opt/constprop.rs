//! Constant propagation through LUT truth tables and word operators.
//!
//! Known-constant operands are folded into the consuming operation:
//!
//! - a `ConstBit` feeding a LUT is cofactored out of the truth table
//!   (Shannon restriction), shrinking the table by one input per constant;
//! - a LUT whose (restricted) table is constant, or the identity of its one
//!   remaining input, disappears entirely;
//! - `Pack` of all-constant bits becomes a `ConstWord`; `Pack` of the full
//!   32-bit unpack of one word node becomes that word node;
//! - `Unpack` of a `ConstWord` becomes a `ConstBit`, and `Unpack` of a
//!   `Pack` forwards straight to the packed bit (or constant false past the
//!   packed width, matching zero extension);
//! - a `Mac` with a zero multiplicand forwards to its accumulator, and an
//!   all-constant `Mac` becomes a `ConstWord`.
//!
//! Sequential nodes are left alone: a flip-flop with a constant D input
//! still differs from that constant on the first cycle unless the init
//! value happens to match, and the pipeline does not reason about init
//! states.
//!
//! Materialized constants are deduplicated through a find-or-create cache
//! seeded from the live graph, so repeated runs converge instead of
//! minting fresh constant nodes forever.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::graph::{NodeId, NodeKind};
use crate::truth::TruthTable;

use super::work::WorkGraph;

/// Find-or-create cache for constant nodes.
struct Consts {
    bits: [Option<NodeId>; 2],
    words: HashMap<u32, NodeId>,
}

impl Consts {
    fn scan(g: &WorkGraph) -> Consts {
        let mut c = Consts {
            bits: [None; 2],
            words: HashMap::new(),
        };
        for i in 0..g.len() {
            let id = NodeId(i as u32);
            if !g.is_live(id) {
                continue;
            }
            match *g.kind(id) {
                NodeKind::ConstBit(b) => {
                    c.bits[b as usize].get_or_insert(id);
                }
                NodeKind::ConstWord(w) => {
                    c.words.entry(w).or_insert(id);
                }
                _ => {}
            }
        }
        c
    }

    fn bit(&mut self, g: &mut WorkGraph, v: bool) -> NodeId {
        *self.bits[v as usize].get_or_insert_with(|| g.add_node(NodeKind::ConstBit(v), Vec::new()))
    }

    fn word(&mut self, g: &mut WorkGraph, v: u32) -> NodeId {
        *self
            .words
            .entry(v)
            .or_insert_with(|| g.add_node(NodeKind::ConstWord(v), Vec::new()))
    }
}

/// One application of constant propagation. Returns the number of nodes
/// folded, forwarded, or shrunk.
pub(super) fn run(g: &mut WorkGraph) -> Result<usize, NetlistError> {
    g.canonicalize();
    let mut consts = Consts::scan(g);
    let mut rewrites = 0usize;
    // Snapshot the length: nodes appended below are constants with nothing
    // to fold.
    let n = g.len();
    for i in 0..n {
        let id = NodeId(i as u32);
        if !g.is_live(id) {
            continue;
        }
        // Visit in id order with on-the-fly resolution so a constant
        // discovered at node `i` feeds the folding of every consumer with a
        // larger id within the same sweep.
        let ins: Vec<NodeId> = g.inputs(id).iter().map(|&x| g.resolve(x)).collect();
        match g.kind(id).clone() {
            NodeKind::Lut(mut table) => {
                let mut ins = ins;
                let mut pos = 0usize;
                let mut changed = false;
                while pos < ins.len() {
                    if let NodeKind::ConstBit(b) = *g.kind(ins[pos]) {
                        let (lo, hi) = table.cofactors(pos);
                        table = if b { hi } else { lo };
                        ins.remove(pos);
                        changed = true;
                    } else {
                        pos += 1;
                    }
                }
                if let Some(c) = table.is_constant() {
                    let cn = consts.bit(g, c);
                    g.replace(id, cn);
                    rewrites += 1;
                } else if table.inputs() == 1 && table == TruthTable::identity() {
                    let src = ins[0];
                    g.replace(id, src);
                    rewrites += 1;
                } else if changed {
                    g.set_node(id, NodeKind::Lut(table), ins);
                    rewrites += 1;
                }
            }
            NodeKind::Pack => {
                let all_bits: Option<u32> =
                    ins.iter()
                        .enumerate()
                        .try_fold(0u32, |acc, (b, &inp)| match *g.kind(inp) {
                            NodeKind::ConstBit(true) => Some(acc | (1 << b)),
                            NodeKind::ConstBit(false) => Some(acc),
                            _ => None,
                        });
                if let Some(w) = all_bits {
                    let cn = consts.word(g, w);
                    g.replace(id, cn);
                    rewrites += 1;
                } else if ins.len() == 32 {
                    // Pack of the untouched 32-bit unpack of one word node
                    // is that word node (zero extension is vacuous at full
                    // width).
                    let repack_of = match *g.kind(ins[0]) {
                        NodeKind::Unpack { bit: 0 } => Some(g.resolve(g.inputs(ins[0])[0])),
                        _ => None,
                    };
                    if let Some(w) = repack_of {
                        let identity = ins.iter().enumerate().all(|(b, &inp)| {
                            matches!(*g.kind(inp), NodeKind::Unpack { bit } if bit as usize == b)
                                && g.resolve(g.inputs(inp)[0]) == w
                        });
                        if identity {
                            g.replace(id, w);
                            rewrites += 1;
                        }
                    }
                }
            }
            NodeKind::Unpack { bit } => match g.kind(ins[0]).clone() {
                NodeKind::ConstWord(w) => {
                    let cn = consts.bit(g, (w >> bit) & 1 == 1);
                    g.replace(id, cn);
                    rewrites += 1;
                }
                NodeKind::Pack => {
                    let pins = g.inputs(ins[0]).to_vec();
                    let src = if (bit as usize) < pins.len() {
                        g.resolve(pins[bit as usize])
                    } else {
                        consts.bit(g, false)
                    };
                    g.replace(id, src);
                    rewrites += 1;
                }
                _ => {}
            },
            NodeKind::Mac => {
                let word_of = |g: &WorkGraph, x: NodeId| match *g.kind(x) {
                    NodeKind::ConstWord(w) => Some(w),
                    _ => None,
                };
                let (a, b, acc) = (ins[0], ins[1], ins[2]);
                let (ca, cb, cacc) = (word_of(g, a), word_of(g, b), word_of(g, acc));
                if let (Some(a), Some(b), Some(acc)) = (ca, cb, cacc) {
                    let cn = consts.word(g, a.wrapping_mul(b).wrapping_add(acc));
                    g.replace(id, cn);
                    rewrites += 1;
                } else if ca == Some(0) || cb == Some(0) {
                    g.replace(id, acc);
                    rewrites += 1;
                }
            }
            _ => {}
        }
    }
    Ok(rewrites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::graph::Netlist;

    fn run_pipe(n: &Netlist) -> (WorkGraph, usize) {
        let mut g = WorkGraph::from_netlist(n);
        let rw = run(&mut g).unwrap();
        (g, rw)
    }

    #[test]
    fn const_input_cofactors_the_table() {
        let mut b = CircuitBuilder::new("c");
        let a = b.bit_input("a");
        let t = b.const_bit(true);
        let y = b.and(a, t); // a & 1 == a
        b.bit_output("y", y);
        let n = b.finish().unwrap();
        let (g, rw) = run_pipe(&n);
        assert!(rw >= 1);
        // Output must now read the input directly.
        let po = n.primary_outputs()[0];
        assert_eq!(g.resolve(g.inputs(po)[0]), n.primary_inputs()[0]);
    }

    #[test]
    fn all_const_lut_becomes_const_bit() {
        let mut b = CircuitBuilder::new("c");
        let t = b.const_bit(true);
        let f = b.const_bit(false);
        let y = b.and(t, f);
        b.bit_output("y", y);
        let n = b.finish().unwrap();
        let (g, _) = run_pipe(&n);
        let po = n.primary_outputs()[0];
        assert!(matches!(
            *g.kind(g.resolve(g.inputs(po)[0])),
            NodeKind::ConstBit(false)
        ));
    }

    #[test]
    fn const_word_operand_folds_through_adder() {
        let mut b = CircuitBuilder::new("c");
        let w = b.const_word(0b1010, 4);
        let a = b.word_input("a", 4);
        let s = b.add(&a, &w);
        b.word_output("s", &s);
        let n = b.finish().unwrap();
        // The adder consumes const bits directly; fold them through.
        let (_, rw) = run_pipe(&n);
        assert!(rw > 0, "carry chain of constant 0b1010 must fold");
    }

    #[test]
    fn mac_with_zero_multiplicand_forwards_accumulator() {
        let mut b = CircuitBuilder::new("m");
        let a = b.word_input("a", 32);
        let zero = b.const_word(0, 32);
        let acc = b.word_input("acc", 32);
        let m = b.mac(&a, &zero, &acc);
        b.word_output("m", &m);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        // const_word(0, 32) packs 32 const-false bits: first sweep folds the
        // Pack to ConstWord, second folds the Mac away.
        let mut total = 0;
        for _ in 0..3 {
            total += run(&mut g).unwrap();
        }
        assert!(total >= 2);
        let r = g.rebuild().unwrap();
        assert!(!r.nodes().iter().any(|nd| matches!(nd.kind, NodeKind::Mac)));
        crate::eval::assert_equivalent_on(
            &n,
            &r,
            &[vec![crate::Value::Word(7), crate::Value::Word(99)]],
            1,
        );
    }

    #[test]
    fn repacked_word_identity_collapses() {
        // Pack(Unpack(w, 0..32)) == w.
        let mut b = CircuitBuilder::new("p");
        let a = b.word_input("a", 32);
        let doubled = b.mac(&a, &a, &a); // forces a Pack-free origin word
        let sliced = doubled.slice(0, 32);
        let back = b.mac(&sliced, &sliced, &sliced);
        b.word_output("o", &back);
        let n = b.finish().unwrap();
        let packs_before = n
            .nodes()
            .iter()
            .filter(|nd| matches!(nd.kind, NodeKind::Pack))
            .count();
        let mut g = WorkGraph::from_netlist(&n);
        run(&mut g).unwrap();
        let r = g.rebuild().unwrap();
        let packs_after = r
            .nodes()
            .iter()
            .filter(|nd| matches!(nd.kind, NodeKind::Pack))
            .count();
        assert!(packs_after < packs_before, "slice round-trip pack folds");
        crate::eval::assert_equivalent_on(&n, &r, &[vec![crate::Value::Word(3)]], 1);
    }
}
