//! LUT input deduplication and don't-care pruning.
//!
//! Two cleanups on every live LUT, both driven by the truth table itself:
//!
//! 1. **Deduplication** — when two operand positions resolve to the same
//!    driver (common after CSE forwards a twin), the table is re-expressed
//!    over the distinct drivers only. Rows where the duplicated positions
//!    disagree are unreachable, so the remap never loses information.
//! 2. **Don't-care pruning** — [`TruthTable::support_reduce`] drops inputs
//!    the function provably ignores (ROM columns and Shannon-decomposed
//!    cones routinely carry vestigial pins), shrinking the fan-in the
//!    mapper and fold scheduler must route.
//!
//! A table that collapses to a constant or to the identity of one input is
//! folded away entirely, like in constant propagation.

use crate::error::NetlistError;
use crate::graph::{NodeId, NodeKind};
use crate::truth::TruthTable;

use super::work::WorkGraph;

/// One application of dedup + don't-care pruning. Returns the number of
/// LUTs rewritten, forwarded, or folded to constants.
pub(super) fn run(g: &mut WorkGraph) -> Result<usize, NetlistError> {
    g.canonicalize();
    let mut rewrites = 0usize;
    let mut const_cache: [Option<NodeId>; 2] = [None; 2];
    let n = g.len();
    for i in 0..n {
        let id = NodeId(i as u32);
        if !g.is_live(id) {
            continue;
        }
        let NodeKind::Lut(table) = g.kind(id).clone() else {
            continue;
        };
        let ins: Vec<NodeId> = g.inputs(id).iter().map(|&x| g.resolve(x)).collect();
        let mut changed = false;

        // 1. Deduplicate repeated drivers.
        let mut uniq: Vec<NodeId> = Vec::with_capacity(ins.len());
        let mut pos_map: Vec<usize> = Vec::with_capacity(ins.len());
        for &x in &ins {
            match uniq.iter().position(|&u| u == x) {
                Some(j) => pos_map.push(j),
                None => {
                    pos_map.push(uniq.len());
                    uniq.push(x);
                }
            }
        }
        let (mut table, mut ins) = if uniq.len() < ins.len() {
            changed = true;
            let remapped = TruthTable::from_fn(uniq.len(), |row| {
                let mut orig = 0usize;
                for (pos, &j) in pos_map.iter().enumerate() {
                    if (row >> j) & 1 == 1 {
                        orig |= 1 << pos;
                    }
                }
                table.get(orig)
            })?;
            (remapped, uniq)
        } else {
            (table, ins)
        };

        // 2. Drop inputs the table provably ignores.
        let (reduced, keep) = table.support_reduce();
        if reduced.inputs() < table.inputs() {
            changed = true;
            ins = keep.iter().map(|&j| ins[j]).collect();
            table = reduced;
        }

        if let Some(c) = table.is_constant() {
            let cn = *const_cache[c as usize].get_or_insert_with(|| {
                (0..g.len())
                    .map(|j| NodeId(j as u32))
                    .find(|&j| g.is_live(j) && *g.kind(j) == NodeKind::ConstBit(c))
                    .unwrap_or_else(|| g.add_node(NodeKind::ConstBit(c), Vec::new()))
            });
            g.replace(id, cn);
            rewrites += 1;
        } else if table.inputs() == 1 && table == TruthTable::identity() {
            let src = ins[0];
            g.replace(id, src);
            rewrites += 1;
        } else if changed {
            g.set_node(id, NodeKind::Lut(table), ins);
            rewrites += 1;
        }
    }
    Ok(rewrites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn duplicate_drivers_dedupe() {
        // and(x, x) == x: dedup makes it a 1-input identity, which forwards.
        let mut b = CircuitBuilder::new("d");
        let a = b.bit_input("a");
        let y = b.and(a, a);
        b.bit_output("y", y);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        assert_eq!(run(&mut g).unwrap(), 1);
        let po = n.primary_outputs()[0];
        assert_eq!(g.resolve(g.inputs(po)[0]), a.node());
    }

    #[test]
    fn xor_of_same_driver_is_constant_false() {
        let mut b = CircuitBuilder::new("x");
        let a = b.bit_input("a");
        let y = b.xor(a, a);
        b.bit_output("y", y);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        assert_eq!(run(&mut g).unwrap(), 1);
        let po = n.primary_outputs()[0];
        assert!(matches!(
            *g.kind(g.resolve(g.inputs(po)[0])),
            NodeKind::ConstBit(false)
        ));
        let r = g.rebuild().unwrap();
        crate::eval::assert_equivalent_on(
            &n,
            &r,
            &[
                vec![crate::Value::Bit(false)],
                vec![crate::Value::Bit(true)],
            ],
            1,
        );
    }

    #[test]
    fn dont_care_inputs_drop() {
        // A 3-input table that only reads input 2.
        let mut b = CircuitBuilder::new("dc");
        let a = b.bit_input("a");
        let c = b.bit_input("b");
        let d = b.bit_input("c");
        let t = TruthTable::from_fn(3, |r| (r >> 2) & 1 == 1).unwrap();
        let y = b.lut(t, &[a, c, d]);
        let z = b.not(y);
        b.bit_output("z", z);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        assert_eq!(run(&mut g).unwrap(), 1, "identity-of-d forwards");
        let m = g.metrics();
        assert_eq!(m.luts, 1, "only the NOT remains");
    }

    #[test]
    fn live_inputs_survive() {
        let mut b = CircuitBuilder::new("l");
        let a = b.bit_input("a");
        let c = b.bit_input("b");
        let y = b.xor(a, c);
        b.bit_output("y", y);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        assert_eq!(run(&mut g).unwrap(), 0);
    }
}
