//! Pre-mapping netlist optimization.
//!
//! An ABC-style pass pipeline over the [`WorkGraph`] IR, run in front of
//! Shannon technology mapping: every LUT removed here is a fold step the
//! schedule never executes, so reductions compound through the compiled
//! plans and the serving path.
//!
//! The passes (see each submodule for the legality argument):
//!
//! | pass                    | what it removes                              |
//! |-------------------------|----------------------------------------------|
//! | [`PassKind::Cse`]       | structurally identical combinational nodes   |
//! | [`PassKind::ConstProp`] | logic with known-constant operands           |
//! | [`PassKind::InputPrune`]| duplicate and don't-care LUT inputs          |
//! | [`PassKind::Repack`]    | single-fanout LUTs that fit their consumer   |
//! | [`PassKind::Dce`]       | cones unreachable from any primary output    |
//!
//! [`PassManager::run`] applies its pass list to a bounded fixpoint,
//! recording per-application LUT/level/edge deltas in an [`OptReport`]
//! that exports `netlist.opt.*` counters through `freac-probe`. Every pass
//! is differentially gated in the test suite: the optimized netlist must
//! be equivalent to the reference on all kernels, pre- and post-mapping,
//! single-lane and all batch widths.

mod constprop;
mod cse;
mod dce;
mod prune;
mod repack;
pub mod work;

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeKind};

pub use work::{OptMetrics, WorkGraph};

/// How aggressively [`optimize`] rewrites a netlist before mapping.
///
/// Parsed from `FREAC_OPT_LEVEL` by [`OptLevel::from_env`]; the default is
/// [`OptLevel::Full`] — the paper's VTR-produced netlists are already
/// optimized, so the reproduction's builder-produced circuits should be
/// too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OptLevel {
    /// No optimization: map the circuit exactly as built.
    Off,
    /// Structural hashing, constant propagation, and the dead-logic sweep.
    Basic,
    /// Everything in [`OptLevel::Basic`] plus input pruning and LUT
    /// repacking.
    #[default]
    Full,
}

impl OptLevel {
    /// Parses a level string: `0`/`off`/`none`, `1`/`basic`, `2`/`full`.
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "0" | "off" | "none" => Some(OptLevel::Off),
            "1" | "basic" => Some(OptLevel::Basic),
            "2" | "full" => Some(OptLevel::Full),
            _ => None,
        }
    }

    /// Reads `FREAC_OPT_LEVEL`; unset or unparsable values mean the
    /// default ([`OptLevel::Full`]).
    pub fn from_env() -> OptLevel {
        std::env::var("FREAC_OPT_LEVEL")
            .ok()
            .and_then(|s| OptLevel::parse(&s))
            .unwrap_or_default()
    }

    /// Stable lowercase name (used in cache keys and counter names).
    pub fn as_str(self) -> &'static str {
        match self {
            OptLevel::Off => "off",
            OptLevel::Basic => "basic",
            OptLevel::Full => "full",
        }
    }

    /// The pass list this level runs.
    pub fn passes(self) -> &'static [PassKind] {
        match self {
            OptLevel::Off => &[],
            OptLevel::Basic => &[PassKind::Cse, PassKind::ConstProp, PassKind::Dce],
            OptLevel::Full => &[
                PassKind::Cse,
                PassKind::ConstProp,
                PassKind::InputPrune,
                PassKind::Repack,
                PassKind::Dce,
            ],
        }
    }
}

/// One rewriting pass over the [`WorkGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Structural hashing / common-subexpression elimination.
    Cse,
    /// Constant propagation through truth tables and word operators.
    ConstProp,
    /// LUT input deduplication and don't-care pruning.
    InputPrune,
    /// Single-fanout LUT merging under the physical LUT width.
    Repack,
    /// Dead-logic sweep from the primary outputs.
    Dce,
}

impl PassKind {
    /// Stable lowercase name (used in counter names).
    pub fn name(self) -> &'static str {
        match self {
            PassKind::Cse => "cse",
            PassKind::ConstProp => "constprop",
            PassKind::InputPrune => "input_prune",
            PassKind::Repack => "repack",
            PassKind::Dce => "dce",
        }
    }

    /// Applies the pass once. Returns the number of rewrites performed.
    ///
    /// # Errors
    ///
    /// Propagates structural errors from table rebuilding; a well-formed
    /// graph never produces one.
    pub fn apply(self, g: &mut WorkGraph, lut_k: usize) -> Result<usize, NetlistError> {
        match self {
            PassKind::Cse => cse::run(g),
            PassKind::ConstProp => constprop::run(g),
            PassKind::InputPrune => prune::run(g),
            PassKind::Repack => repack::run(g, lut_k),
            PassKind::Dce => dce::run(g),
        }
    }
}

/// Options for [`optimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptOptions {
    /// Pipeline aggressiveness.
    pub level: OptLevel,
    /// Physical LUT width the repacking pass merges under — use the tile's
    /// LUT mode (4 or 5) so merges never re-widen past what mapping
    /// produces.
    pub lut_k: usize,
}

impl Default for OptOptions {
    fn default() -> Self {
        OptOptions {
            level: OptLevel::default(),
            lut_k: 4,
        }
    }
}

impl OptOptions {
    /// Options at an explicit level with the default LUT width.
    pub fn at(level: OptLevel) -> Self {
        OptOptions {
            level,
            ..OptOptions::default()
        }
    }

    /// Sets the repacking LUT width.
    #[must_use]
    pub fn with_lut_k(mut self, k: usize) -> Self {
        self.lut_k = k;
        self
    }
}

/// Metrics around one application of one pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassDelta {
    /// Which pass ran.
    pub pass: PassKind,
    /// 1-based fixpoint iteration the application belonged to.
    pub iteration: usize,
    /// Rewrites the application performed (0 = no-op).
    pub rewrites: usize,
    /// Live-graph metrics entering the pass.
    pub before: OptMetrics,
    /// Live-graph metrics leaving the pass.
    pub after: OptMetrics,
}

/// Summary of a pipeline run, with per-pass attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptReport {
    /// The level that ran.
    pub level: OptLevel,
    /// Fixpoint iterations executed (0 when the level is
    /// [`OptLevel::Off`]).
    pub iterations: usize,
    /// Metrics of the input netlist.
    pub before: OptMetrics,
    /// Metrics of the optimized netlist.
    pub after: OptMetrics,
    /// Every pass application, in execution order.
    pub passes: Vec<PassDelta>,
}

impl OptReport {
    /// Total rewrites across all pass applications.
    pub fn total_rewrites(&self) -> usize {
        self.passes.iter().map(|d| d.rewrites).sum()
    }

    /// Total rewrites attributed to one pass kind.
    pub fn rewrites_for(&self, pass: PassKind) -> usize {
        self.passes
            .iter()
            .filter(|d| d.pass == pass)
            .map(|d| d.rewrites)
            .sum()
    }

    /// Fraction of LUTs eliminated (0 when there were none).
    pub fn lut_reduction(&self) -> f64 {
        if self.before.luts == 0 {
            0.0
        } else {
            1.0 - self.after.luts as f64 / self.before.luts as f64
        }
    }

    /// Exports `netlist.opt.*` counters into a registry: before/after
    /// LUT/node/edge/depth totals, iteration count, and per-pass rewrite
    /// and LUTs-removed attributions.
    pub fn export_into(&self, reg: &mut freac_probe::CounterRegistry) {
        reg.add("netlist.opt.luts_before", self.before.luts as u64);
        reg.add("netlist.opt.luts_after", self.after.luts as u64);
        reg.add("netlist.opt.nodes_before", self.before.nodes as u64);
        reg.add("netlist.opt.nodes_after", self.after.nodes as u64);
        reg.add("netlist.opt.edges_before", self.before.edges as u64);
        reg.add("netlist.opt.edges_after", self.after.edges as u64);
        reg.add("netlist.opt.depth_before", u64::from(self.before.depth));
        reg.add("netlist.opt.depth_after", u64::from(self.after.depth));
        reg.add("netlist.opt.iterations", self.iterations as u64);
        let mut by_pass: HashMap<PassKind, (u64, u64)> = HashMap::new();
        for d in &self.passes {
            let e = by_pass.entry(d.pass).or_default();
            e.0 += d.rewrites as u64;
            e.1 += d.before.luts.saturating_sub(d.after.luts) as u64;
        }
        for (pass, (rewrites, luts_removed)) in by_pass {
            reg.add(&format!("netlist.opt.rewrites.{}", pass.name()), rewrites);
            reg.add(
                &format!("netlist.opt.luts_removed.{}", pass.name()),
                luts_removed,
            );
        }
    }
}

/// Bound on fixpoint iterations: each productive iteration strictly shrinks
/// the live edge count or node count, so real circuits converge in 2–4
/// rounds; the cap only guards against a buggy pass oscillating.
pub const DEFAULT_MAX_ITERATIONS: usize = 8;

/// Orchestrates a pass list to a bounded fixpoint over one netlist.
#[derive(Debug, Clone)]
pub struct PassManager {
    passes: Vec<PassKind>,
    lut_k: usize,
    max_iterations: usize,
}

impl PassManager {
    /// A manager running exactly `passes`, in order, each iteration.
    pub fn new(passes: impl Into<Vec<PassKind>>, lut_k: usize) -> Self {
        PassManager {
            passes: passes.into(),
            lut_k,
            max_iterations: DEFAULT_MAX_ITERATIONS,
        }
    }

    /// The standard pass list for `level` (empty for [`OptLevel::Off`]).
    pub fn for_level(level: OptLevel, lut_k: usize) -> Self {
        PassManager::new(level.passes(), lut_k)
    }

    /// Overrides the fixpoint iteration cap.
    #[must_use]
    pub fn with_max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap.max(1);
        self
    }

    /// The pass list, in execution order.
    pub fn passes(&self) -> &[PassKind] {
        &self.passes
    }

    /// Runs the pipeline and rebuilds the optimized netlist.
    ///
    /// Iterates the pass list until a full round performs zero rewrites or
    /// the iteration cap is reached. When nothing rewrote at all, the
    /// original netlist is returned unchanged (same node ids), so an
    /// already-optimal circuit round-trips exactly.
    ///
    /// # Errors
    ///
    /// Returns structural errors from a malformed input netlist, or a pass
    /// bug surfaced by [`WorkGraph::rebuild`].
    pub fn run(&self, netlist: &Netlist) -> Result<(Netlist, OptReport), NetlistError> {
        netlist.validate()?;
        let mut g = WorkGraph::from_netlist(netlist);
        let before = g.metrics();
        let mut report = OptReport {
            level: OptLevel::Off,
            iterations: 0,
            before,
            after: before,
            passes: Vec::new(),
        };
        if self.passes.is_empty() {
            return Ok((netlist.clone(), report));
        }
        loop {
            report.iterations += 1;
            let mut round = 0usize;
            for &pass in &self.passes {
                let b = g.metrics();
                let rewrites = pass.apply(&mut g, self.lut_k)?;
                let a = g.metrics();
                report.passes.push(PassDelta {
                    pass,
                    iteration: report.iterations,
                    rewrites,
                    before: b,
                    after: a,
                });
                round += rewrites;
            }
            if round == 0 || report.iterations >= self.max_iterations {
                break;
            }
        }
        report.after = g.metrics();
        let out = if report.total_rewrites() == 0 {
            netlist.clone()
        } else {
            g.rebuild()?
        };
        Ok((out, report))
    }
}

/// Optimizes a netlist at the given level.
///
/// The report's `level` field records the level that ran, including
/// [`OptLevel::Off`] (which returns the input unchanged).
///
/// # Errors
///
/// Propagates structural errors from the pipeline; a
/// builder-validated netlist never produces one.
pub fn optimize(
    netlist: &Netlist,
    options: OptOptions,
) -> Result<(Netlist, OptReport), NetlistError> {
    let (out, mut report) = PassManager::for_level(options.level, options.lut_k).run(netlist)?;
    report.level = options.level;
    Ok((out, report))
}

/// Result summary of a [`pack_luts`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackReport {
    /// LUT nodes before packing.
    pub luts_before: usize,
    /// LUT nodes after packing.
    pub luts_after: usize,
    /// Merges performed.
    pub merges: usize,
}

impl PackReport {
    /// Fraction of LUTs eliminated (0 when there were none).
    pub fn reduction(&self) -> f64 {
        if self.luts_before == 0 {
            0.0
        } else {
            1.0 - self.luts_after as f64 / self.luts_before as f64
        }
    }
}

/// Packs single-fanout LUTs into their consumers when the merged support
/// fits `k` inputs. Returns the optimized netlist and a report.
///
/// This is the standalone form of [`PassKind::Repack`], kept for ablation
/// experiments that isolate packing from the rest of the pipeline.
///
/// # Errors
///
/// Returns [`NetlistError::BadLutSize`] for `k` outside `2..=6`, or
/// structural errors from a malformed input.
pub fn pack_luts(netlist: &Netlist, k: usize) -> Result<(Netlist, PackReport), NetlistError> {
    if !(2..=6).contains(&k) {
        return Err(NetlistError::BadLutSize(k));
    }
    netlist.validate()?;
    let luts_before = netlist
        .nodes()
        .iter()
        .filter(|n| matches!(n.kind, NodeKind::Lut(_)))
        .count();
    let mut g = WorkGraph::from_netlist(netlist);
    let merges = PassKind::Repack.apply(&mut g, k)?;
    let out = g.rebuild()?;
    Ok((
        out,
        PackReport {
            luts_before,
            luts_after: luts_before - merges,
            merges,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::eval::{assert_equivalent_on, equivalent_on};
    use crate::graph::Value;
    use crate::techmap::{tech_map, TechMapOptions};

    fn adder(width: usize) -> Netlist {
        let mut b = CircuitBuilder::new("add");
        let a = b.word_input("a", width);
        let c = b.word_input("b", width);
        let s = b.add(&a, &c);
        b.word_output("s", &s);
        b.finish().unwrap()
    }

    #[test]
    fn opt_level_parses() {
        assert_eq!(OptLevel::parse("0"), Some(OptLevel::Off));
        assert_eq!(OptLevel::parse("off"), Some(OptLevel::Off));
        assert_eq!(OptLevel::parse("1"), Some(OptLevel::Basic));
        assert_eq!(OptLevel::parse("Basic"), Some(OptLevel::Basic));
        assert_eq!(OptLevel::parse("2"), Some(OptLevel::Full));
        assert_eq!(OptLevel::parse("full"), Some(OptLevel::Full));
        assert_eq!(OptLevel::parse("bogus"), None);
        assert_eq!(OptLevel::default(), OptLevel::Full);
    }

    #[test]
    fn off_level_is_identity() {
        let n = adder(8);
        let (out, report) = optimize(&n, OptOptions::at(OptLevel::Off)).unwrap();
        assert_eq!(out.len(), n.len());
        assert_eq!(report.total_rewrites(), 0);
        assert_eq!(report.iterations, 0);
        assert_eq!(report.before, report.after);
    }

    #[test]
    fn full_pipeline_shrinks_an_adder_and_preserves_it() {
        let n = adder(8);
        let (out, report) = optimize(&n, OptOptions::default()).unwrap();
        assert!(
            report.after.luts < report.before.luts,
            "adder must shrink: {report:?}"
        );
        assert!(report.lut_reduction() > 0.0);
        let vectors: Vec<Vec<Value>> = (0..128u32)
            .map(|i| vec![Value::Word(i * 37 % 256), Value::Word(i * 101 % 256)])
            .collect();
        assert_equivalent_on(&n, &out, &vectors, 1);
    }

    #[test]
    fn report_attributes_passes() {
        let mut b = CircuitBuilder::new("mix");
        let a = b.bit_input("a");
        let c = b.bit_input("b");
        let x1 = b.xor(a, c); // twin for CSE
        let x2 = b.xor(a, c);
        let t = b.const_bit(true);
        let k = b.and(x1, t); // const input for ConstProp
        let dead = b.or(a, c); // dead cone for DCE
        let _dead2 = b.not(dead);
        let y = b.and(k, x2);
        b.bit_output("y", y);
        let n = b.finish().unwrap();
        let (out, report) = optimize(&n, OptOptions::default()).unwrap();
        assert!(report.rewrites_for(PassKind::Cse) >= 1);
        assert!(report.rewrites_for(PassKind::ConstProp) >= 1);
        assert!(report.rewrites_for(PassKind::Dce) >= 2);
        let vectors: Vec<Vec<Value>> = (0..4)
            .map(|i| vec![Value::Bit(i & 1 == 1), Value::Bit(i & 2 == 2)])
            .collect();
        assert_equivalent_on(&n, &out, &vectors, 1);
    }

    #[test]
    fn pipeline_is_idempotent() {
        for n in [
            adder(8),
            tech_map(&adder(6), TechMapOptions::lut4()).unwrap(),
        ] {
            let (once, r1) = optimize(&n, OptOptions::default()).unwrap();
            let (twice, r2) = optimize(&once, OptOptions::default()).unwrap();
            assert_eq!(
                r2.total_rewrites(),
                0,
                "second run must find nothing: {r2:?}"
            );
            assert_eq!(r1.after, r2.after);
            assert_eq!(once.len(), twice.len());
        }
    }

    #[test]
    fn pipeline_terminates_within_the_cap() {
        let n = tech_map(&adder(16), TechMapOptions::lut4()).unwrap();
        let (_, report) = optimize(&n, OptOptions::default()).unwrap();
        assert!(report.iterations < DEFAULT_MAX_ITERATIONS, "{report:?}");
        // The last full round must have been a zero-rewrite round.
        let last_round: usize = report
            .passes
            .iter()
            .filter(|d| d.iteration == report.iterations)
            .map(|d| d.rewrites)
            .sum();
        assert_eq!(last_round, 0);
    }

    #[test]
    fn report_exports_counters() {
        // An xor-reduction tree so the repack pass has single-fanout cones
        // to merge (ripple-carry adders do not repack).
        let mut b = CircuitBuilder::new("xorred");
        let a = b.word_input("a", 16);
        let bits: Vec<_> = (0..16).map(|i| a.bit(i)).collect();
        let r = b.reduce_xor(&bits);
        b.bit_output("r", r);
        let n = b.finish().unwrap();
        let (_, report) = optimize(&n, OptOptions::default()).unwrap();
        let mut reg = freac_probe::CounterRegistry::new();
        report.export_into(&mut reg);
        assert_eq!(
            reg.counter("netlist.opt.luts_before"),
            report.before.luts as u64
        );
        assert_eq!(
            reg.counter("netlist.opt.luts_after"),
            report.after.luts as u64
        );
        assert!(reg.counter("netlist.opt.iterations") >= 1);
        assert!(reg.counter("netlist.opt.rewrites.repack") > 0);
    }

    // --- pack_luts compatibility surface ---

    #[test]
    fn bad_k_rejected() {
        let n = adder(4);
        assert!(matches!(pack_luts(&n, 1), Err(NetlistError::BadLutSize(1))));
    }

    #[test]
    fn packing_preserves_function_exhaustively() {
        let n = tech_map(&adder(6), TechMapOptions::lut4()).unwrap();
        let (packed, report) = pack_luts(&n, 4).unwrap();
        assert_eq!(report.luts_after + report.merges, report.luts_before);
        let vectors: Vec<Vec<Value>> = (0..64u32)
            .flat_map(|a| (0..4u32).map(move |b| vec![Value::Word(a), Value::Word(b * 17 % 64)]))
            .collect();
        assert!(equivalent_on(&n, &packed, &vectors, 1).unwrap());
    }

    #[test]
    fn packing_reduces_xor_reduction_trees() {
        let mut b = CircuitBuilder::new("xorred");
        let a = b.word_input("a", 16);
        let bits: Vec<_> = (0..16).map(|i| a.bit(i)).collect();
        let r = b.reduce_xor(&bits);
        b.bit_output("r", r);
        let n = b.finish().unwrap();
        let (packed, report) = pack_luts(&n, 4).unwrap();
        assert!(report.merges > 0, "xor tree must pack");
        assert!(report.reduction() > 0.3, "got {}", report.reduction());
        let vecs: Vec<Vec<Value>> = (0..200u32)
            .map(|i| vec![Value::Word(i * 327 % 65536)])
            .collect();
        assert!(equivalent_on(&n, &packed, &vecs, 1).unwrap());
    }

    #[test]
    fn packed_netlists_still_tech_map_and_fold() {
        let mapped = tech_map(&adder(16), TechMapOptions::lut4()).unwrap();
        let (packed, _) = pack_luts(&mapped, 4).unwrap();
        packed.validate().unwrap();
        crate::level::level_graph(&packed).unwrap();
    }

    #[test]
    fn optimized_netlists_still_tech_map() {
        let (out, _) = optimize(&adder(12), OptOptions::default()).unwrap();
        let mapped = tech_map(&out, TechMapOptions::lut4()).unwrap();
        mapped.validate().unwrap();
    }
}
