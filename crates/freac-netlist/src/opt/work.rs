//! The mutable working graph the optimization passes rewrite.
//!
//! [`Netlist`] is deliberately append-only: experiment code treats node ids
//! as stable forever, so passes cannot splice it in place. [`WorkGraph`] is
//! the analysis-friendly counterpart: nodes keep their (stable) original
//! ids for the whole pipeline run, rewrites go through *forwarding* —
//! `replace(old, new)` records that every use of `old` now means `new` —
//! and tombstoning (`kill`), and the final [`WorkGraph::rebuild`] compacts
//! the survivors back into a fresh, validated [`Netlist`] whose primary
//! inputs and outputs keep their declaration order, names, and `index`
//! fields bit for bit.
//!
//! Use-def queries the passes need (`fanout_counts`, `resolve`,
//! `canonicalize`) are recomputed on demand from the live node set; none of
//! them survive a rewrite, which keeps every pass honest about re-deriving
//! analyses after it mutates the graph.

use std::collections::VecDeque;

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId, NodeKind};

/// Cheap structural metrics of the live subgraph, measured before and
/// after every pass application so the [`OptReport`](super::OptReport) can
/// attribute LUT/level/edge deltas pass by pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptMetrics {
    /// Live LUT nodes.
    pub luts: usize,
    /// Live nodes of any kind.
    pub nodes: usize,
    /// Live edges (sum of live nodes' resolved input arities).
    pub edges: usize,
    /// Combinational depth in levels, matching
    /// [`LeveledGraph::depth`](crate::level::LeveledGraph::depth).
    pub depth: u32,
}

/// A mutable rewrite graph over a [`Netlist`], with stable node ids,
/// forwarding-based replacement, and tombstones.
#[derive(Debug, Clone)]
pub struct WorkGraph {
    name: String,
    kinds: Vec<NodeKind>,
    inputs: Vec<Vec<NodeId>>,
    live: Vec<bool>,
    /// Forwarding pointers: `fwd[i] == i` for canonical nodes; a replaced
    /// node points (possibly transitively) at its replacement.
    fwd: Vec<u32>,
    /// Ids of primary input/output nodes, in declaration order.
    pis: Vec<NodeId>,
    pos: Vec<NodeId>,
    input_names: Vec<String>,
    output_names: Vec<String>,
}

impl WorkGraph {
    /// Imports a netlist. Node `i` of the netlist becomes node `i` of the
    /// graph and keeps that id until [`WorkGraph::rebuild`].
    pub fn from_netlist(netlist: &Netlist) -> Self {
        let n = netlist.len();
        WorkGraph {
            name: netlist.name().to_owned(),
            kinds: netlist.nodes().iter().map(|nd| nd.kind.clone()).collect(),
            inputs: netlist.nodes().iter().map(|nd| nd.inputs.clone()).collect(),
            live: vec![true; n],
            fwd: (0..n as u32).collect(),
            pis: netlist.primary_inputs().to_vec(),
            pos: netlist.primary_outputs().to_vec(),
            input_names: (0..netlist.primary_inputs().len())
                .map(|i| {
                    netlist
                        .input_name(i)
                        .unwrap_or("anonymous input")
                        .to_owned()
                })
                .collect(),
            output_names: (0..netlist.primary_outputs().len())
                .map(|i| {
                    netlist
                        .output_name(i)
                        .unwrap_or("anonymous output")
                        .to_owned()
                })
                .collect(),
        }
    }

    /// Number of node slots (live and dead).
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the graph has no node slots at all.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether `id` is still a canonical, un-killed node.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.live[id.index()]
    }

    /// The node's operation.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.kinds[id.index()]
    }

    /// The node's operands (not necessarily resolved — run
    /// [`WorkGraph::canonicalize`] first for resolved views).
    pub fn inputs(&self, id: NodeId) -> &[NodeId] {
        &self.inputs[id.index()]
    }

    /// Whether the node is part of the primary interface (inputs *and*
    /// outputs are pinned: passes may rewrite what a primary output reads,
    /// never the node itself).
    pub fn is_interface(&self, id: NodeId) -> bool {
        matches!(
            self.kinds[id.index()],
            NodeKind::BitInput { .. }
                | NodeKind::WordInput { .. }
                | NodeKind::BitOutput { .. }
                | NodeKind::WordOutput { .. }
        )
    }

    /// Follows forwarding pointers to the canonical node for `id`.
    pub fn resolve(&self, id: NodeId) -> NodeId {
        let mut cur = id.index();
        while self.fwd[cur] as usize != cur {
            cur = self.fwd[cur] as usize;
        }
        NodeId(cur as u32)
    }

    /// Rewrites every live node's operand list through [`Self::resolve`]
    /// and compresses forwarding chains. Passes call this first so their
    /// structural view is canonical.
    pub fn canonicalize(&mut self) {
        for i in 0..self.fwd.len() {
            let root = self.resolve(NodeId(i as u32));
            self.fwd[i] = root.0;
        }
        for i in 0..self.inputs.len() {
            if !self.live[i] {
                continue;
            }
            for pos in 0..self.inputs[i].len() {
                let src = self.inputs[i][pos];
                self.inputs[i][pos] = NodeId(self.fwd[src.index()]);
            }
        }
    }

    /// Declares that every use of `old` now means `new`, and tombstones
    /// `old`. Both must be live; `old` must not be an interface node.
    pub fn replace(&mut self, old: NodeId, new: NodeId) {
        let new = self.resolve(new);
        debug_assert!(self.live[old.index()], "replacing a dead node");
        debug_assert!(self.live[new.index()], "forwarding to a dead node");
        debug_assert!(old != new, "self-replacement");
        debug_assert!(!self.is_interface(old), "replacing an interface node");
        self.fwd[old.index()] = new.0;
        self.live[old.index()] = false;
    }

    /// Tombstones `id` without a replacement (dead-logic sweep; callers
    /// must know nothing live still reads it).
    pub fn kill(&mut self, id: NodeId) {
        debug_assert!(!self.is_interface(id), "killing an interface node");
        self.live[id.index()] = false;
    }

    /// Appends a fresh node (e.g. a constant materialized by folding) and
    /// returns its id. The node must not be a primary input/output kind.
    pub fn add_node(&mut self, kind: NodeKind, inputs: Vec<NodeId>) -> NodeId {
        debug_assert!(!matches!(
            kind,
            NodeKind::BitInput { .. }
                | NodeKind::WordInput { .. }
                | NodeKind::BitOutput { .. }
                | NodeKind::WordOutput { .. }
        ));
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.inputs.push(inputs);
        self.live.push(true);
        self.fwd.push(id.0);
        id
    }

    /// Rewrites a node in place (new operation and operand list).
    pub fn set_node(&mut self, id: NodeId, kind: NodeKind, inputs: Vec<NodeId>) {
        debug_assert!(self.live[id.index()], "rewriting a dead node");
        self.kinds[id.index()] = kind;
        self.inputs[id.index()] = inputs;
    }

    /// Use counts over the live graph: how many live operand slots read
    /// each canonical node (primary outputs and sequential D inputs
    /// included). Dead and forwarded nodes count zero.
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut fanout = vec![0u32; self.len()];
        for i in 0..self.len() {
            if !self.live[i] {
                continue;
            }
            for &inp in &self.inputs[i] {
                fanout[self.resolve(inp).index()] += 1;
            }
        }
        fanout
    }

    /// Iterates the live users of `id`: every live node with at least one
    /// operand resolving to `id`, in id order.
    pub fn users(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let target = self.resolve(id);
        (0..self.len()).filter_map(move |i| {
            if !self.live[i] {
                return None;
            }
            self.inputs[i]
                .iter()
                .any(|&inp| self.resolve(inp) == target)
                .then_some(NodeId(i as u32))
        })
    }

    /// Structural metrics of the live subgraph. Depth matches
    /// [`level_graph`](crate::level::level_graph): sequential nodes act as
    /// sources, output nodes occupy a level of their own.
    pub fn metrics(&self) -> OptMetrics {
        let mut m = OptMetrics::default();
        let n = self.len();
        let mut indeg = vec![0u32; n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if !self.live[i] {
                continue;
            }
            m.nodes += 1;
            if matches!(self.kinds[i], NodeKind::Lut(_)) {
                m.luts += 1;
            }
            m.edges += self.inputs[i].len();
            if self.kinds[i].is_sequential() {
                continue;
            }
            for &inp in &self.inputs[i] {
                let src = self.resolve(inp).index();
                if self.kinds[src].is_sequential() {
                    continue;
                }
                indeg[i] += 1;
                succs[src].push(i as u32);
            }
        }
        let mut level = vec![0u32; n];
        let mut ready: VecDeque<usize> =
            (0..n).filter(|&i| self.live[i] && indeg[i] == 0).collect();
        let mut depth = 0u32;
        while let Some(i) = ready.pop_front() {
            depth = depth.max(level[i] + 1);
            for &s in &succs[i] {
                let s = s as usize;
                level[s] = level[s].max(level[i] + 1);
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push_back(s);
                }
            }
        }
        m.depth = if m.nodes == 0 { 0 } else { depth };
        m
    }

    /// Compacts the live subgraph back into a [`Netlist`].
    ///
    /// Emission order: primary inputs in declaration order, then
    /// sequential nodes (D inputs patched last, so feedback is legal),
    /// then the remaining combinational nodes in a deterministic
    /// smallest-id-first topological order, then primary outputs in
    /// declaration order — so the rebuilt interface is identical to the
    /// imported one even when passes appended nodes out of dependency
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if a pass introduced a
    /// combinational cycle (a pass bug — rebuilding refuses to hide it),
    /// or [`NetlistError::UnknownNode`] if a live node reads a tombstone.
    pub fn rebuild(&self) -> Result<Netlist, NetlistError> {
        let n = self.len();
        let mut out = Netlist::new(self.name.clone());
        let mut map: Vec<Option<NodeId>> = vec![None; n];
        let mut seq_patches: Vec<(NodeId, NodeId)> = Vec::new();

        // Live operand, resolved, or an UnknownNode error naming the
        // tombstone a pass left dangling.
        let resolved_live = |id: NodeId| -> Result<NodeId, NetlistError> {
            let r = self.resolve(id);
            if self.live[r.index()] {
                Ok(r)
            } else {
                Err(NetlistError::UnknownNode(r))
            }
        };

        // 1. Primary inputs, declaration order.
        for (pos, &pi) in self.pis.iter().enumerate() {
            let id = out.push(
                self.kinds[pi.index()].clone(),
                Vec::new(),
                Some(&self.input_names[pos]),
            );
            map[pi.index()] = Some(id);
        }

        // 2. Sequential nodes (sources within a cycle) with self-loop
        //    placeholders; their D inputs are patched in step 5.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if !self.live[i] || !self.kinds[i].is_sequential() {
                continue;
            }
            let placeholder = NodeId(out.len() as u32);
            let id = out.push(self.kinds[i].clone(), vec![placeholder], None);
            seq_patches.push((id, resolved_live(self.inputs[i][0])?));
            map[i] = Some(id);
        }

        // 3. Combinational interior in smallest-id-first topological order.
        let mut indeg = vec![0u32; n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let interior_flag: Vec<bool> = (0..n)
            .map(|i| {
                self.live[i]
                    && !self.kinds[i].is_sequential()
                    && !matches!(
                        self.kinds[i],
                        NodeKind::BitInput { .. }
                            | NodeKind::WordInput { .. }
                            | NodeKind::BitOutput { .. }
                            | NodeKind::WordOutput { .. }
                    )
            })
            .collect();
        let interior = |i: usize| interior_flag[i];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if !interior(i) {
                continue;
            }
            for &inp in &self.inputs[i] {
                let src = resolved_live(inp)?.index();
                if interior(src) {
                    indeg[i] += 1;
                    succs[src].push(i as u32);
                }
            }
        }
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&i| interior(i) && indeg[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut emitted = 0usize;
        let interior_total = (0..n).filter(|&i| interior(i)).count();
        while let Some(std::cmp::Reverse(i)) = heap.pop() {
            let ins: Result<Vec<NodeId>, NetlistError> = self.inputs[i]
                .iter()
                .map(|&inp| {
                    let src = resolved_live(inp)?;
                    map[src.index()].ok_or(NetlistError::UnknownNode(src))
                })
                .collect();
            map[i] = Some(out.push(self.kinds[i].clone(), ins?, None));
            emitted += 1;
            for &s in &succs[i] {
                let s = s as usize;
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    heap.push(std::cmp::Reverse(s));
                }
            }
        }
        if emitted != interior_total {
            let blocked = (0..n)
                .find(|&i| interior_flag[i] && map[i].is_none())
                .map(|i| NodeId(i as u32))
                .expect("some interior node must be blocked");
            return Err(NetlistError::CombinationalCycle(blocked));
        }

        // 4. Primary outputs, declaration order.
        for (pos, &po) in self.pos.iter().enumerate() {
            let src = resolved_live(self.inputs[po.index()][0])?;
            let mapped = map[src.index()].ok_or(NetlistError::UnknownNode(src))?;
            let id = out.push(
                self.kinds[po.index()].clone(),
                vec![mapped],
                Some(&self.output_names[pos]),
            );
            map[po.index()] = Some(id);
        }

        // 5. Patch sequential feedback.
        for (node, old_src) in seq_patches {
            let src = map[old_src.index()].ok_or(NetlistError::UnknownNode(old_src))?;
            out.set_input(node, 0, src)?;
        }
        out.validate()?;
        debug_assert_eq!(out.primary_inputs().len(), self.pis.len());
        debug_assert_eq!(out.primary_outputs().len(), self.pos.len());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::truth::TruthTable;

    fn sample() -> Netlist {
        let mut b = CircuitBuilder::new("s");
        let a = b.word_input("a", 4);
        let c = b.word_input("b", 4);
        let s = b.add(&a, &c);
        b.word_output("s", &s);
        b.finish().unwrap()
    }

    #[test]
    fn import_rebuild_round_trips() {
        let n = sample();
        let g = WorkGraph::from_netlist(&n);
        let r = g.rebuild().unwrap();
        assert_eq!(r.len(), n.len());
        assert_eq!(r.primary_inputs().len(), n.primary_inputs().len());
        assert_eq!(r.primary_outputs().len(), n.primary_outputs().len());
        assert_eq!(r.input_name(0), n.input_name(0));
        assert_eq!(r.output_name(0), n.output_name(0));
        crate::eval::assert_equivalent_on(
            &n,
            &r,
            &[vec![crate::Value::Word(3), crate::Value::Word(9)]],
            1,
        );
    }

    #[test]
    fn replace_forwards_uses_and_rebuild_drops_the_dead_node() {
        let mut b = CircuitBuilder::new("r");
        let a = b.bit_input("a");
        let x = b.not(a);
        let y = b.not(a);
        b.bit_output("x", x);
        b.bit_output("y", y);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        g.replace(y.node(), x.node());
        g.canonicalize();
        let r = g.rebuild().unwrap();
        assert_eq!(r.len(), n.len() - 1, "duplicate NOT dropped");
    }

    #[test]
    fn appended_nodes_rebuild_despite_reverse_id_order() {
        // A consumer with a *smaller* id than its (appended) producer must
        // still rebuild: topological emission, not id order.
        let mut b = CircuitBuilder::new("o");
        let a = b.bit_input("a");
        let x = b.not(a);
        b.bit_output("x", x);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        let late = g.add_node(NodeKind::Lut(TruthTable::not1()), vec![a.node()]);
        g.replace(x.node(), late);
        let r = g.rebuild().unwrap();
        r.validate().unwrap();
        assert_eq!(r.len(), n.len());
    }

    #[test]
    fn sequential_feedback_survives_rebuild() {
        let mut b = CircuitBuilder::new("ctr");
        let (q, h) = b.word_reg(5, 4);
        let nx = b.inc(&q);
        b.connect_word_reg(h, &nx);
        b.word_output("q", &q);
        let n = b.finish().unwrap();
        let g = WorkGraph::from_netlist(&n);
        let r = g.rebuild().unwrap();
        crate::eval::assert_equivalent_on(&n, &r, &[vec![]], 5);
    }

    #[test]
    fn rebuild_reports_dangling_tombstones() {
        let mut b = CircuitBuilder::new("d");
        let a = b.bit_input("a");
        let x = b.not(a);
        b.bit_output("x", x);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        g.kill(x.node()); // output still reads it
        assert!(matches!(g.rebuild(), Err(NetlistError::UnknownNode(_))));
    }

    #[test]
    fn metrics_match_leveled_depth() {
        let n = sample();
        let g = WorkGraph::from_netlist(&n);
        let m = g.metrics();
        let lg = crate::level::level_graph(&n).unwrap();
        assert_eq!(m.depth, lg.depth());
        assert_eq!(m.nodes, n.len());
        assert_eq!(
            m.edges,
            n.nodes().iter().map(|nd| nd.inputs.len()).sum::<usize>()
        );
    }

    #[test]
    fn fanout_counts_every_live_use() {
        let mut b = CircuitBuilder::new("f");
        let a = b.bit_input("a");
        let x = b.not(a);
        let y = b.and(x, a);
        b.bit_output("y", y);
        let n = b.finish().unwrap();
        let g = WorkGraph::from_netlist(&n);
        let fan = g.fanout_counts();
        assert_eq!(fan[a.node().index()], 2, "a feeds NOT and AND");
        assert_eq!(fan[x.node().index()], 1);
        assert_eq!(g.users(a.node()).count(), 2);
    }
}
