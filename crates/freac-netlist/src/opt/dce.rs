//! Dead-logic sweep over the netlist IR.
//!
//! Marks everything reachable from the primary outputs by walking resolved
//! operand edges — through sequential feedback, so a register cone that
//! only feeds itself and an output stays live — and tombstones the rest.
//! This is stronger than the plan-level DCE in `freac_netlist::plan`
//! because it runs *before* technology mapping: a dangling cone swept here
//! never gets Shannon-decomposed, scheduled, or configured at all.
//!
//! Interface nodes are pinned: primary inputs stay even when nothing reads
//! them (the accelerator ABI fixes the input list), and primary outputs are
//! roots by definition.

use crate::error::NetlistError;
use crate::graph::NodeId;

use super::work::WorkGraph;

/// One application of the sweep. Returns the number of nodes tombstoned.
pub(super) fn run(g: &mut WorkGraph) -> Result<usize, NetlistError> {
    g.canonicalize();
    let n = g.len();
    let mut marked = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let id = NodeId(i as u32);
        if g.is_live(id) && g.is_interface(id) {
            marked[i] = true;
            stack.push(i);
        }
    }
    while let Some(i) = stack.pop() {
        for &inp in g.inputs(NodeId(i as u32)) {
            let r = g.resolve(inp).index();
            if !marked[r] {
                marked[r] = true;
                stack.push(r);
            }
        }
    }
    let mut swept = 0usize;
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let id = NodeId(i as u32);
        if g.is_live(id) && !marked[i] && !g.is_interface(id) {
            g.kill(id);
            swept += 1;
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn dangling_cone_is_swept() {
        let mut b = CircuitBuilder::new("d");
        let a = b.bit_input("a");
        let c = b.bit_input("b");
        let keep = b.xor(a, c);
        let dead1 = b.and(a, c);
        let _dead2 = b.not(dead1); // cone of two dead LUTs
        b.bit_output("y", keep);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        assert_eq!(run(&mut g).unwrap(), 2);
        let r = g.rebuild().unwrap();
        assert_eq!(r.len(), n.len() - 2);
        crate::eval::assert_equivalent_on(
            &n,
            &r,
            &[
                vec![crate::Value::Bit(false), crate::Value::Bit(true)],
                vec![crate::Value::Bit(true), crate::Value::Bit(true)],
            ],
            1,
        );
    }

    #[test]
    fn feedback_registers_stay_live() {
        let mut b = CircuitBuilder::new("ctr");
        let (q, h) = b.word_reg(0, 4);
        let nx = b.inc(&q);
        b.connect_word_reg(h, &nx);
        b.word_output("q", &q);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        // Only the adder's final carry-out cone is dead; the feedback
        // register and its whole D cone must stay.
        run(&mut g).unwrap();
        let r = g.rebuild().unwrap();
        assert!(
            r.nodes()
                .iter()
                .any(|nd| matches!(nd.kind, crate::graph::NodeKind::WordReg { .. })),
            "feedback register survives"
        );
        crate::eval::assert_equivalent_on(&n, &r, &[vec![]], 10);
    }

    #[test]
    fn unread_inputs_are_pinned() {
        let mut b = CircuitBuilder::new("p");
        let _unused = b.bit_input("unused");
        let a = b.bit_input("a");
        let y = b.not(a);
        b.bit_output("y", y);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        run(&mut g).unwrap();
        let r = g.rebuild().unwrap();
        assert_eq!(r.primary_inputs().len(), 2, "ABI keeps the unused pin");
    }
}
