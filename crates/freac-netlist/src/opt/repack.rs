//! LUT repacking: single-fanout producer/consumer merging.
//!
//! Shannon decomposition and gate-level construction leave many small LUTs
//! whose only consumer is another LUT. When the merged function's support
//! (consumer inputs minus the producer, plus the producer's inputs, shared
//! pins counted once) still fits `k` inputs, collapsing producer into
//! consumer removes a node *and* a fold step's worth of work — the same
//! restructuring LUTstructions applies to fit logic into tiny LUT budgets.
//!
//! Merging is applied to fixpoint per consumer, so chains (ripple-carry
//! sum/carry cones, xor-reduction trees) collapse bottom-up in one run.
//! Multi-fanout producers are never absorbed: duplicating logic would trade
//! LUT count for... more LUT count.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::graph::{NodeId, NodeKind};
use crate::truth::TruthTable;

use super::work::WorkGraph;

/// One application of repacking with LUT width `k`. Returns the number of
/// producer LUTs absorbed into their consumers.
pub(super) fn run(g: &mut WorkGraph, k: usize) -> Result<usize, NetlistError> {
    g.canonicalize();
    let mut fanout = g.fanout_counts();
    let mut merges = 0usize;
    let n = g.len();
    // Consumers in id order: combinational producers have smaller ids than
    // their consumers (builder invariant, preserved by rebuild), so each
    // merge sees producers that are already packed themselves.
    for c_idx in 0..n {
        let c = NodeId(c_idx as u32);
        loop {
            if !g.is_live(c) {
                break;
            }
            let NodeKind::Lut(c_table) = g.kind(c).clone() else {
                break;
            };
            let c_inputs: Vec<NodeId> = g.inputs(c).to_vec();
            // Find a mergeable operand: a single-fanout LUT whose merged
            // support fits k.
            let candidate = c_inputs.iter().enumerate().find_map(|(pos, &p)| {
                if !g.is_live(p) || fanout[p.index()] != 1 {
                    return None;
                }
                let NodeKind::Lut(p_table) = g.kind(p) else {
                    return None;
                };
                let mut support: Vec<NodeId> =
                    c_inputs.iter().copied().filter(|&x| x != p).collect();
                for &pin in g.inputs(p) {
                    if !support.contains(&pin) {
                        support.push(pin);
                    }
                }
                if support.len() <= k && support.len() <= crate::truth::MAX_TABLE_INPUTS {
                    Some((pos, p, p_table.clone(), support))
                } else {
                    None
                }
            });
            let Some((pos, p, p_table, support)) = candidate else {
                break;
            };

            // Build the merged table over `support`.
            let p_inputs: Vec<NodeId> = g.inputs(p).to_vec();
            let position_of: HashMap<NodeId, usize> =
                support.iter().enumerate().map(|(i, &x)| (x, i)).collect();
            let merged = TruthTable::from_fn(support.len(), |row| {
                let bit_of = |x: NodeId| (row >> position_of[&x]) & 1 == 1;
                let mut p_row = 0usize;
                for (i, &pin) in p_inputs.iter().enumerate() {
                    if bit_of(pin) {
                        p_row |= 1 << i;
                    }
                }
                let p_val = p_table.eval(p_row);
                let mut c_row = 0usize;
                for (i, &cin) in c_inputs.iter().enumerate() {
                    let v = if i == pos { p_val } else { bit_of(cin) };
                    if v {
                        c_row |= 1 << i;
                    }
                }
                c_table.eval(c_row)
            })?;

            g.set_node(c, NodeKind::Lut(merged), support);
            // c was p's only reader and no longer is: p is dead.
            g.kill(p);
            merges += 1;
            // Fanout bookkeeping: p's edges to its inputs are gone; c now
            // reads each of them once. A pin p shared with c nets one fewer
            // reader, a pin new to c nets zero change.
            for &pin in &p_inputs {
                fanout[pin.index()] -= 1;
                if !c_inputs.contains(&pin) {
                    fanout[pin.index()] += 1;
                }
            }
        }
    }
    Ok(merges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::eval::assert_equivalent_on;
    use crate::graph::{Netlist, Value};

    fn adder(width: usize) -> Netlist {
        let mut b = CircuitBuilder::new("add");
        let a = b.word_input("a", width);
        let c = b.word_input("b", width);
        let s = b.add(&a, &c);
        b.word_output("s", &s);
        b.finish().unwrap()
    }

    #[test]
    fn xor_tree_chains_pack() {
        // A 2-input xor tree is all single-fanout producer/consumer pairs:
        // pairs of xor2 gates merge into xor3/xor4 LUTs at k=4. (Ripple
        // adders do NOT repack: each carry fans out to the next sum and
        // carry, and multi-fanout producers are never absorbed.)
        let mut b = CircuitBuilder::new("xorred");
        let a = b.word_input("a", 16);
        let bits: Vec<_> = (0..16).map(|i| a.bit(i)).collect();
        let r = b.reduce_xor(&bits);
        b.bit_output("r", r);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        let before = g.metrics().luts;
        let merges = run(&mut g, 4).unwrap();
        assert!(merges > 0, "xor tree must merge at k=4");
        assert_eq!(g.metrics().luts, before - merges);
        let r = g.rebuild().unwrap();
        let vectors: Vec<Vec<Value>> = (0..200u32)
            .map(|i| vec![Value::Word(i * 327 % 65536)])
            .collect();
        assert_equivalent_on(&n, &r, &vectors, 1);
    }

    #[test]
    fn adders_do_not_repack_but_survive() {
        let n = adder(8);
        let mut g = WorkGraph::from_netlist(&n);
        assert_eq!(run(&mut g, 4).unwrap(), 0, "carries fan out twice");
        let r = g.rebuild().unwrap();
        let vectors: Vec<Vec<Value>> = (0..64u32)
            .map(|i| vec![Value::Word(i * 37 % 256), Value::Word(i * 101 % 256)])
            .collect();
        assert_equivalent_on(&n, &r, &vectors, 1);
    }

    #[test]
    fn multi_fanout_producers_survive() {
        let mut b = CircuitBuilder::new("shared");
        let a = b.word_input("a", 2);
        let x = b.xor(a.bit(0), a.bit(1));
        let y = b.not(x);
        let z = b.and(x, a.bit(0));
        b.bit_output("y", y);
        b.bit_output("z", z);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        run(&mut g, 4).unwrap();
        let r = g.rebuild().unwrap();
        let vecs: Vec<Vec<Value>> = (0..4u32).map(|i| vec![Value::Word(i)]).collect();
        assert_equivalent_on(&n, &r, &vecs, 1);
    }

    #[test]
    fn sequential_circuits_pack_safely() {
        let mut b = CircuitBuilder::new("ctr");
        let (q, h) = b.word_reg(0, 8);
        let one = b.const_word(1, 8);
        let next = b.add(&q, &one);
        b.connect_word_reg(h, &next);
        b.word_output("q", &q);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        run(&mut g, 4).unwrap();
        let r = g.rebuild().unwrap();
        assert_equivalent_on(&n, &r, &[vec![]], 10);
    }
}
