//! Structural hashing / common-subexpression elimination.
//!
//! Two combinational nodes with the same operation and the same (resolved)
//! operand list compute the same value on every cycle, so all but the
//! first are forwarded to it. Builder DSL lowering produces many such
//! twins (ripple-carry stages re-deriving `a ^ b`, comparators sharing
//! equality cones, ROM columns sharing address decoders); each one merged
//! here is a LUT the Shannon mapper never sees and a fold step the
//! schedule never pays.
//!
//! Sequential nodes are *not* hashed: two registers with identical D cones
//! are semantically mergeable, but their keys would be recursive through
//! the feedback path — the payoff is not worth a cyclic hash. Interface
//! nodes are pinned by definition.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::graph::{NodeId, NodeKind};

use super::work::WorkGraph;

/// Whether a node kind is safe and worthwhile to hash structurally.
fn eligible(kind: &NodeKind) -> bool {
    matches!(
        kind,
        NodeKind::Lut(_)
            | NodeKind::Mac
            | NodeKind::Pack
            | NodeKind::Unpack { .. }
            | NodeKind::ConstBit(_)
            | NodeKind::ConstWord(_)
    )
}

/// One application of structural hashing over the live graph. Returns the
/// number of nodes forwarded to an earlier structural twin.
pub(super) fn run(g: &mut WorkGraph) -> Result<usize, NetlistError> {
    g.canonicalize();
    let mut seen: HashMap<(NodeKind, Vec<NodeId>), NodeId> = HashMap::new();
    let mut rewrites = 0usize;
    for i in 0..g.len() {
        let id = NodeId(i as u32);
        if !g.is_live(id) || !eligible(g.kind(id)) {
            continue;
        }
        // Resolve again: an operand may have been forwarded by an earlier
        // merge in this very sweep, and the key must be canonical for the
        // chain `(a^b), (a^b), ((a^b)&c), ((a^b)&c)` to collapse in one
        // pass.
        let key_inputs: Vec<NodeId> = g.inputs(id).iter().map(|&x| g.resolve(x)).collect();
        let key = (g.kind(id).clone(), key_inputs);
        match seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                g.replace(id, *e.get());
                rewrites += 1;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(id);
            }
        }
    }
    Ok(rewrites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn duplicate_luts_merge_to_one() {
        let mut b = CircuitBuilder::new("dup");
        let a = b.bit_input("a");
        let c = b.bit_input("b");
        let x = b.xor(a, c);
        let y = b.xor(a, c);
        let z = b.xor(a, c);
        let o1 = b.and(x, y);
        b.bit_output("o1", o1);
        b.bit_output("o2", z);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        let rewrites = run(&mut g).unwrap();
        assert_eq!(rewrites, 2, "two of three XOR twins forwarded");
        let m = g.metrics();
        // and(x, x) survives as a LUT (const-prop/prune handle it later).
        assert_eq!(m.luts, 2);
    }

    #[test]
    fn chains_of_twins_collapse_in_one_sweep() {
        let mut b = CircuitBuilder::new("chain");
        let a = b.bit_input("a");
        let c = b.bit_input("b");
        let x1 = b.xor(a, c);
        let x2 = b.xor(a, c);
        let y1 = b.not(x1);
        let y2 = b.not(x2);
        b.bit_output("y1", y1);
        b.bit_output("y2", y2);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        assert_eq!(run(&mut g).unwrap(), 2, "both levels merge in one pass");
    }

    #[test]
    fn different_tables_on_same_inputs_do_not_merge() {
        let mut b = CircuitBuilder::new("diff");
        let a = b.bit_input("a");
        let c = b.bit_input("b");
        let x = b.xor(a, c);
        let y = b.and(a, c);
        b.bit_output("x", x);
        b.bit_output("y", y);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        assert_eq!(run(&mut g).unwrap(), 0);
    }

    #[test]
    fn sequential_nodes_are_not_hashed() {
        let mut b = CircuitBuilder::new("seq");
        let (q1, h1) = b.ff(false);
        let (q2, h2) = b.ff(false);
        let n1 = b.not(q1);
        let n2 = b.not(q2);
        b.connect_ff(h1, n1);
        b.connect_ff(h2, n2);
        b.bit_output("q1", q1);
        b.bit_output("q2", q2);
        let n = b.finish().unwrap();
        let mut g = WorkGraph::from_netlist(&n);
        // The two NOTs read different FFs, so nothing merges — and the FFs
        // themselves must never be considered.
        assert_eq!(run(&mut g).unwrap(), 0);
    }
}
