//! A small structural-HDL builder for accelerator datapaths.
//!
//! [`CircuitBuilder`] is the front end the benchmark kernels use instead of
//! Vivado HLS + VTR: circuits are described as bit vectors ([`Word`]) wired
//! through gates, ripple-carry arithmetic, table lookups, registers, and the
//! dedicated 32-bit MAC. The output is a validated [`Netlist`] ready for
//! technology mapping and folding.
//!
//! Widths are dynamic (1..=32 bits). Width mismatches are programming errors
//! in the circuit generator and therefore panic rather than returning
//! `Result`; misuse cannot arise from end-user data.

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId, NodeKind};
use crate::level::level_graph;
use crate::truth::TruthTable;

/// A single-bit signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wire(pub(crate) NodeId);

impl Wire {
    /// The netlist node driving this wire.
    pub fn node(self) -> NodeId {
        self.0
    }
}

/// A little-endian bit vector of up to 32 bits.
///
/// `bits[0]` is the least-significant bit. If the value originated directly
/// from a word-typed node (a word input, register, or MAC) `origin` records
/// it so word-level consumers can avoid a redundant pack.
#[derive(Debug, Clone)]
pub struct Word {
    bits: Vec<Wire>,
    origin: Option<NodeId>,
}

impl Word {
    /// The bits, least significant first.
    pub fn bits(&self) -> &[Wire] {
        &self.bits
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width()`.
    pub fn bit(&self, i: usize) -> Wire {
        self.bits[i]
    }

    /// A sub-range of bits `[lo, lo + len)` as a new word.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, lo: usize, len: usize) -> Word {
        Word {
            bits: self.bits[lo..lo + len].to_vec(),
            origin: None,
        }
    }

    /// A one-bit word from a single wire (useful for flags feeding
    /// arithmetic, e.g. counting match bits).
    pub fn from_wire(wire: Wire) -> Word {
        Word {
            bits: vec![wire],
            origin: None,
        }
    }

    fn from_bits(bits: Vec<Wire>) -> Word {
        assert!(
            !bits.is_empty() && bits.len() <= 32,
            "word width must be 1..=32, got {}",
            bits.len()
        );
        Word { bits, origin: None }
    }
}

/// A pending flip-flop whose D input has not been connected yet.
///
/// Created by [`CircuitBuilder::ff`]; must be closed with
/// [`CircuitBuilder::connect_ff`] before [`CircuitBuilder::finish`].
#[derive(Debug)]
#[must_use = "flip-flops must be connected with connect_ff before finish()"]
pub struct FfHandle {
    node: NodeId,
}

/// A pending word register whose D input has not been connected yet.
#[derive(Debug)]
#[must_use = "registers must be connected with connect_word_reg before finish()"]
pub struct WordRegHandle {
    node: NodeId,
}

/// Builds a [`Netlist`] incrementally.
#[derive(Debug)]
pub struct CircuitBuilder {
    netlist: Netlist,
    n_bit_inputs: u32,
    n_word_inputs: u32,
    n_bit_outputs: u32,
    n_word_outputs: u32,
    pending_seq: Vec<NodeId>,
    const_false: Option<Wire>,
    const_true: Option<Wire>,
}

impl CircuitBuilder {
    /// Creates a builder for a circuit named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            netlist: Netlist::new(name),
            n_bit_inputs: 0,
            n_word_inputs: 0,
            n_bit_outputs: 0,
            n_word_outputs: 0,
            pending_seq: Vec::new(),
            const_false: None,
            const_true: None,
        }
    }

    /// Finalizes the circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if any flip-flop or register was left unconnected,
    /// if structural validation fails, or if the combinational graph has a
    /// cycle.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        for &n in &self.pending_seq {
            // An unconnected sequential node still points at itself; that is
            // a (sequential) self-loop which is technically legal but almost
            // certainly a builder bug, so report it as a cycle.
            if self.netlist.nodes()[n.index()].inputs[0] == n {
                return Err(NetlistError::CombinationalCycle(n));
            }
        }
        self.netlist.validate()?;
        level_graph(&self.netlist)?;
        Ok(self.netlist)
    }

    // ------------------------------------------------------------------
    // Primary I/O
    // ------------------------------------------------------------------

    /// Declares a primary bit input (a pre-latched parameter pin).
    pub fn bit_input(&mut self, name: &str) -> Wire {
        let idx = self.n_bit_inputs;
        self.n_bit_inputs += 1;
        Wire(
            self.netlist
                .push(NodeKind::BitInput { index: idx }, vec![], Some(name)),
        )
    }

    /// Declares a primary word input of `width` bits; fetching it costs one
    /// bus operation per activation in the fold schedule.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 32.
    pub fn word_input(&mut self, name: &str, width: usize) -> Word {
        assert!((1..=32).contains(&width), "word width must be 1..=32");
        let idx = self.n_word_inputs;
        self.n_word_inputs += 1;
        let w = self
            .netlist
            .push(NodeKind::WordInput { index: idx }, vec![], Some(name));
        let bits = (0..width)
            .map(|b| {
                Wire(
                    self.netlist
                        .push(NodeKind::Unpack { bit: b as u32 }, vec![w], None),
                )
            })
            .collect();
        Word {
            bits,
            origin: Some(w),
        }
    }

    /// Declares a primary bit output driven by `w`.
    pub fn bit_output(&mut self, name: &str, w: Wire) {
        let idx = self.n_bit_outputs;
        self.n_bit_outputs += 1;
        self.netlist
            .push(NodeKind::BitOutput { index: idx }, vec![w.0], Some(name));
    }

    /// Declares a primary word output driven by `word` (zero-extended to 32
    /// bits); writing it costs one bus operation per activation.
    pub fn word_output(&mut self, name: &str, word: &Word) {
        let idx = self.n_word_outputs;
        self.n_word_outputs += 1;
        let src = self.as_word_node(word);
        self.netlist
            .push(NodeKind::WordOutput { index: idx }, vec![src], Some(name));
    }

    // ------------------------------------------------------------------
    // Constants
    // ------------------------------------------------------------------

    /// A constant bit (deduplicated).
    pub fn const_bit(&mut self, v: bool) -> Wire {
        let slot = if v {
            &mut self.const_true
        } else {
            &mut self.const_false
        };
        if let Some(w) = *slot {
            return w;
        }
        let w = Wire(self.netlist.push(NodeKind::ConstBit(v), vec![], None));
        *slot = Some(w);
        w
    }

    /// A constant word of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 32, or `value` does not fit.
    pub fn const_word(&mut self, value: u32, width: usize) -> Word {
        assert!((1..=32).contains(&width), "word width must be 1..=32");
        if width < 32 {
            assert!(
                value < (1u32 << width),
                "constant {value} does not fit in {width} bits"
            );
        }
        let bits = (0..width)
            .map(|i| self.const_bit((value >> i) & 1 == 1))
            .collect();
        Word::from_bits(bits)
    }

    // ------------------------------------------------------------------
    // Bit logic
    // ------------------------------------------------------------------

    /// Logical NOT.
    pub fn not(&mut self, a: Wire) -> Wire {
        self.lut(TruthTable::not1(), &[a])
    }

    /// Logical AND.
    pub fn and(&mut self, a: Wire, b: Wire) -> Wire {
        self.lut(TruthTable::and2(), &[a, b])
    }

    /// Logical OR.
    pub fn or(&mut self, a: Wire, b: Wire) -> Wire {
        self.lut(TruthTable::or2(), &[a, b])
    }

    /// Logical XOR.
    pub fn xor(&mut self, a: Wire, b: Wire) -> Wire {
        self.lut(TruthTable::xor2(), &[a, b])
    }

    /// Two-to-one multiplexer: returns `t` when `sel` is true, else `f`.
    pub fn mux(&mut self, sel: Wire, f: Wire, t: Wire) -> Wire {
        self.lut(TruthTable::mux3(), &[sel, f, t])
    }

    /// An arbitrary combinational function of `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `table.inputs() != inputs.len()`.
    pub fn lut(&mut self, table: TruthTable, inputs: &[Wire]) -> Wire {
        assert_eq!(
            table.inputs(),
            inputs.len(),
            "truth table arity does not match wire count"
        );
        let ins = inputs.iter().map(|w| w.0).collect();
        Wire(self.netlist.push(NodeKind::Lut(table), ins, None))
    }

    /// XOR-reduces a non-empty slice of wires.
    ///
    /// # Panics
    ///
    /// Panics if `wires` is empty.
    pub fn reduce_xor(&mut self, wires: &[Wire]) -> Wire {
        self.reduce(wires, |b, x, y| b.xor(x, y))
    }

    /// AND-reduces a non-empty slice of wires.
    ///
    /// # Panics
    ///
    /// Panics if `wires` is empty.
    pub fn reduce_and(&mut self, wires: &[Wire]) -> Wire {
        self.reduce(wires, |b, x, y| b.and(x, y))
    }

    /// OR-reduces a non-empty slice of wires.
    ///
    /// # Panics
    ///
    /// Panics if `wires` is empty.
    pub fn reduce_or(&mut self, wires: &[Wire]) -> Wire {
        self.reduce(wires, |b, x, y| b.or(x, y))
    }

    fn reduce(
        &mut self,
        wires: &[Wire],
        mut op: impl FnMut(&mut Self, Wire, Wire) -> Wire,
    ) -> Wire {
        assert!(!wires.is_empty(), "cannot reduce zero wires");
        // Balanced tree to minimize depth.
        let mut layer: Vec<Wire> = wires.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                next.push(if pair.len() == 2 {
                    op(self, pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    // ------------------------------------------------------------------
    // Word logic
    // ------------------------------------------------------------------

    /// Bitwise XOR of equal-width words.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn xor_words(&mut self, a: &Word, b: &Word) -> Word {
        self.zip_words(a, b, |s, x, y| s.xor(x, y))
    }

    /// Bitwise AND of equal-width words.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn and_words(&mut self, a: &Word, b: &Word) -> Word {
        self.zip_words(a, b, |s, x, y| s.and(x, y))
    }

    /// Bitwise OR of equal-width words.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn or_words(&mut self, a: &Word, b: &Word) -> Word {
        self.zip_words(a, b, |s, x, y| s.or(x, y))
    }

    /// Bitwise NOT of a word.
    pub fn not_word(&mut self, a: &Word) -> Word {
        let bits = a.bits.iter().map(|&w| self.not(w)).collect();
        Word::from_bits(bits)
    }

    /// Per-bit multiplexer over equal-width words: `t` when `sel`, else `f`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mux_word(&mut self, sel: Wire, f: &Word, t: &Word) -> Word {
        assert_eq!(f.width(), t.width(), "mux operand width mismatch");
        let bits = f
            .bits
            .iter()
            .zip(&t.bits)
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect();
        Word::from_bits(bits)
    }

    fn zip_words(
        &mut self,
        a: &Word,
        b: &Word,
        mut op: impl FnMut(&mut Self, Wire, Wire) -> Wire,
    ) -> Word {
        assert_eq!(a.width(), b.width(), "word width mismatch");
        let bits = a
            .bits
            .iter()
            .zip(&b.bits)
            .map(|(&x, &y)| op(self, x, y))
            .collect();
        Word::from_bits(bits)
    }

    // ------------------------------------------------------------------
    // Arithmetic (ripple carry, as an FPGA LUT fabric would realize it)
    // ------------------------------------------------------------------

    /// `a + b` modulo `2^width`, with the carry-out.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add_carry(&mut self, a: &Word, b: &Word) -> (Word, Wire) {
        assert_eq!(a.width(), b.width(), "adder width mismatch");
        let mut carry = self.const_bit(false);
        let mut bits = Vec::with_capacity(a.width());
        for (&x, &y) in a.bits.iter().zip(&b.bits) {
            // sum = x ^ y ^ c; carry = majority(x, y, c): both 3-input LUTs.
            let sum = self.lut(
                TruthTable::from_fn(3, |r| (r.count_ones() & 1) == 1).expect("3-input table"),
                &[x, y, carry],
            );
            carry = self.lut(
                TruthTable::from_fn(3, |r| r.count_ones() >= 2).expect("3-input table"),
                &[x, y, carry],
            );
            bits.push(sum);
        }
        (Word::from_bits(bits), carry)
    }

    /// `a + b` modulo `2^width`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn add(&mut self, a: &Word, b: &Word) -> Word {
        self.add_carry(a, b).0
    }

    /// `a - b` modulo `2^width`, plus a borrow-free flag (`a >= b`).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn sub_borrow(&mut self, a: &Word, b: &Word) -> (Word, Wire) {
        let nb = self.not_word(b);
        let one = self.const_word(1, a.width());
        let (nb1, c0) = self.add_carry(&nb, &one);
        let (diff, c1) = self.add_carry(a, &nb1);
        let no_borrow = self.or(c0, c1);
        (diff, no_borrow)
    }

    /// `a - b` modulo `2^width`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn sub(&mut self, a: &Word, b: &Word) -> Word {
        self.sub_borrow(a, b).0
    }

    /// `a + 1` modulo `2^width`.
    pub fn inc(&mut self, a: &Word) -> Word {
        let one = self.const_word(1, a.width());
        self.add(a, &one)
    }

    /// Equality comparison of equal-width words.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn eq_words(&mut self, a: &Word, b: &Word) -> Wire {
        assert_eq!(a.width(), b.width(), "comparator width mismatch");
        let diffs: Vec<Wire> = a
            .bits
            .iter()
            .zip(&b.bits)
            .map(|(&x, &y)| {
                self.lut(
                    TruthTable::from_fn(2, |r| (r.count_ones() & 1) == 0).expect("2-input table"),
                    &[x, y],
                )
            })
            .collect();
        self.reduce_and(&diffs)
    }

    /// Unsigned `a < b`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn lt_unsigned(&mut self, a: &Word, b: &Word) -> Wire {
        let (_, no_borrow) = self.sub_borrow(a, b);
        self.not(no_borrow) // borrow happened => a < b
    }

    /// Unsigned `a >= b`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn ge_unsigned(&mut self, a: &Word, b: &Word) -> Wire {
        let (_, no_borrow) = self.sub_borrow(a, b);
        no_borrow
    }

    /// Unsigned minimum and maximum of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn min_max_unsigned(&mut self, a: &Word, b: &Word) -> (Word, Word) {
        let a_lt_b = self.lt_unsigned(a, b);
        let min = self.mux_word(a_lt_b, b, a);
        let max = self.mux_word(a_lt_b, a, b);
        (min, max)
    }

    /// Logical left shift by a constant; width is preserved.
    pub fn shl_const(&mut self, a: &Word, k: usize) -> Word {
        let zero = self.const_bit(false);
        let w = a.width();
        let bits = (0..w)
            .map(|i| if i < k { zero } else { a.bits[i - k] })
            .collect();
        Word::from_bits(bits)
    }

    /// Logical right shift by a constant; width is preserved.
    pub fn shr_const(&mut self, a: &Word, k: usize) -> Word {
        let zero = self.const_bit(false);
        let w = a.width();
        let bits = (0..w)
            .map(|i| if i + k < w { a.bits[i + k] } else { zero })
            .collect();
        Word::from_bits(bits)
    }

    /// Rotate left by a constant.
    pub fn rotl_const(&mut self, a: &Word, k: usize) -> Word {
        let w = a.width();
        let bits = (0..w).map(|i| a.bits[(i + w - k % w) % w]).collect();
        Word::from_bits(bits)
    }

    /// Zero-extends (or truncates) a word to `width` bits.
    pub fn resize(&mut self, a: &Word, width: usize) -> Word {
        let zero = self.const_bit(false);
        let bits = (0..width)
            .map(|i| if i < a.width() { a.bits[i] } else { zero })
            .collect();
        Word::from_bits(bits)
    }

    /// Concatenates `lo` and `hi` (result = `hi:lo`).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 32 bits.
    pub fn concat(&mut self, lo: &Word, hi: &Word) -> Word {
        let mut bits = lo.bits.clone();
        bits.extend_from_slice(&hi.bits);
        Word::from_bits(bits)
    }

    // ------------------------------------------------------------------
    // Table lookups (ROMs realized as wide LUT nodes)
    // ------------------------------------------------------------------

    /// A ROM lookup: `table[index]` where `index` is formed from `in_bits`
    /// (LSB first) and each entry is `out_width` bits wide. Generates
    /// `out_width` wide truth-table nodes that technology mapping will
    /// decompose into K-LUT trees (this is how the AES S-box is realized).
    ///
    /// # Panics
    ///
    /// Panics if `in_bits` is empty or longer than 16, or if
    /// `table.len() != 2^in_bits.len()`, or `out_width` is 0 or exceeds 32.
    pub fn rom(&mut self, table: &[u32], in_bits: &[Wire], out_width: usize) -> Word {
        assert!(
            !in_bits.is_empty() && in_bits.len() <= 16,
            "rom index width must be 1..=16"
        );
        assert!(
            (1..=32).contains(&out_width),
            "rom entry width must be 1..=32"
        );
        assert_eq!(table.len(), 1usize << in_bits.len(), "rom size mismatch");
        let bits = (0..out_width)
            .map(|b| {
                let tt = TruthTable::from_fn(in_bits.len(), |row| (table[row] >> b) & 1 == 1)
                    .expect("rom index width was checked above");
                self.lut(tt, in_bits)
            })
            .collect();
        Word::from_bits(bits)
    }

    // ------------------------------------------------------------------
    // Sequential elements
    // ------------------------------------------------------------------

    /// Creates a flip-flop and returns its Q output plus a handle to connect
    /// the D input later (for feedback paths).
    pub fn ff(&mut self, init: bool) -> (Wire, FfHandle) {
        let node = NodeId(self.netlist.len() as u32);
        self.netlist.push(NodeKind::Ff { init }, vec![node], None); // self-loop placeholder
        self.pending_seq.push(node);
        (Wire(node), FfHandle { node })
    }

    /// Connects the D input of a flip-flop created by [`Self::ff`].
    pub fn connect_ff(&mut self, handle: FfHandle, d: Wire) {
        self.netlist
            .set_input(handle.node, 0, d.0)
            .expect("handle always refers to a valid flip-flop");
    }

    /// Creates a `width`-bit register (a bank of flip-flops at the bit level
    /// conceptually, realized as a word register node). Returns the Q value
    /// and a handle to connect the D value later.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 32.
    pub fn word_reg(&mut self, init: u32, width: usize) -> (Word, WordRegHandle) {
        assert!((1..=32).contains(&width), "register width must be 1..=32");
        let node = NodeId(self.netlist.len() as u32);
        self.netlist
            .push(NodeKind::WordReg { init }, vec![node], None);
        self.pending_seq.push(node);
        let bits = (0..width)
            .map(|b| {
                Wire(
                    self.netlist
                        .push(NodeKind::Unpack { bit: b as u32 }, vec![node], None),
                )
            })
            .collect();
        (
            Word {
                bits,
                origin: Some(node),
            },
            WordRegHandle { node },
        )
    }

    /// Connects the D value of a register created by [`Self::word_reg`].
    pub fn connect_word_reg(&mut self, handle: WordRegHandle, d: &Word) {
        let src = self.as_word_node(d);
        self.netlist
            .set_input(handle.node, 0, src)
            .expect("handle always refers to a valid register");
    }

    // ------------------------------------------------------------------
    // MAC
    // ------------------------------------------------------------------

    /// 32-bit multiply-accumulate on the cluster's dedicated unit:
    /// `a * b + acc` (wrapping). Operands narrower than 32 bits are
    /// zero-extended.
    pub fn mac(&mut self, a: &Word, b: &Word, acc: &Word) -> Word {
        let an = self.as_word_node(a);
        let bn = self.as_word_node(b);
        let cn = self.as_word_node(acc);
        let m = self.netlist.push(NodeKind::Mac, vec![an, bn, cn], None);
        let bits = (0..32)
            .map(|b| {
                Wire(
                    self.netlist
                        .push(NodeKind::Unpack { bit: b as u32 }, vec![m], None),
                )
            })
            .collect();
        Word {
            bits,
            origin: Some(m),
        }
    }

    /// `a * b` (wrapping) via the MAC with a zero accumulator.
    pub fn mul(&mut self, a: &Word, b: &Word) -> Word {
        let zero = self.const_word(0, 32);
        self.mac(a, b, &zero)
    }

    fn as_word_node(&mut self, w: &Word) -> NodeId {
        if let Some(origin) = w.origin {
            // Reuse the originating word node only when the bit view is the
            // untouched unpack of that node.
            let untouched = w.bits.iter().enumerate().all(|(i, wire)| {
                let n = &self.netlist.nodes()[wire.0.index()];
                matches!(n.kind, NodeKind::Unpack { bit } if bit as usize == i)
                    && n.inputs == [origin]
            });
            if untouched && w.width() == 32 {
                return origin;
            }
        }
        let ins = w.bits.iter().map(|w| w.0).collect();
        self.netlist.push(NodeKind::Pack, ins, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::graph::Value;

    fn eval_words(b: CircuitBuilder, inputs: &[u32]) -> Vec<u32> {
        let n = b.finish().expect("circuit should be valid");
        let mut ev = Evaluator::new(&n);
        let vals: Vec<Value> = inputs.iter().map(|&w| Value::Word(w)).collect();
        ev.run_cycle(&vals)
            .expect("evaluation should succeed")
            .into_iter()
            .map(|v| v.as_word().expect("word output"))
            .collect()
    }

    #[test]
    fn adder_is_correct() {
        for (x, y) in [(0u32, 0u32), (1, 1), (200, 57), (255, 255), (170, 85)] {
            let mut b = CircuitBuilder::new("add8");
            let a = b.word_input("a", 8);
            let c = b.word_input("b", 8);
            let s = b.add(&a, &c);
            b.word_output("s", &s);
            assert_eq!(eval_words(b, &[x, y])[0], (x + y) & 0xFF);
        }
    }

    #[test]
    fn subtractor_and_comparisons() {
        for (x, y) in [(5u32, 3u32), (3, 5), (0, 0), (255, 1), (1, 255)] {
            let mut b = CircuitBuilder::new("cmp8");
            let a = b.word_input("a", 8);
            let c = b.word_input("b", 8);
            let d = b.sub(&a, &c);
            let lt = b.lt_unsigned(&a, &c);
            let eq = b.eq_words(&a, &c);
            b.word_output("d", &d);
            let ltw = Word::from_bits(vec![lt]);
            let eqw = Word::from_bits(vec![eq]);
            b.word_output("lt", &ltw);
            b.word_output("eq", &eqw);
            let out = eval_words(b, &[x, y]);
            assert_eq!(out[0], x.wrapping_sub(y) & 0xFF, "diff {x}-{y}");
            assert_eq!(out[1], u32::from(x < y), "lt {x}<{y}");
            assert_eq!(out[2], u32::from(x == y), "eq {x}=={y}");
        }
    }

    #[test]
    fn min_max() {
        let mut b = CircuitBuilder::new("mm");
        let a = b.word_input("a", 16);
        let c = b.word_input("b", 16);
        let (mn, mx) = b.min_max_unsigned(&a, &c);
        b.word_output("min", &mn);
        b.word_output("max", &mx);
        let out = eval_words(b, &[700, 40]);
        assert_eq!(out, vec![40, 700]);
    }

    #[test]
    fn shifts_and_rotates() {
        let mut b = CircuitBuilder::new("sh");
        let a = b.word_input("a", 8);
        let l = b.shl_const(&a, 3);
        let r = b.shr_const(&a, 2);
        let ro = b.rotl_const(&a, 1);
        b.word_output("l", &l);
        b.word_output("r", &r);
        b.word_output("ro", &ro);
        let out = eval_words(b, &[0b1011_0110]);
        assert_eq!(out[0], 0b1011_0000);
        assert_eq!(out[1], 0b0010_1101);
        assert_eq!(out[2], 0b0110_1101);
    }

    #[test]
    fn rom_lookup() {
        let table: Vec<u32> = (0..16).map(|i| (i * 7 + 3) & 0xF).collect();
        let mut b = CircuitBuilder::new("rom");
        let a = b.word_input("a", 4);
        let v = b.rom(&table, a.bits(), 4);
        b.word_output("v", &v);
        for i in 0..16u32 {
            let mut b2 = CircuitBuilder::new("rom");
            let a2 = b2.word_input("a", 4);
            let v2 = b2.rom(&table, a2.bits(), 4);
            b2.word_output("v", &v2);
            assert_eq!(eval_words(b2, &[i])[0], table[i as usize]);
        }
        let _ = b; // first builder exercised construction once
    }

    #[test]
    fn mac_multiplies() {
        let mut b = CircuitBuilder::new("mac");
        let a = b.word_input("a", 32);
        let c = b.word_input("b", 32);
        let d = b.word_input("acc", 32);
        let m = b.mac(&a, &c, &d);
        b.word_output("m", &m);
        assert_eq!(eval_words(b, &[7, 9, 100])[0], 163);
    }

    #[test]
    fn unconnected_ff_is_an_error() {
        let mut b = CircuitBuilder::new("bad");
        let (q, _handle) = b.ff(false);
        b.bit_output("q", q);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn counter_counts() {
        // 4-bit counter: reg <- reg + 1 every cycle.
        let mut b = CircuitBuilder::new("ctr");
        let (q, h) = b.word_reg(0, 4);
        let next = b.inc(&q);
        b.connect_word_reg(h, &next);
        b.word_output("q", &q);
        let n = b.finish().unwrap();
        let mut ev = Evaluator::new(&n);
        let mut seen = Vec::new();
        for _ in 0..6 {
            let out = ev.run_cycle(&[]).unwrap();
            seen.push(out[0].as_word().unwrap());
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn word_io_reuses_origin_node() {
        let mut b = CircuitBuilder::new("thru");
        let a = b.word_input("a", 32);
        b.word_output("o", &a);
        let n = b.finish().unwrap();
        // No Pack node should exist: the output reads the input node directly.
        assert!(!n.nodes().iter().any(|nd| matches!(nd.kind, NodeKind::Pack)));
    }
}
