//! Resource statistics for a netlist.

use crate::graph::{Netlist, NodeKind};
use crate::level::level_graph;

/// Counts of schedulable resources in a netlist, as consumed by the folding
/// scheduler and the area model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Total LUT nodes.
    pub luts: usize,
    /// LUT count histogram by input width; index `i` counts LUTs with `i`
    /// inputs (index 0 is unused).
    pub luts_by_width: Vec<usize>,
    /// Bit flip-flops.
    pub ffs: usize,
    /// 32-bit word registers.
    pub word_regs: usize,
    /// Multiply-accumulate nodes.
    pub macs: usize,
    /// Primary word inputs (operand fetches = bus reads).
    pub word_inputs: usize,
    /// Primary word outputs (result stores = bus writes).
    pub word_outputs: usize,
    /// Primary bit inputs (pre-latched parameters).
    pub bit_inputs: usize,
    /// Primary bit outputs.
    pub bit_outputs: usize,
    /// Pack/unpack plumbing nodes (free wiring in hardware).
    pub plumbing: usize,
    /// Constant nodes.
    pub constants: usize,
    /// Combinational depth in levels (0 for an empty netlist).
    pub depth: u32,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational cycle (construct via
    /// the builder to rule this out).
    pub fn of(netlist: &Netlist) -> Self {
        let mut s = NetlistStats {
            luts_by_width: vec![0; 17],
            ..NetlistStats::default()
        };
        for node in netlist.nodes() {
            match &node.kind {
                NodeKind::Lut(t) => {
                    s.luts += 1;
                    s.luts_by_width[t.inputs()] += 1;
                }
                NodeKind::Ff { .. } => s.ffs += 1,
                NodeKind::WordReg { .. } => s.word_regs += 1,
                NodeKind::Mac => s.macs += 1,
                NodeKind::WordInput { .. } => s.word_inputs += 1,
                NodeKind::WordOutput { .. } => s.word_outputs += 1,
                NodeKind::BitInput { .. } => s.bit_inputs += 1,
                NodeKind::BitOutput { .. } => s.bit_outputs += 1,
                NodeKind::Pack | NodeKind::Unpack { .. } => s.plumbing += 1,
                NodeKind::ConstBit(_) | NodeKind::ConstWord(_) => s.constants += 1,
            }
        }
        s.depth = level_graph(netlist)
            .expect("netlist must be acyclic")
            .depth();
        s
    }

    /// Total flip-flop *bits* (bit FFs plus 32 bits per word register).
    pub fn ff_bits(&self) -> usize {
        self.ffs + 32 * self.word_regs
    }

    /// Bus operations per activation (word inputs plus word outputs).
    pub fn bus_ops(&self) -> usize {
        self.word_inputs + self.word_outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn counts_are_accurate() {
        let mut b = CircuitBuilder::new("t");
        let a = b.word_input("a", 8);
        let c = b.word_input("b", 8);
        let s = b.add(&a, &c);
        let z = b.const_word(0, 32);
        let a32 = b.resize(&a, 32);
        let c32 = b.resize(&c, 32);
        let m = b.mac(&a32, &c32, &z);
        b.word_output("s", &s);
        b.word_output("m", &m);
        let n = b.finish().unwrap();
        let st = NetlistStats::of(&n);
        assert_eq!(st.word_inputs, 2);
        assert_eq!(st.word_outputs, 2);
        assert_eq!(st.macs, 1);
        // Ripple adder: 8 sum + 8 carry LUTs.
        assert_eq!(st.luts, 16);
        assert_eq!(st.bus_ops(), 4);
        assert!(st.depth > 2);
    }

    #[test]
    fn ff_bits_combines_bit_and_word_state() {
        let mut b = CircuitBuilder::new("t");
        let (q, h) = b.ff(false);
        let nq = b.not(q);
        b.connect_ff(h, nq);
        let (r, rh) = b.word_reg(0, 16);
        let ri = b.inc(&r);
        b.connect_word_reg(rh, &ri);
        b.bit_output("q", q);
        b.word_output("r", &r);
        let n = b.finish().unwrap();
        let st = NetlistStats::of(&n);
        assert_eq!(st.ffs, 1);
        assert_eq!(st.word_regs, 1);
        assert_eq!(st.ff_bits(), 33);
    }
}
