//! A minimal self-timed bench harness (std-only, no registry access).
//!
//! The workspace builds hermetically, so Criterion is replaced by this
//! small fixed-iteration timer: each bench target regenerates its paper
//! artefact, then reports mean wall-clock per iteration for its hot spot.
//! Benches stay `harness = false` binaries, runnable with
//! `cargo bench -p bench` or individually via `cargo bench --bench fig12`.
//!
//! Next to each printed line the harness drops a machine-readable
//! `BENCH_<name>.json` (mean/min ns per iteration, iteration count, git
//! revision) into [`bench_output_dir`] so CI can archive trajectories and
//! regressions diff against committed baselines. Two environment knobs:
//!
//! * `FREAC_BENCH_DIR` — where the JSON files land (default
//!   `target/bench-json`);
//! * `FREAC_BENCH_SMOKE` — when set (non-empty, not `0`), clamps every
//!   bench to one timed iteration: CI proves the benches run without
//!   paying for statistically meaningful timings.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// The measured outcome of one [`bench_function`] call.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench name as printed.
    pub name: String,
    /// Timed iterations actually run (after any smoke clamp).
    pub iters: u32,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest single iteration in nanoseconds.
    pub min_ns: f64,
    /// Whether smoke mode clamped the iteration count.
    pub smoke: bool,
}

/// Whether `FREAC_BENCH_SMOKE` requests one-iteration smoke runs.
pub fn smoke_mode() -> bool {
    std::env::var("FREAC_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Directory receiving `BENCH_<name>.json` files (`FREAC_BENCH_DIR`,
/// default `target/bench-json`).
pub fn bench_output_dir() -> PathBuf {
    std::env::var_os("FREAC_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/bench-json"))
}

/// Times `f` for `iters` iterations after one warm-up call, prints a
/// mean per-iteration line (`name ... 12.345 ms/iter (10 iters)`), and
/// writes `BENCH_<name>.json` into [`bench_output_dir`]. Returns the
/// measurement so callers can derive speedups.
pub fn bench_function<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) -> BenchResult {
    black_box(f()); // warm-up (also primes the process-wide mapping cache)
    let smoke = smoke_mode();
    let iters = if smoke { 1 } else { iters.max(1) };
    let mut total_ns = 0u128;
    let mut min_ns = u128::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        let ns = start.elapsed().as_nanos();
        total_ns += ns;
        min_ns = min_ns.min(ns);
    }
    let mean_ns = total_ns as f64 / f64::from(iters);
    let result = BenchResult {
        name: name.to_owned(),
        iters,
        mean_ns,
        min_ns: min_ns as f64,
        smoke,
    };
    println!(
        "{name} ... {} ({iters} iters)",
        fmt_duration(std::time::Duration::from_nanos(mean_ns as u64))
    );
    result.emit_json();
    result
}

impl BenchResult {
    /// How many times faster this measurement is than `other`, by mean.
    pub fn speedup_over(&self, other: &BenchResult) -> f64 {
        other.mean_ns / self.mean_ns.max(f64::MIN_POSITIVE)
    }

    fn emit_json(&self) {
        let dir = bench_output_dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return; // benches must not fail on a read-only checkout
        }
        let path = dir.join(format!("BENCH_{}.json", sanitize(&self.name)));
        let body = format!(
            "{{\n  \"name\": \"{}\",\n  \"iters\": {},\n  \"mean_ns_per_iter\": {:.1},\n  \"min_ns_per_iter\": {:.1},\n  \"git_rev\": \"{}\",\n  \"smoke\": {}\n}}\n",
            self.name,
            self.iters,
            self.mean_ns,
            self.min_ns,
            git_rev(),
            self.smoke
        );
        let _ = std::fs::write(path, body);
    }
}

/// Writes an arbitrary named JSON document (pre-rendered body) into the
/// bench output directory as `BENCH_<name>.json` — used by bench targets
/// that record derived quantities such as speedup ratios.
pub fn write_bench_json(name: &str, body: &str) {
    let dir = bench_output_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let _ = std::fs::write(dir.join(format!("BENCH_{}.json", sanitize(name))), body);
}

/// The current git revision (short), or `"unknown"` outside a checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn fmt_duration(d: std::time::Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s/iter", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms/iter", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us/iter", ns as f64 / 1e3)
    } else {
        format!("{ns} ns/iter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let dir = std::env::temp_dir().join(format!("freac-bench-{}", std::process::id()));
        std::env::set_var("FREAC_BENCH_DIR", &dir);
        let mut calls = 0u32;
        let r = bench_function("smoke test", 3, || {
            calls += 1;
            calls
        });
        std::env::remove_var("FREAC_BENCH_DIR");
        if r.smoke {
            assert_eq!(calls, 2, "one warm-up plus one smoke iteration");
        } else {
            assert_eq!(calls, 4, "one warm-up plus three timed iterations");
            assert_eq!(r.iters, 3);
        }
        assert!(r.mean_ns >= 0.0 && r.min_ns <= r.mean_ns * 1.001);
        let json = std::fs::read_to_string(dir.join("BENCH_smoke_test.json")).unwrap();
        assert!(json.contains("\"name\": \"smoke test\""));
        assert!(json.contains("mean_ns_per_iter"));
        assert!(json.contains("min_ns_per_iter"));
        assert!(json.contains("git_rev"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn speedup_is_ratio_of_means() {
        let fast = BenchResult {
            name: "fast".into(),
            iters: 1,
            mean_ns: 10.0,
            min_ns: 10.0,
            smoke: false,
        };
        let slow = BenchResult {
            name: "slow".into(),
            iters: 1,
            mean_ns: 40.0,
            min_ns: 40.0,
            smoke: false,
        };
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn durations_format_by_magnitude() {
        use std::time::Duration;
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns/iter"));
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("us/iter"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms/iter"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s/iter"));
    }

    #[test]
    fn names_sanitize_to_filenames() {
        assert_eq!(sanitize("fold/aes compiled"), "fold_aes_compiled");
    }
}
