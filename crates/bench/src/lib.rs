//! A minimal self-timed bench harness (std-only, no registry access).
//!
//! The workspace builds hermetically, so Criterion is replaced by this
//! small fixed-iteration timer: each bench target regenerates its paper
//! artefact, then reports mean wall-clock per iteration for its hot spot.
//! Benches stay `harness = false` binaries, runnable with
//! `cargo bench -p bench` or individually via `cargo bench --bench fig12`.

use std::hint::black_box;
use std::time::Instant;

/// Times `f` for `iters` iterations after one warm-up call and prints a
/// mean per-iteration line compatible with quick eyeballing:
/// `name ... 12.345 ms/iter (10 iters)`.
pub fn bench_function<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    black_box(f()); // warm-up (also primes the process-wide mapping cache)
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let total = start.elapsed();
    let per = total / iters;
    println!("{name} ... {} ({iters} iters)", fmt_duration(per));
}

fn fmt_duration(d: std::time::Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s/iter", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms/iter", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us/iter", ns as f64 / 1e3)
    } else {
        format!("{ns} ns/iter")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut calls = 0u32;
        bench_function("smoke", 3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 4, "one warm-up plus three timed iterations");
    }

    #[test]
    fn durations_format_by_magnitude() {
        use std::time::Duration;
        assert!(fmt_duration(Duration::from_nanos(12)).ends_with("ns/iter"));
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("us/iter"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms/iter"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s/iter"));
    }
}
