//! Criterion benches for the FReaC Cache paper reproduction; see the `benches/` directory.
