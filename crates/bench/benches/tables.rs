//! Regenerates Tables I and II and times their model evaluation.

fn main() {
    println!("{}", freac_experiments::tables::table1());
    println!("{}", freac_experiments::tables::table2());
    bench::bench_function("tables/render", 100, || {
        let t1 = freac_experiments::tables::table1();
        let t2 = freac_experiments::tables::table2();
        (t1.len(), t2.len())
    });
}
