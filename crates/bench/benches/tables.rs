//! Regenerates Tables I and II and times their model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", freac_experiments::tables::table1());
    println!("{}", freac_experiments::tables::table2());
    c.bench_function("tables/render", |b| {
        b.iter(|| {
            let t1 = freac_experiments::tables::table1();
            let t2 = freac_experiments::tables::table2();
            (t1.len(), t2.len())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
