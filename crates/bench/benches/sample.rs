//! Sampled-simulation and parallel-stepping benches.
//!
//! Replays one pinned phase-structured million-request trace (a ramp
//! window that pays the cold-slice setups, then phases cycling arrival
//! gaps and kernel mixes) through three arms and records:
//!
//! * `BENCH_sample_speedup.json` — wall clock of the full-fidelity replay
//!   vs the representative-interval sampled run on the same trace, plus
//!   the speedup. The sampled run must be at least 10x faster (override
//!   the floor with `FREAC_BENCH_MIN_SAMPLE_SPEEDUP`) or the bench
//!   aborts;
//! * `BENCH_sample_accuracy.json` — the extrapolated p50/p95/p99 with
//!   their declared bounds next to the full run's values. Simulated time
//!   only, so the document is byte-deterministic and CI diffs it against
//!   the committed baseline;
//! * `BENCH_cluster_parallel.json` — wall clock of the cluster epoch loop
//!   stepping 4 shards with 1 worker vs 4 workers, on a four-kernel
//!   variant of the trace that loads all four affinity home shards
//!   evenly (two kernels would idle half the cluster and cap the
//!   theoretical speedup at the busiest shard's share). The reports must
//!   be byte-identical; on hosts with at least 4 hardware threads the
//!   4-worker run must also be at least 2x faster (floor override:
//!   `FREAC_BENCH_MIN_PARALLEL_SPEEDUP`) or the bench aborts — on
//!   smaller hosts the wall gate is reported but not enforced, since
//!   threads that time-slice one core can only lose.
//!
//! Wall-clock numbers vary by host, so only the accuracy document is
//! baseline-diffed; the speedup gates run inside this binary.

use std::fmt::Write as _;
use std::time::Instant;

use freac_netlist::builder::CircuitBuilder;
use freac_netlist::Netlist;
use freac_serve::{
    Cluster, ClusterConfig, ClusterReport, Request, RequestProfile, RoutePolicy, SampleConfig,
    SampledServer, ServeConfig, StealConfig,
};

/// Requests in the sampled-vs-full trace. The ISSUE-level gate is "the
/// million-request trace in seconds"; smoke mode keeps the full arm.
const SPEEDUP_REQUESTS: u64 = 1_000_000;
/// Requests in the parallel-stepping arms: long enough that per-epoch
/// shard pumping dominates thread bookkeeping.
const PARALLEL_REQUESTS: u64 = 400_000;

fn adder() -> Netlist {
    let mut b = CircuitBuilder::new("add");
    let a = b.word_input("a", 8);
    let x = b.word_input("x", 8);
    let s = b.add(&a, &x);
    b.word_output("s", &s);
    b.finish().expect("adder builds")
}

fn masker() -> Netlist {
    let mut b = CircuitBuilder::new("mask");
    let a = b.word_input("a", 8);
    let x = b.word_input("x", 8);
    let m = b.and_words(&a, &x);
    b.word_output("m", &m);
    b.finish().expect("masker builds")
}

fn xorer() -> Netlist {
    let mut b = CircuitBuilder::new("xor");
    let a = b.word_input("a", 8);
    let x = b.word_input("x", 8);
    let y = b.xor_words(&a, &x);
    b.word_output("y", &y);
    b.finish().expect("xorer builds")
}

fn subber() -> Netlist {
    let mut b = CircuitBuilder::new("sub");
    let a = b.word_input("a", 8);
    let x = b.word_input("x", 8);
    let d = b.sub(&a, &x);
    b.word_output("d", &d);
    b.finish().expect("subber builds")
}

fn add_profile() -> RequestProfile {
    RequestProfile {
        cycles_per_item: 2,
        read_words: 4,
        write_words: 2,
    }
}

fn mask_profile() -> RequestProfile {
    RequestProfile {
        cycles_per_item: 1,
        read_words: 2,
        write_words: 1,
    }
}

/// The phase-structured smoke trace: one gently spaced ramp window pays
/// the cold-slice configurations, then phases of 16384 requests cycle
/// arrival gaps and kernel mixes (the regime interval sampling
/// compresses).
fn ramp_trace(n: u64) -> Vec<Request> {
    const RAMP: u64 = 1_024;
    const PHASE: u64 = 16_384;
    const GAPS: [u64; 3] = [400, 1_000, 200];
    let mut arrival = 0u64;
    (0..n)
        .map(|i| {
            let (gap, mask_mod) = if i < RAMP {
                (25_000, 3)
            } else {
                let phase = (i - RAMP) / PHASE;
                (GAPS[(phase % 3) as usize], 2 + phase % 2)
            };
            arrival += gap;
            let tenant = format!("t{}", i % 4);
            let kernel = if i % mask_mod == 0 { "mask" } else { "add" };
            Request::new(&tenant, i / 4, kernel, arrival, i)
        })
        .collect()
}

fn cluster_config(workers: usize) -> ClusterConfig {
    ClusterConfig {
        shards: 4,
        route: RoutePolicy::KernelAffinity { spill_depth: 64 },
        steal: Some(StealConfig::default()),
        shard: ServeConfig {
            queue_depth: 512,
            ..ServeConfig::default()
        },
        workers,
        ..ClusterConfig::default()
    }
}

fn full_cluster(workers: usize, four_kernels: bool) -> Cluster {
    let mut c = Cluster::new(cluster_config(workers)).expect("config is valid");
    c.register_kernel("add", &adder(), add_profile())
        .expect("adder maps");
    c.register_kernel("mask", &masker(), mask_profile())
        .expect("masker maps");
    if four_kernels {
        c.register_kernel("xor", &xorer(), mask_profile())
            .expect("xorer maps");
        c.register_kernel("sub", &subber(), add_profile())
            .expect("subber maps");
    }
    for t in 0..4 {
        c.add_tenant(&format!("t{t}"), 1 + t % 2)
            .expect("unique tenant");
    }
    c
}

/// A four-kernel balanced trace for the parallel-stepping arms: after the
/// ramp, requests cycle all four kernels so every affinity home shard
/// carries a quarter of the load.
fn parallel_trace(n: u64) -> Vec<Request> {
    const RAMP: u64 = 1_024;
    const KERNELS: [&str; 4] = ["add", "mask", "xor", "sub"];
    let mut arrival = 0u64;
    (0..n)
        .map(|i| {
            arrival += if i < RAMP { 25_000 } else { 250 };
            let tenant = format!("t{}", i % 4);
            Request::new(&tenant, i / 4, KERNELS[(i % 4) as usize], arrival, i)
        })
        .collect()
}

fn sampler() -> SampledServer {
    let mut s = SampledServer::new(
        cluster_config(1),
        SampleConfig {
            window: 1024,
            max_clusters: 12,
            warmup: 512,
            workers: 4,
            ..SampleConfig::default()
        },
    )
    .expect("config is valid");
    s.register_kernel("add", &adder(), add_profile())
        .expect("adder maps");
    s.register_kernel("mask", &masker(), mask_profile())
        .expect("masker maps");
    for t in 0..4 {
        s.add_tenant(&format!("t{t}"), 1 + t % 2)
            .expect("unique tenant");
    }
    s
}

fn run_full(workers: usize, four_kernels: bool, trace: &[Request]) -> (ClusterReport, f64) {
    let mut cluster = full_cluster(workers, four_kernels);
    for r in trace.iter().cloned() {
        cluster.submit(r).expect("trace request");
    }
    let start = Instant::now();
    let report = cluster.run_to_completion().expect("cluster drains");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

fn gate_floor(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    // Arm 1: full fidelity vs sampled on the million-request trace.
    let trace = ramp_trace(SPEEDUP_REQUESTS);
    let (full, full_ms) = run_full(1, false, &trace);
    let h = full
        .probes
        .histogram("serve.latency_ps")
        .expect("latencies recorded");
    let s = sampler();
    let start = Instant::now();
    let sampled = s.run(&trace).expect("sampling drains");
    let sampled_ms = start.elapsed().as_secs_f64() * 1e3;
    let speedup = full_ms / sampled_ms.max(f64::MIN_POSITIVE);
    let floor = gate_floor("FREAC_BENCH_MIN_SAMPLE_SPEEDUP", 10.0);
    assert!(
        speedup >= floor,
        "sampled run must be at least {floor}x faster than full fidelity: \
         {full_ms:.0} ms vs {sampled_ms:.0} ms ({speedup:.1}x)"
    );

    let mut sp = String::from("{\n");
    let _ = writeln!(
        sp,
        "  \"full\": {{ \"requests\": {}, \"completed\": {}, \"shed\": {}, \"wall_ms\": {:.1} }},",
        trace.len(),
        full.completions.len(),
        full.sheds.len(),
        full_ms
    );
    let _ = writeln!(
        sp,
        "  \"sampled\": {{ \"simulated_requests\": {}, \"windows_simulated\": {}, \"wall_ms\": {:.1} }},",
        sampled.simulated_requests, sampled.simulated_windows, sampled_ms
    );
    let _ = writeln!(sp, "  \"sampled_over_full\": {speedup:.1}");
    sp.push('}');
    bench::write_bench_json("sample_speedup", &sp);
    println!(
        "sample speedup: {speedup:.1}x ({full_ms:.0} ms full vs {sampled_ms:.0} ms sampled, \
         {} of {} requests simulated)",
        sampled.simulated_requests,
        trace.len()
    );

    // Deterministic accuracy document: extrapolated quantiles + bounds vs
    // the full run, simulated time only (CI byte-diffs this).
    let mut acc = String::from("{\n");
    for (i, (name, est, actual)) in [
        ("p50", sampled.p50_ps, h.quantile(0.5).expect("non-empty")),
        ("p95", sampled.p95_ps, h.quantile(0.95).expect("non-empty")),
        ("p99", sampled.p99_ps, h.quantile(0.99).expect("non-empty")),
    ]
    .into_iter()
    .enumerate()
    {
        assert!(
            est.covers(actual),
            "{name}: full-fidelity {actual} outside sampled bound {} +- {}",
            est.value,
            est.bound
        );
        let _ = writeln!(
            acc,
            "  \"{name}\": {{ \"sampled_ps\": {:.1}, \"bound_ps\": {:.1}, \"full_ps\": {:.1}, \"rel_err\": {:.4} }},",
            est.value,
            est.bound,
            actual,
            (actual - est.value).abs() / actual.max(f64::MIN_POSITIVE)
        );
        if i == 2 {
            let _ = writeln!(
                acc,
                "  \"est_completed\": {}, \"est_shed\": {}, \"full_completed\": {}",
                sampled.est_completed,
                sampled.est_shed,
                full.completions.len()
            );
        }
    }
    acc.push('}');
    bench::write_bench_json("sample_accuracy", &acc);
    println!(
        "sample accuracy: p50 {:.0} +- {:.0} ps (full {:.0}), p99 {:.0} +- {:.0} ps (full {:.0})",
        sampled.p50_ps.value,
        sampled.p50_ps.bound,
        h.quantile(0.5).expect("non-empty"),
        sampled.p99_ps.value,
        sampled.p99_ps.bound,
        h.quantile(0.99).expect("non-empty"),
    );

    // Arm 2: parallel shard stepping, 1 worker vs 4 on 4 shards. Byte
    // identity first, then the wall-clock gate.
    let ptrace = parallel_trace(PARALLEL_REQUESTS);
    let (seq, seq_ms) = run_full(1, true, &ptrace);
    let (par, par_ms) = run_full(4, true, &ptrace);
    assert_eq!(
        freac_probe::to_counters_json(&seq.probes),
        freac_probe::to_counters_json(&par.probes),
        "worker count must not change the probe registry"
    );
    assert_eq!(
        seq.completions, par.completions,
        "worker count must not change the completion stream"
    );
    let pspeed = seq_ms / par_ms.max(f64::MIN_POSITIVE);
    let pfloor = gate_floor("FREAC_BENCH_MIN_PARALLEL_SPEEDUP", 2.0);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if cores >= 4 {
        assert!(
            pspeed >= pfloor,
            "4-worker stepping must be at least {pfloor}x faster: \
             {seq_ms:.0} ms vs {par_ms:.0} ms ({pspeed:.1}x)"
        );
    } else {
        println!(
            "cluster parallel stepping: wall gate skipped ({cores} hardware threads < 4); \
             measured {pspeed:.1}x"
        );
    }
    let mut par_json = String::from("{\n");
    let _ = writeln!(
        par_json,
        "  \"workers1\": {{ \"requests\": {}, \"completed\": {}, \"wall_ms\": {:.1} }},",
        ptrace.len(),
        seq.completions.len(),
        seq_ms
    );
    let _ = writeln!(
        par_json,
        "  \"workers4\": {{ \"requests\": {}, \"completed\": {}, \"wall_ms\": {:.1} }},",
        ptrace.len(),
        par.completions.len(),
        par_ms
    );
    let _ = writeln!(par_json, "  \"reports_identical\": true,");
    let _ = writeln!(par_json, "  \"workers4_over_workers1\": {pspeed:.1}");
    par_json.push('}');
    bench::write_bench_json("cluster_parallel", &par_json);
    println!(
        "cluster parallel stepping: {pspeed:.1}x ({seq_ms:.0} ms at 1 worker vs {par_ms:.0} ms at 4)"
    );
}
