//! Serving-path benchmark: batched coalescing vs single-lane dispatch.
//!
//! Replays one pinned four-tenant AES/GEMM open-loop trace through three
//! servers that differ only in coalescing (single-lane, 64-lane batched,
//! and 256-lane wide-batched), then records:
//!
//! * `BENCH_serve_throughput.json` — completions, simulated span,
//!   request throughput, and the batched/wide-batched speedups over
//!   single-lane dispatch;
//! * `BENCH_serve_p99.json` — per-tenant p50/p95/p99/mean latency under
//!   the batched configuration;
//! * `BENCH_cluster_throughput.json` — the same trace through a 1-shard
//!   cluster baseline and a 4-shard cluster with kernel-affinity routing,
//!   work stealing, and elastic autoscaling enabled, plus the speedup;
//! * `BENCH_cluster_p99.json` — merged cluster-wide p50/p95/p99 per arm.
//!
//! Unlike the wall-clock benches, everything here is simulated time, so
//! both documents are bit-deterministic (no `git_rev`, no host timing) and
//! CI diffs them against the committed baselines in
//! `tests/baselines/bench/`. The batched arm must beat the single-lane arm
//! on the mixed workload — the bench aborts otherwise rather than record a
//! regression as data.

use std::fmt::Write as _;
use std::sync::Arc;

use freac_core::{Accelerator, AcceleratorTile, HandoffMode, SlicePartition};
use freac_kernels::{kernel, KernelId};
use freac_serve::{
    open_loop_trace, AutoscaleConfig, Cluster, ClusterConfig, ClusterReport, RoutePolicy,
    SchedPolicy, ServeConfig, ServeReport, Server, StealConfig, TenantSpec,
};

const TRACE_SEED: u64 = 0x5e1e_c7ed_7e57_0001;
const REQUESTS_PER_TENANT: u64 = 48;

fn specs() -> Vec<TenantSpec> {
    let mut alpha = TenantSpec::new("alpha", "aes", REQUESTS_PER_TENANT);
    alpha.weight = 4;
    alpha.mean_gap_ps = 2_000;
    let mut beta = TenantSpec::new("beta", "gemm", REQUESTS_PER_TENANT);
    beta.weight = 2;
    beta.mean_gap_ps = 3_000;
    let mut gamma = TenantSpec::new("gamma", "aes", REQUESTS_PER_TENANT);
    gamma.mix = vec![("aes".to_owned(), 1), ("gemm".to_owned(), 1)];
    gamma.mean_gap_ps = 2_500;
    let mut delta = TenantSpec::new("delta", "gemm", REQUESTS_PER_TENANT);
    delta.mix = vec![("aes".to_owned(), 2), ("gemm".to_owned(), 1)];
    delta.mean_gap_ps = 4_000;
    vec![alpha, beta, gamma, delta]
}

fn run_arm(
    batching: bool,
    max_lanes: usize,
    accels: &[(KernelId, Arc<Accelerator>)],
    specs: &[TenantSpec],
) -> ServeReport {
    let mut server = Server::new(ServeConfig {
        batching,
        max_lanes,
        // One slice, deep queues: the pinned trace backs up instead of
        // shedding, and the two kernels contend for one fabric, so every
        // extra dispatch is an extra reconfiguration swap. That isolates
        // what lane width buys (amortized reconfig + scheduling) from
        // slice-level parallelism, which a wider batch cannot add.
        slices: 1,
        queue_depth: 512,
        policy: SchedPolicy::WeightedFair,
        ..ServeConfig::default()
    })
    .expect("config is valid");
    for (id, accel) in accels {
        let w = kernel(*id).workload(1);
        server
            .register_accelerator(
                &id.name().to_lowercase(),
                Arc::clone(accel),
                freac_serve::RequestProfile {
                    cycles_per_item: w.cycles_per_item,
                    read_words: w.read_words_per_item,
                    write_words: w.write_words_per_item,
                },
            )
            .expect("kernel registers");
    }
    for s in specs {
        server.add_tenant(&s.name, s.weight).expect("unique tenant");
    }
    for req in open_loop_trace(specs, TRACE_SEED, 1) {
        server.submit(req).expect("trace request");
    }
    server.run_to_completion().expect("serving drains")
}

/// The mixed-tenant trace under one way-handoff mode: same single-slice
/// contended setup as [`run_arm`], plus one way conversion
/// (end-to-end → max-compute) before the trace lands, so the arm pays
/// every flavor of handoff stall — conversion, first-claim flush, and
/// drain-time reclaim. Returns the report and the conversion quote.
fn run_handoff_arm(
    handoff: HandoffMode,
    accels: &[(KernelId, Arc<Accelerator>)],
    specs: &[TenantSpec],
) -> (ServeReport, u64) {
    let mut server = Server::new(ServeConfig {
        handoff,
        slices: 1,
        queue_depth: 512,
        policy: SchedPolicy::WeightedFair,
        ..ServeConfig::default()
    })
    .expect("config is valid");
    for (id, accel) in accels {
        let w = kernel(*id).workload(1);
        server
            .register_accelerator(
                &id.name().to_lowercase(),
                Arc::clone(accel),
                freac_serve::RequestProfile {
                    cycles_per_item: w.cycles_per_item,
                    read_words: w.read_words_per_item,
                    write_words: w.write_words_per_item,
                },
            )
            .expect("kernel registers");
    }
    for s in specs {
        server.add_tenant(&s.name, s.weight).expect("unique tenant");
    }
    let conversion = server
        .rescale(SlicePartition::max_compute(), 0)
        .expect("rescale is valid");
    for req in open_loop_trace(specs, TRACE_SEED, 1) {
        server.submit(req).expect("trace request");
    }
    (
        server.run_to_completion().expect("serving drains"),
        conversion,
    )
}

/// The cluster workload: four kernels with traffic skewed toward AES
/// (deep home-shard queues reward stealing), one-in-eight exclusive
/// requests (single-lane dispatches batching cannot collapse), and a
/// cache-heavy starting partition (elastic headroom for autoscaling).
fn cluster_specs() -> Vec<TenantSpec> {
    let mut alpha = TenantSpec::new("alpha", "aes", 2 * REQUESTS_PER_TENANT * 2);
    alpha.weight = 4;
    alpha.mean_gap_ps = 1_000;
    let mut beta = TenantSpec::new("beta", "gemm", REQUESTS_PER_TENANT * 2);
    beta.weight = 2;
    beta.mean_gap_ps = 3_000;
    let mut gamma = TenantSpec::new("gamma", "aes", REQUESTS_PER_TENANT * 2);
    gamma.mix = vec![("aes".to_owned(), 2), ("kmp".to_owned(), 1)];
    gamma.mean_gap_ps = 2_000;
    let mut delta = TenantSpec::new("delta", "dot", REQUESTS_PER_TENANT * 2);
    delta.mix = vec![("dot".to_owned(), 2), ("gemm".to_owned(), 1)];
    delta.mean_gap_ps = 3_000;
    let mut out = vec![alpha, beta, gamma, delta];
    for s in &mut out {
        s.exclusive_permille = 125;
    }
    out
}

/// The skewed workload through a cluster: 1 shard is the baseline,
/// 4 shards run the full feature set (affinity routing, work stealing,
/// elastic way autoscaling).
fn run_cluster_arm(
    shards: usize,
    accels: &[(KernelId, Arc<Accelerator>)],
    specs: &[TenantSpec],
) -> ClusterReport {
    let mut cluster = Cluster::new(ClusterConfig {
        shards,
        route: RoutePolicy::KernelAffinity { spill_depth: 64 },
        steal: (shards > 1).then(StealConfig::default),
        // Sustained-backlog thresholds: stolen work arrives in transient
        // spikes that must not trigger way conversions on every thief.
        autoscale: (shards > 1).then(|| AutoscaleConfig {
            high_backlog: 96,
            up_epochs: 8,
            down_epochs: 64,
            ..AutoscaleConfig::default()
        }),
        epoch_ps: 10_000,
        shard: ServeConfig {
            partition: freac_core::SlicePartition::new(4, 10, 6).expect("valid split"),
            slices: 1,
            queue_depth: 1024,
            policy: SchedPolicy::WeightedFair,
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    })
    .expect("config is valid");
    for (id, accel) in accels {
        let w = kernel(*id).workload(1);
        cluster
            .register_accelerator(
                &id.name().to_lowercase(),
                Arc::clone(accel),
                freac_serve::RequestProfile {
                    cycles_per_item: w.cycles_per_item,
                    read_words: w.read_words_per_item,
                    write_words: w.write_words_per_item,
                },
            )
            .expect("kernel registers");
    }
    for s in specs {
        cluster
            .add_tenant(&s.name, s.weight)
            .expect("unique tenant");
    }
    for req in open_loop_trace(specs, TRACE_SEED, 1) {
        cluster.submit(req).expect("trace request");
    }
    cluster.run_to_completion().expect("cluster drains")
}

/// Merged cluster-wide latency quantile, ps.
fn cluster_quantile(r: &ClusterReport, q: f64) -> f64 {
    r.probes
        .histogram("serve.latency_ps")
        .expect("latencies recorded")
        .quantile(q)
        .expect("non-empty histogram")
}

fn main() {
    // One shared mapping per kernel — both arms serve identical logic.
    let tile = AcceleratorTile::new(1).expect("unit tile");
    let accels: Vec<(KernelId, Arc<Accelerator>)> =
        [KernelId::Aes, KernelId::Gemm, KernelId::Kmp, KernelId::Dot]
            .into_iter()
            .map(|id| {
                let circuit = kernel(id).circuit();
                (
                    id,
                    Accelerator::map_shared(&circuit, &tile).expect("kernel maps"),
                )
            })
            .collect();
    let specs = specs();

    // The single-server arms keep their original two-kernel registration
    // so the committed serve baselines stay byte-stable.
    let batched = run_arm(true, 64, &accels[..2], &specs);
    let wide = run_arm(true, 256, &accels[..2], &specs);
    let single = run_arm(false, 64, &accels[..2], &specs);

    assert_eq!(
        batched.completions.len(),
        single.completions.len(),
        "both arms must complete the same request set"
    );
    assert!(
        batched.span_ps < single.span_ps,
        "batched span {} must beat single-lane span {}",
        batched.span_ps,
        single.span_ps
    );
    // The 4-word coalescer must never schedule worse than one-word
    // batching: a wider dispatch amortizes at least as much
    // reconfiguration per request.
    assert!(
        wide.span_ps <= batched.span_ps,
        "wide-batched span {} must not lose to 64-lane span {}",
        wide.span_ps,
        batched.span_ps
    );

    let speedup = single.span_ps as f64 / batched.span_ps as f64;
    let wide_speedup = single.span_ps as f64 / wide.span_ps as f64;
    let mut throughput = String::from("{\n");
    for (label, r) in [
        ("batched", &batched),
        ("batched_w4", &wide),
        ("single_lane", &single),
    ] {
        let _ = writeln!(
            throughput,
            "  \"{label}\": {{ \"completed\": {}, \"shed\": {}, \"dispatches\": {}, \"span_ps\": {}, \"throughput_rps\": {:.1} }},",
            r.completions.len(),
            r.sheds.len(),
            r.dispatches.len(),
            r.span_ps,
            r.throughput_rps()
        );
    }
    let _ = writeln!(throughput, "  \"batched_over_single_lane\": {speedup:.2},");
    let _ = writeln!(
        throughput,
        "  \"batched_w4_over_single_lane\": {wide_speedup:.2}"
    );
    throughput.push('}');
    bench::write_bench_json("serve_throughput", &throughput);
    println!(
        "serve throughput: batched {speedup:.2}x, wide-batched {wide_speedup:.2}x over single-lane"
    );

    let mut p99 = String::from("{\n");
    let last = batched.tenants.len() - 1;
    for (i, t) in batched.tenants.iter().enumerate() {
        let _ = writeln!(
            p99,
            "  \"{}\": {{ \"completed\": {}, \"p50_ps\": {:.0}, \"p95_ps\": {:.0}, \"p99_ps\": {:.0}, \"mean_ps\": {:.0} }}{}",
            t.name,
            t.completed,
            t.p50_ps,
            t.p95_ps,
            t.p99_ps,
            t.mean_ps,
            if i == last { "" } else { "," }
        );
    }
    p99.push('}');
    bench::write_bench_json("serve_p99", &p99);
    for t in &batched.tenants {
        println!(
            "serve p99 {}: {:.0} ps over {} completions",
            t.name, t.p99_ps, t.completed
        );
    }

    // Coherence arm: the same mixed-tenant trace under both way-handoff
    // modes. The coherent protocol must shed strictly less flush-stall
    // time (conversion + reconfiguration + drain reclaim) than the
    // conservative blind flush, with identical functional results — the
    // bench aborts rather than record a regression as data.
    let (flat, flat_conv) = run_handoff_arm(HandoffMode::ConservativeFlush, &accels[..2], &specs);
    let (coh, coh_conv) = run_handoff_arm(HandoffMode::coherent(), &accels[..2], &specs);
    assert_eq!(
        flat.completions.len(),
        coh.completions.len(),
        "both handoff arms must complete the same request set"
    );
    let hashes = |r: &ServeReport| -> Vec<(String, u64, u64)> {
        let mut h: Vec<_> = r
            .completions
            .iter()
            .map(|c| (c.tenant.clone(), c.seq, c.output_hash))
            .collect();
        h.sort();
        h
    };
    assert_eq!(
        hashes(&flat),
        hashes(&coh),
        "handoff mode must be invisible to functional results"
    );
    let stall = |r: &ServeReport, conversion: u64| -> u64 {
        conversion + r.probes.counter("serve.reconfig.total_ps") + r.teardown_ps
    };
    let (flat_stall, coh_stall) = (stall(&flat, flat_conv), stall(&coh, coh_conv));
    assert!(
        coh_stall < flat_stall,
        "coherent flush stall {coh_stall} ps must beat conservative {flat_stall} ps"
    );

    let saving = 1.0 - coh_stall as f64 / flat_stall as f64;
    let mut cohj = String::from("{\n");
    for (label, r, conv, st) in [
        ("conservative", &flat, flat_conv, flat_stall),
        ("coherent", &coh, coh_conv, coh_stall),
    ] {
        let _ = writeln!(
            cohj,
            "  \"{label}\": {{ \"completed\": {}, \"span_ps\": {}, \"conversion_ps\": {conv}, \"reconfig_total_ps\": {}, \"teardown_ps\": {}, \"flush_stall_ps\": {st} }},",
            r.completions.len(),
            r.span_ps,
            r.probes.counter("serve.reconfig.total_ps"),
            r.teardown_ps,
        );
    }
    let _ = writeln!(
        cohj,
        "  \"coherent_traffic\": {{ \"invalidations\": {}, \"writeback_pulls\": {}, \"claims\": {} }},",
        coh.probes.counter("cache.coh.invalidations"),
        coh.probes.counter("cache.coh.writeback_pulls"),
        coh.probes.counter("cache.coh.claims"),
    );
    let _ = writeln!(cohj, "  \"coherent_stall_saving\": {saving:.2}");
    cohj.push('}');
    bench::write_bench_json("serve_coherence", &cohj);
    println!("serve coherence: {saving:.2} of flush stall saved ({coh_stall} vs {flat_stall} ps)");

    // Cluster arm: 1-shard baseline vs 4 shards with affinity routing,
    // stealing, and autoscaling. The scaled-out cluster must win on both
    // throughput and tail latency or the bench aborts.
    let cspecs = cluster_specs();
    let shard1 = run_cluster_arm(1, &accels, &cspecs);
    let shard4 = run_cluster_arm(4, &accels, &cspecs);
    assert_eq!(
        shard1.completions.len(),
        shard4.completions.len(),
        "both cluster arms must complete the same request set"
    );
    assert!(
        shard4.throughput_rps() > shard1.throughput_rps(),
        "4-shard throughput {:.1} must beat 1-shard {:.1}",
        shard4.throughput_rps(),
        shard1.throughput_rps()
    );
    let (p99_1, p99_4) = (
        cluster_quantile(&shard1, 0.99),
        cluster_quantile(&shard4, 0.99),
    );
    assert!(
        p99_4 < p99_1,
        "4-shard p99 {p99_4:.0} ps must beat 1-shard {p99_1:.0} ps"
    );

    let cluster_speedup = shard1.span_ps as f64 / shard4.span_ps as f64;
    let mut cth = String::from("{\n");
    for (label, r) in [("shard1", &shard1), ("shard4", &shard4)] {
        let _ = writeln!(
            cth,
            "  \"{label}\": {{ \"completed\": {}, \"shed\": {}, \"steals\": {}, \"span_ps\": {}, \"throughput_rps\": {:.1} }},",
            r.completions.len(),
            r.sheds.len(),
            r.steals,
            r.span_ps,
            r.throughput_rps()
        );
    }
    let _ = writeln!(cth, "  \"shard4_over_shard1\": {cluster_speedup:.2}");
    cth.push('}');
    bench::write_bench_json("cluster_throughput", &cth);
    println!(
        "cluster throughput: 4-shard {cluster_speedup:.2}x over 1-shard ({:.1} vs {:.1} req/s)",
        shard4.throughput_rps(),
        shard1.throughput_rps()
    );

    let mut cp99 = String::from("{\n");
    for (i, (label, r)) in [("shard1", &shard1), ("shard4", &shard4)]
        .iter()
        .enumerate()
    {
        let _ = writeln!(
            cp99,
            "  \"{label}\": {{ \"p50_ps\": {:.0}, \"p95_ps\": {:.0}, \"p99_ps\": {:.0} }}{}",
            cluster_quantile(r, 0.5),
            cluster_quantile(r, 0.95),
            cluster_quantile(r, 0.99),
            if i == 1 { "" } else { "," }
        );
    }
    cp99.push('}');
    bench::write_bench_json("cluster_p99", &cp99);
    println!("cluster p99: 1-shard {p99_1:.0} ps, 4-shard {p99_4:.0} ps");
}
