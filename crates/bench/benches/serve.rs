//! Serving-path benchmark: batched coalescing vs single-lane dispatch.
//!
//! Replays one pinned four-tenant AES/GEMM open-loop trace through three
//! servers that differ only in coalescing (single-lane, 64-lane batched,
//! and 256-lane wide-batched), then records:
//!
//! * `BENCH_serve_throughput.json` — completions, simulated span,
//!   request throughput, and the batched/wide-batched speedups over
//!   single-lane dispatch;
//! * `BENCH_serve_p99.json` — per-tenant p50/p95/p99/mean latency under
//!   the batched configuration.
//!
//! Unlike the wall-clock benches, everything here is simulated time, so
//! both documents are bit-deterministic (no `git_rev`, no host timing) and
//! CI diffs them against the committed baselines in
//! `tests/baselines/bench/`. The batched arm must beat the single-lane arm
//! on the mixed workload — the bench aborts otherwise rather than record a
//! regression as data.

use std::fmt::Write as _;
use std::sync::Arc;

use freac_core::{Accelerator, AcceleratorTile};
use freac_kernels::{kernel, KernelId};
use freac_serve::{open_loop_trace, SchedPolicy, ServeConfig, ServeReport, Server, TenantSpec};

const TRACE_SEED: u64 = 0x5e1e_c7ed_7e57_0001;
const REQUESTS_PER_TENANT: u64 = 48;

fn specs() -> Vec<TenantSpec> {
    let mut alpha = TenantSpec::new("alpha", "aes", REQUESTS_PER_TENANT);
    alpha.weight = 4;
    alpha.mean_gap_ps = 2_000;
    let mut beta = TenantSpec::new("beta", "gemm", REQUESTS_PER_TENANT);
    beta.weight = 2;
    beta.mean_gap_ps = 3_000;
    let mut gamma = TenantSpec::new("gamma", "aes", REQUESTS_PER_TENANT);
    gamma.mix = vec![("aes".to_owned(), 1), ("gemm".to_owned(), 1)];
    gamma.mean_gap_ps = 2_500;
    let mut delta = TenantSpec::new("delta", "gemm", REQUESTS_PER_TENANT);
    delta.mix = vec![("aes".to_owned(), 2), ("gemm".to_owned(), 1)];
    delta.mean_gap_ps = 4_000;
    vec![alpha, beta, gamma, delta]
}

fn run_arm(
    batching: bool,
    max_lanes: usize,
    accels: &[(KernelId, Arc<Accelerator>)],
    specs: &[TenantSpec],
) -> ServeReport {
    let mut server = Server::new(ServeConfig {
        batching,
        max_lanes,
        // One slice, deep queues: the pinned trace backs up instead of
        // shedding, and the two kernels contend for one fabric, so every
        // extra dispatch is an extra reconfiguration swap. That isolates
        // what lane width buys (amortized reconfig + scheduling) from
        // slice-level parallelism, which a wider batch cannot add.
        slices: 1,
        queue_depth: 512,
        policy: SchedPolicy::WeightedFair,
        ..ServeConfig::default()
    })
    .expect("config is valid");
    for (id, accel) in accels {
        let w = kernel(*id).workload(1);
        server
            .register_accelerator(
                &id.name().to_lowercase(),
                Arc::clone(accel),
                freac_serve::RequestProfile {
                    cycles_per_item: w.cycles_per_item,
                    read_words: w.read_words_per_item,
                    write_words: w.write_words_per_item,
                },
            )
            .expect("kernel registers");
    }
    for s in specs {
        server.add_tenant(&s.name, s.weight).expect("unique tenant");
    }
    for req in open_loop_trace(specs, TRACE_SEED, 1) {
        server.submit(req).expect("trace request");
    }
    server.run_to_completion().expect("serving drains")
}

fn main() {
    // One shared mapping per kernel — both arms serve identical logic.
    let tile = AcceleratorTile::new(1).expect("unit tile");
    let accels: Vec<(KernelId, Arc<Accelerator>)> = [KernelId::Aes, KernelId::Gemm]
        .into_iter()
        .map(|id| {
            let circuit = kernel(id).circuit();
            (
                id,
                Accelerator::map_shared(&circuit, &tile).expect("kernel maps"),
            )
        })
        .collect();
    let specs = specs();

    let batched = run_arm(true, 64, &accels, &specs);
    let wide = run_arm(true, 256, &accels, &specs);
    let single = run_arm(false, 64, &accels, &specs);

    assert_eq!(
        batched.completions.len(),
        single.completions.len(),
        "both arms must complete the same request set"
    );
    assert!(
        batched.span_ps < single.span_ps,
        "batched span {} must beat single-lane span {}",
        batched.span_ps,
        single.span_ps
    );
    // The 4-word coalescer must never schedule worse than one-word
    // batching: a wider dispatch amortizes at least as much
    // reconfiguration per request.
    assert!(
        wide.span_ps <= batched.span_ps,
        "wide-batched span {} must not lose to 64-lane span {}",
        wide.span_ps,
        batched.span_ps
    );

    let speedup = single.span_ps as f64 / batched.span_ps as f64;
    let wide_speedup = single.span_ps as f64 / wide.span_ps as f64;
    let mut throughput = String::from("{\n");
    for (label, r) in [
        ("batched", &batched),
        ("batched_w4", &wide),
        ("single_lane", &single),
    ] {
        let _ = writeln!(
            throughput,
            "  \"{label}\": {{ \"completed\": {}, \"shed\": {}, \"dispatches\": {}, \"span_ps\": {}, \"throughput_rps\": {:.1} }},",
            r.completions.len(),
            r.sheds.len(),
            r.dispatches.len(),
            r.span_ps,
            r.throughput_rps()
        );
    }
    let _ = writeln!(throughput, "  \"batched_over_single_lane\": {speedup:.2},");
    let _ = writeln!(
        throughput,
        "  \"batched_w4_over_single_lane\": {wide_speedup:.2}"
    );
    throughput.push('}');
    bench::write_bench_json("serve_throughput", &throughput);
    println!(
        "serve throughput: batched {speedup:.2}x, wide-batched {wide_speedup:.2}x over single-lane"
    );

    let mut p99 = String::from("{\n");
    let last = batched.tenants.len() - 1;
    for (i, t) in batched.tenants.iter().enumerate() {
        let _ = writeln!(
            p99,
            "  \"{}\": {{ \"completed\": {}, \"p50_ps\": {:.0}, \"p95_ps\": {:.0}, \"p99_ps\": {:.0}, \"mean_ps\": {:.0} }}{}",
            t.name,
            t.completed,
            t.p50_ps,
            t.p95_ps,
            t.p99_ps,
            t.mean_ps,
            if i == last { "" } else { "," }
        );
    }
    p99.push('}');
    bench::write_bench_json("serve_p99", &p99);
    for t in &batched.tenants {
        println!(
            "serve p99 {}: {:.0} ps over {} completions",
            t.name, t.p99_ps, t.completed
        );
    }
}
