//! Regenerates the Sec. V-A area-overhead accounting (3.5 % / 15.3 %).

fn main() {
    println!("{}", freac_experiments::area::area_report());
    bench::bench_function(
        "area/overhead-report",
        100,
        freac_power::mcc::slice_overhead_report,
    );
}
