//! Regenerates the Sec. V-A area-overhead accounting (3.5 % / 15.3 %).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", freac_experiments::area::area_report());
    c.bench_function("area/overhead-report", |b| {
        b.iter(freac_power::mcc::slice_overhead_report)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
