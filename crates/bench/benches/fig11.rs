//! Fig. 11: speedup vs MCC:memory ratio (single slice).

use criterion::{criterion_group, criterion_main, Criterion};
use freac_core::SlicePartition;
use freac_kernels::KernelId;

fn bench(c: &mut Criterion) {
    println!("{}", freac_experiments::fig11::run().table());
    c.bench_function("fig11/best-run-stn2", |b| {
        b.iter(|| {
            freac_experiments::runner::best_freac_run(
                KernelId::Stn2,
                SlicePartition::balanced(),
                1,
            )
            .expect("stn2 runs under the balanced split")
            .tile_mccs
        })
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10); targets = bench);
criterion_main!(benches);
