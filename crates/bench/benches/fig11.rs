//! Fig. 11: speedup vs MCC:memory ratio (single slice).

use freac_core::SlicePartition;
use freac_kernels::KernelId;

fn main() {
    println!("{}", freac_experiments::fig11::run().table());
    bench::bench_function("fig11/best-run-stn2", 10, || {
        freac_experiments::runner::best_freac_run(KernelId::Stn2, SlicePartition::balanced(), 1)
            .expect("stn2 runs under the balanced split")
            .tile_mccs
    });
}
