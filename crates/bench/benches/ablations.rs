//! Ablations of the design choices (LUT mode, large-tile clock, LUT
//! packing, fold-scheduling policy, LLC inclusion).

use criterion::{criterion_group, criterion_main, Criterion};
use freac_experiments::ablations;

fn bench(c: &mut Criterion) {
    println!("{}", ablations::lut_mode().table());
    println!("{}", ablations::clock_penalty().table());
    println!("{}", ablations::packing().table());
    println!("{}", ablations::scheduler_policy().table());
    println!("{}", ablations::inclusion().table());
    c.bench_function("ablations/scheduler-policy", |b| {
        b.iter(|| ablations::scheduler_policy().rows.len())
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10); targets = bench);
criterion_main!(benches);
