//! Ablations of the design choices (LUT mode, large-tile clock, netlist
//! optimization, LUT packing, fold-scheduling policy, LLC inclusion).

use freac_experiments::ablations;

fn main() {
    println!("{}", ablations::lut_mode().table());
    println!("{}", ablations::clock_penalty().table());
    println!("{}", ablations::netlist_opt().table());
    println!("{}", ablations::packing().table());
    println!("{}", ablations::scheduler_policy().table());
    println!("{}", ablations::inclusion().table());
    bench::bench_function("ablations/scheduler-policy", 10, || {
        ablations::scheduler_policy().rows.len()
    });
}
