//! Interpreted-vs-compiled execution microbenchmarks.
//!
//! For the AES S-box pipeline and the GEMM tile kernel this target times
//! four hot loops and records the two headline ratios the compiled-plan
//! work is accountable to:
//!
//! * folded single-cycle: step-interpreting `FoldedExecutor` vs the
//!   pre-lowered `FoldPlanExecutor` micro-op stream;
//! * per-vector netlist throughput: the reference `Evaluator` one vector
//!   at a time vs the bit-sliced `run_batch_cycle` at every sweep width
//!   (64, 256, and 512 lanes — the `w4`/`w8` multi-word arms).
//!
//! Each arm is checked for output equality before any timing, so a
//! divergence fails the bench instead of producing a fast wrong number.
//! Results land as `BENCH_*.json` (see the `bench` crate docs); a final
//! `BENCH_exec_speedups.json` records the derived ratios.

use bench::BenchResult;
use freac_fold::{compile_fold, schedule_fold, FoldConstraints, FoldedExecutor, LutMode};
use freac_kernels::KernelId;
use freac_netlist::eval::Evaluator;
use freac_netlist::techmap::{tech_map, TechMapOptions};
use freac_netlist::{compile, Netlist, NodeKind, Value, BATCH_LANES, MAX_BATCH_LANES};

/// One deterministic input vector per primary input, respecting kinds.
fn inputs_for(netlist: &Netlist, seed: u32) -> Vec<Value> {
    netlist
        .primary_inputs()
        .iter()
        .enumerate()
        .map(|(i, &id)| match netlist.nodes()[id.index()].kind {
            NodeKind::BitInput { .. } => Value::Bit((seed >> (i % 32)) & 1 == 1),
            _ => Value::Word(
                seed.wrapping_mul(0x9e37_79b9)
                    .wrapping_add(i as u32 * 0x85eb),
            ),
        })
        .collect()
}

struct KernelSpeedups {
    label: &'static str,
    fold: f64,
    batch: f64,
    /// Per-vector speedup of the 256-lane (4-word) sweep over the evaluator.
    batch_w4: f64,
    /// Per-vector speedup of the 512-lane (8-word) sweep over the evaluator.
    batch_w8: f64,
}

fn bench_kernel(id: KernelId, label: &'static str) -> KernelSpeedups {
    let circuit = freac_kernels::kernel(id).circuit();
    let mapped = tech_map(&circuit, TechMapOptions::lut4()).expect("kernel maps to 4-LUTs");
    let cons = FoldConstraints::for_tile(2, LutMode::Lut4);
    let schedule = schedule_fold(&mapped, &cons).expect("kernel schedules");
    let fold_plan = compile_fold(&mapped, &schedule).expect("kernel fold-compiles");
    let inputs = inputs_for(&mapped, 0xc0ff_ee01);

    // Correctness gate: compiled fold must match the step interpreter
    // before we time anything.
    {
        let mut interp = FoldedExecutor::new(&mapped, &schedule);
        let mut compiled = fold_plan.executor();
        let mut out = Vec::new();
        for cycle in 0..3 {
            let expect = interp.run_cycle(&inputs).expect("interpreted cycle");
            compiled
                .run_cycle_into(&inputs, &mut out)
                .expect("compiled cycle");
            assert_eq!(
                out, expect,
                "{label}: compiled fold diverged at cycle {cycle}"
            );
        }
    }

    let mut interp = FoldedExecutor::new(&mapped, &schedule);
    let interp_fold = bench::bench_function(&format!("fold/{label}/interpreted"), 200, || {
        interp.run_cycle(&inputs).expect("interpreted fold cycle")
    });
    let mut compiled = fold_plan.executor();
    let mut compiled_out = Vec::new();
    let compiled_fold = bench::bench_function(&format!("fold/{label}/compiled"), 200, || {
        compiled
            .run_cycle_into(&inputs, &mut compiled_out)
            .expect("compiled fold cycle");
        compiled_out.len()
    });

    // Batch arm runs on the mapped netlist's plan: 64 distinct lanes,
    // each an independent simulation. Reference evaluators check lane
    // outputs before timing starts.
    let plan = compile(&mapped).expect("kernel netlist compiles");
    let lanes: Vec<Vec<Value>> = (0..BATCH_LANES as u32)
        .map(|l| inputs_for(&mapped, 0xc0ff_ee01 ^ (l * 0x0101_0101)))
        .collect();
    {
        let mut state = plan.new_batch_state();
        let mut out = Vec::new();
        let mut refs: Vec<Evaluator> = lanes.iter().map(|_| Evaluator::new(&mapped)).collect();
        for pass in 0..2 {
            plan.run_batch_cycle(&mut state, &lanes, &mut out)
                .expect("batch cycle");
            for (l, reference) in refs.iter_mut().enumerate() {
                let expect = reference.run_cycle(&lanes[l]).expect("reference cycle");
                assert_eq!(
                    out[l], expect,
                    "{label}: batch lane {l} diverged at pass {pass}"
                );
            }
        }
    }

    let mut reference = Evaluator::new(&mapped);
    let mut single_out = Vec::new();
    let evaluator = bench::bench_function(
        &format!("netlist/{label}/evaluator 64 vectors"),
        100,
        || {
            for lane in &lanes {
                reference
                    .run_cycle_into(lane, &mut single_out)
                    .expect("evaluator cycle");
            }
            single_out.len()
        },
    );
    let mut batch_state = plan.new_batch_state();
    let mut batch_out = Vec::new();
    let batch = bench::bench_function(&format!("netlist/{label}/batch 64 vectors"), 100, || {
        plan.run_batch_cycle(&mut batch_state, &lanes, &mut batch_out)
            .expect("batch cycle");
        batch_out.len()
    });

    // Multi-word arms: the same workload at 256 and 512 lanes. Each arm
    // is gated on reference equality of every lane before timing, and
    // must beat the 64-lane sweep per vector (the whole point of the
    // wider state planes) outside smoke mode.
    let wide = |words: usize| -> BenchResult {
        let width = words * BATCH_LANES;
        let wide_lanes: Vec<Vec<Value>> = (0..width as u32)
            .map(|l| inputs_for(&mapped, 0xc0ff_ee01 ^ l.wrapping_mul(0x0101_0101)))
            .collect();
        {
            let mut state = plan.new_batch_state_for(width);
            let mut out = Vec::new();
            let mut refs: Vec<Evaluator> =
                wide_lanes.iter().map(|_| Evaluator::new(&mapped)).collect();
            plan.run_batch_cycle_any(&mut state, &wide_lanes, &mut out)
                .expect("wide batch cycle");
            for (l, reference) in refs.iter_mut().enumerate() {
                let expect = reference
                    .run_cycle(&wide_lanes[l])
                    .expect("reference cycle");
                assert_eq!(out[l], expect, "{label}: w{words} lane {l} diverged");
            }
        }
        let mut state = plan.new_batch_state_for(width);
        let mut out = Vec::new();
        bench::bench_function(&format!("netlist/{label}/batch w{words}"), 100, || {
            plan.run_batch_cycle_any(&mut state, &wide_lanes, &mut out)
                .expect("wide batch cycle");
            out.len()
        })
    };
    let batch_w4 = wide(4);
    let batch_w8 = wide(MAX_BATCH_LANES / BATCH_LANES);
    if !bench::smoke_mode() {
        for (r, width) in [(&batch_w4, 4 * BATCH_LANES), (&batch_w8, MAX_BATCH_LANES)] {
            let per_vec = r.mean_ns / width as f64;
            let narrow_per_vec = batch.mean_ns / BATCH_LANES as f64;
            assert!(
                per_vec < narrow_per_vec,
                "{label}: {width} lanes ran {per_vec:.1} ns/vector, \
                 not faster than the 64-lane sweep's {narrow_per_vec:.1}"
            );
        }
    }

    let per_vec_speedup = |wide: &BenchResult, width: usize| {
        (evaluator.mean_ns / BATCH_LANES as f64) / (wide.mean_ns / width as f64)
    };
    let speedups = KernelSpeedups {
        label,
        fold: compiled_fold.speedup_over(&interp_fold),
        batch: batch.speedup_over(&evaluator),
        batch_w4: per_vec_speedup(&batch_w4, 4 * BATCH_LANES),
        batch_w8: per_vec_speedup(&batch_w8, MAX_BATCH_LANES),
    };
    report(
        label,
        &interp_fold,
        &compiled_fold,
        &evaluator,
        &batch,
        &speedups,
    );
    speedups
}

fn report(
    label: &str,
    interp_fold: &BenchResult,
    compiled_fold: &BenchResult,
    evaluator: &BenchResult,
    batch: &BenchResult,
    s: &KernelSpeedups,
) {
    println!(
        "{label}: compiled fold {:.1} ns vs interpreted {:.1} ns -> {:.2}x; \
         batch {:.1} ns/vector vs evaluator {:.1} ns/vector -> {:.2}x per vector \
         (w4 {:.2}x, w8 {:.2}x)",
        compiled_fold.mean_ns,
        interp_fold.mean_ns,
        s.fold,
        batch.mean_ns / BATCH_LANES as f64,
        evaluator.mean_ns / BATCH_LANES as f64,
        s.batch,
        s.batch_w4,
        s.batch_w8
    );
}

fn main() {
    let results = [
        bench_kernel(KernelId::Aes, "aes"),
        bench_kernel(KernelId::Gemm, "gemm"),
    ];
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"git_rev\": \"{}\",\n", bench::git_rev()));
    body.push_str(&format!("  \"smoke\": {},\n", bench::smoke_mode()));
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "  \"{}\": {{ \"fold_compiled_vs_interpreted\": {:.2}, \"batch_per_vector_vs_evaluator\": {:.2}, \"batch_w4_per_vector_vs_evaluator\": {:.2}, \"batch_w8_per_vector_vs_evaluator\": {:.2} }}{}\n",
            r.label,
            r.fold,
            r.batch,
            r.batch_w4,
            r.batch_w8,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    body.push_str("}\n");
    bench::write_bench_json("exec_speedups", &body);
}
