//! Fig. 8: folding cycles vs accelerator tile size.

use freac_kernels::KernelId;

fn main() {
    println!("{}", freac_experiments::fig08::run().table());
    // Time the heaviest map-and-fold (AES onto one cluster).
    bench::bench_function("fig08/map-aes-tile1", 10, || {
        freac_experiments::runner::map_kernel(KernelId::Aes, 1)
            .expect("aes maps onto one cluster")
            .fold_cycles()
    });
}
