//! Fig. 8: folding cycles vs accelerator tile size.

use criterion::{criterion_group, criterion_main, Criterion};
use freac_kernels::KernelId;

fn bench(c: &mut Criterion) {
    println!("{}", freac_experiments::fig08::run().table());
    // Time the heaviest map-and-fold (AES onto one cluster).
    c.bench_function("fig08/map-aes-tile1", |b| {
        b.iter(|| {
            freac_experiments::runner::map_kernel(KernelId::Aes, 1)
                .expect("aes maps onto one cluster")
                .fold_cycles()
        })
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10); targets = bench);
criterion_main!(benches);
