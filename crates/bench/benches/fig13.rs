//! Fig. 13: end-to-end vs kernel-only speedup.

fn main() {
    println!("{}", freac_experiments::fig13::run().table());
    bench::bench_function("fig13/full", 10, || {
        freac_experiments::fig13::run().rows.len()
    });
}
