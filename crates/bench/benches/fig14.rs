//! Fig. 14: embedded cores in the LLC vs FReaC Cache.

fn main() {
    let fig = freac_experiments::fig14::run();
    println!("{}", fig.table());
    let (vs8, vs16) = fig.geomean_advantage();
    println!("geomeans: {vs8:.2}x vs 8 ECs, {vs16:.2}x vs 16 ECs (paper: ~4x / ~2x)\n");
    bench::bench_function("fig14/full", 10, || {
        freac_experiments::fig14::run().rows.len()
    });
}
