//! Fig. 14: embedded cores in the LLC vs FReaC Cache.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let fig = freac_experiments::fig14::run();
    println!("{}", fig.table());
    let (vs8, vs16) = fig.geomean_advantage();
    println!("geomeans: {vs8:.2}x vs 8 ECs, {vs16:.2}x vs 16 ECs (paper: ~4x / ~2x)\n");
    c.bench_function("fig14/full", |b| {
        b.iter(|| freac_experiments::fig14::run().rows.len())
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10); targets = bench);
criterion_main!(benches);
