//! Fig. 12: end-to-end speedup, power, and perf/W vs slice count with CPU
//! and FPGA baselines — the paper's headline comparison.

use freac_core::SlicePartition;
use freac_kernels::KernelId;

fn main() {
    let fig = freac_experiments::fig12::run();
    println!("{}", fig.speedup_table());
    println!("{}", fig.power_table());
    println!("{}", fig.perf_per_watt_table());
    let (vs1, vs8, ppw) = fig.geomeans();
    println!(
        "geomeans: {vs1:.2}x vs 1T, {vs8:.2}x vs 8T, {ppw:.2}x perf/W (paper: 8.2x / 3x / 6.1x)\n"
    );
    bench::bench_function("fig12/freac-8slices-dot", 10, || {
        freac_experiments::runner::best_freac_run(KernelId::Dot, SlicePartition::end_to_end(), 8)
            .expect("dot runs on 8 slices")
            .run
            .kernel_time_ps
    });
}
