//! Fig. 9: max accelerator tiles vs compute:memory split.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", freac_experiments::fig09::run().table());
    c.bench_function("fig09/full-sweep", |b| {
        b.iter(|| freac_experiments::fig09::run().rows.len())
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10); targets = bench);
criterion_main!(benches);
