//! Fig. 9: max accelerator tiles vs compute:memory split.

fn main() {
    println!("{}", freac_experiments::fig09::run().table());
    bench::bench_function("fig09/full-sweep", 10, || {
        freac_experiments::fig09::run().rows.len()
    });
}
