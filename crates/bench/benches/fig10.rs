//! Fig. 10: speedup vs accelerator tile size (single slice).

use criterion::{criterion_group, criterion_main, Criterion};
use freac_core::SlicePartition;
use freac_kernels::KernelId;

fn bench(c: &mut Criterion) {
    println!("{}", freac_experiments::fig10::run().table());
    c.bench_function("fig10/gemm-tile8", |b| {
        b.iter(|| {
            freac_experiments::runner::freac_run_at(
                KernelId::Gemm,
                8,
                SlicePartition::max_compute(),
                1,
            )
            .expect("gemm runs at tile 8")
            .kernel_cycles
        })
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10); targets = bench);
criterion_main!(benches);
