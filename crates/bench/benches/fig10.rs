//! Fig. 10: speedup vs accelerator tile size (single slice).

use freac_core::SlicePartition;
use freac_kernels::KernelId;

fn main() {
    println!("{}", freac_experiments::fig10::run().table());
    bench::bench_function("fig10/gemm-tile8", 10, || {
        freac_experiments::runner::freac_run_at(KernelId::Gemm, 8, SlicePartition::max_compute(), 1)
            .expect("gemm runs at tile 8")
            .kernel_cycles
    });
}
