//! Fig. 15: cache-interference study.

fn main() {
    println!("{}", freac_experiments::fig15::run().table());
    bench::bench_function("fig15/full", 10, || {
        freac_experiments::fig15::run().rows.len()
    });
}
