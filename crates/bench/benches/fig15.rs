//! Fig. 15: cache-interference study.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", freac_experiments::fig15::run().table());
    c.bench_function("fig15/full", |b| {
        b.iter(|| freac_experiments::fig15::run().rows.len())
    });
}

criterion_group!(name = benches; config = Criterion::default().sample_size(10); targets = bench);
criterion_main!(benches);
