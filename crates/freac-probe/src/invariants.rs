//! Conservation-law cross-checks over a [`CounterRegistry`].
//!
//! Every check keys off the counter-naming scheme (DESIGN.md §8) and
//! fires only when the counters involved are present, so the same
//! [`check`] runs against a single `run_kernel` registry, a merged
//! harness registry, or a component export. All laws are preserved by
//! [`CounterRegistry::merge`] (both sides are sums, or the relation is
//! `<=`), except the explicitly per-run products, which are guarded by
//! `core.runs == 1`.
//!
//! The laws:
//!
//! * `<p>.hits + <p>.misses == <p>.accesses` for every prefix with an
//!   `.accesses` counter;
//! * `<p>.evictions <= <p>.misses` and `<p>.writebacks <= <p>.evictions`
//!   (a victim is only produced by a miss; only a valid victim can be
//!   dirty);
//! * `<p>.dirty_drops <= <p>.invalidations + <p>.flushed_lines` for
//!   every prefix with a `.dirty_drops` counter — a dirty line can only
//!   be dropped by a targeted invalidation or a whole-cache flush;
//! * `<p>.writeback_pulls <= <p>.invalidations + <p>.downgrades` for
//!   every prefix with a `.writeback_pulls` counter — the coherence
//!   protocol pulls a dirty line only while invalidating or downgrading
//!   its owner;
//! * `<p>.bytes_read == <p>.lines_read * <p>.line_bytes` (gauge), and
//!   the same for writes — DRAM traffic is whole cache lines;
//! * `<p>.row_activations == <p>.lines_read + <p>.lines_written`;
//! * `<p>.busy_ps <= <p>.span_ps` — a resource cannot be busy longer
//!   than the span it was observed over (the "grants within capacity"
//!   law for time-reservation resources);
//! * `<p>.stalls <= <p>.requests`;
//! * `fold.steps_executed == fold.expected_steps` — executed fold steps
//!   match Σ(schedule length × passes);
//! * `experiments.pool.jobs_completed == experiments.pool.jobs_submitted`;
//! * `<p>.completed + <p>.shed + <p>.stolen == <p>.submitted` for every
//!   prefix with a `.submitted` counter — a drained serving run loses no
//!   request: each one completes, is shed, or was stolen away to another
//!   shard (where it counts as submitted again, so the law also holds on
//!   cluster-merged registries);
//! * `<p>.occupied <= <p>.capacity` for every prefix with an `.occupied`
//!   counter — a batch never carries more lanes than the dispatch
//!   offered (both sides are sums over dispatches, so merges preserve
//!   the law);
//! * `Σ <p>.cluster.<c>.requests == <p>.trace.requests` and
//!   `<p>.est.completed + <p>.est.shed == <p>.trace.requests` for every
//!   prefix with a `.trace.requests` counter — sampled extrapolation
//!   accounts for every trace request exactly once: each request belongs
//!   to exactly one signature cluster, and every extrapolated request
//!   either completes or sheds (both sides are sums, so merges preserve
//!   the law);
//! * per-run only: `core.kernel_cycles == core.items_per_tile *
//!   core.round_cycles`.

use std::fmt;

use crate::registry::CounterRegistry;

/// One failed invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which law failed, e.g. `"cache.llc: hits + misses == accesses"`.
    pub law: String,
    /// The observed values.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} — {}", self.law, self.detail)
    }
}

/// Prefixes of counters ending in `suffix` (e.g. `.accesses`), sorted.
fn prefixes_with<'a>(reg: &'a CounterRegistry, suffix: &'a str) -> Vec<&'a str> {
    reg.counters()
        .filter_map(|(k, _)| k.strip_suffix(suffix))
        .collect()
}

/// Runs every applicable invariant; returns all violations (empty =
/// healthy).
pub fn check(reg: &CounterRegistry) -> Vec<Violation> {
    let mut out = Vec::new();
    let violate = |out: &mut Vec<Violation>, law: String, detail: String| {
        out.push(Violation { law, detail });
    };

    // hits + misses == accesses, evictions <= misses, writebacks <= evictions.
    for p in prefixes_with(reg, ".accesses") {
        let hits = reg.counter(&format!("{p}.hits"));
        let misses = reg.counter(&format!("{p}.misses"));
        let accesses = reg.counter(&format!("{p}.accesses"));
        if hits + misses != accesses {
            violate(
                &mut out,
                format!("{p}: hits + misses == accesses"),
                format!("{hits} + {misses} != {accesses}"),
            );
        }
        let evictions = reg.counter(&format!("{p}.evictions"));
        if reg.has_counter(&format!("{p}.evictions")) && evictions > misses {
            violate(
                &mut out,
                format!("{p}: evictions <= misses"),
                format!("{evictions} > {misses}"),
            );
        }
        let writebacks = reg.counter(&format!("{p}.writebacks"));
        if reg.has_counter(&format!("{p}.evictions")) && writebacks > evictions {
            violate(
                &mut out,
                format!("{p}: writebacks <= evictions"),
                format!("{writebacks} > {evictions}"),
            );
        }
    }

    // Back-invalidation drops: only a targeted invalidation or a flush
    // can drop a dirty line.
    for p in prefixes_with(reg, ".dirty_drops") {
        let dirty = reg.counter(&format!("{p}.dirty_drops"));
        let drops = reg
            .counter(&format!("{p}.invalidations"))
            .saturating_add(reg.counter(&format!("{p}.flushed_lines")));
        if dirty > drops {
            violate(
                &mut out,
                format!("{p}: dirty_drops <= invalidations + flushed_lines"),
                format!("{dirty} > {drops}"),
            );
        }
    }

    // Coherence protocol: every writeback pull rides an invalidation or
    // a downgrade of the dirty owner.
    for p in prefixes_with(reg, ".writeback_pulls") {
        let pulls = reg.counter(&format!("{p}.writeback_pulls"));
        let causes = reg
            .counter(&format!("{p}.invalidations"))
            .saturating_add(reg.counter(&format!("{p}.downgrades")));
        if pulls > causes {
            violate(
                &mut out,
                format!("{p}: writeback_pulls <= invalidations + downgrades"),
                format!("{pulls} > {causes}"),
            );
        }
    }

    // DRAM byte conservation: bytes == lines * line_bytes.
    for p in prefixes_with(reg, ".lines_read") {
        let Some(line_bytes) = reg.gauge(&format!("{p}.line_bytes")) else {
            continue;
        };
        let line_bytes = line_bytes as u64;
        for dir in ["read", "written"] {
            let lines = reg.counter(&format!("{p}.lines_{dir}"));
            let bytes = reg.counter(&format!("{p}.bytes_{dir}"));
            if lines.saturating_mul(line_bytes) != bytes {
                violate(
                    &mut out,
                    format!("{p}: bytes_{dir} == lines_{dir} * line_bytes"),
                    format!("{bytes} != {lines} * {line_bytes}"),
                );
            }
        }
        let activations = reg.counter(&format!("{p}.row_activations"));
        let lines =
            reg.counter(&format!("{p}.lines_read")) + reg.counter(&format!("{p}.lines_written"));
        if reg.has_counter(&format!("{p}.row_activations")) && activations != lines {
            violate(
                &mut out,
                format!("{p}: row_activations == lines_read + lines_written"),
                format!("{activations} != {lines}"),
            );
        }
    }

    // Resources: busy within observed span, stalls within requests.
    for p in prefixes_with(reg, ".busy_ps") {
        let busy = reg.counter(&format!("{p}.busy_ps"));
        let span = reg.counter(&format!("{p}.span_ps"));
        if reg.has_counter(&format!("{p}.span_ps")) && busy > span {
            violate(
                &mut out,
                format!("{p}: busy_ps <= span_ps"),
                format!("{busy} > {span}"),
            );
        }
    }
    for p in prefixes_with(reg, ".stalls") {
        let stalls = reg.counter(&format!("{p}.stalls"));
        let requests = reg.counter(&format!("{p}.requests"));
        if stalls > requests {
            violate(
                &mut out,
                format!("{p}: stalls <= requests"),
                format!("{stalls} > {requests}"),
            );
        }
    }

    // Fold-step conservation.
    for p in prefixes_with(reg, ".expected_steps") {
        let expected = reg.counter(&format!("{p}.expected_steps"));
        let executed = reg.counter(&format!("{p}.steps_executed"));
        if expected != executed {
            violate(
                &mut out,
                format!("{p}: steps_executed == Σ schedule length × passes"),
                format!("{executed} != {expected}"),
            );
        }
    }

    // Worker pool conservation.
    for p in prefixes_with(reg, ".jobs_submitted") {
        let submitted = reg.counter(&format!("{p}.jobs_submitted"));
        let completed = reg.counter(&format!("{p}.jobs_completed"));
        if submitted != completed {
            violate(
                &mut out,
                format!("{p}: jobs_completed == jobs_submitted"),
                format!("{completed} != {submitted}"),
            );
        }
    }

    // Request conservation: every submitted request ends exactly once —
    // as a completion, a shed, or a steal to another shard (the serving
    // layer's drain guarantee). A stolen request is re-submitted on the
    // thief, so the law holds per shard and on cluster-merged registries.
    for p in prefixes_with(reg, ".submitted") {
        let submitted = reg.counter(&format!("{p}.submitted"));
        let completed = reg.counter(&format!("{p}.completed"));
        let shed = reg.counter(&format!("{p}.shed"));
        let stolen = reg.counter(&format!("{p}.stolen"));
        if completed.saturating_add(shed).saturating_add(stolen) != submitted {
            violate(
                &mut out,
                format!("{p}: completed + shed + stolen == submitted"),
                format!("{completed} + {shed} + {stolen} != {submitted}"),
            );
        }
    }

    // Lane conservation: occupied lanes within offered capacity.
    for p in prefixes_with(reg, ".occupied") {
        let occupied = reg.counter(&format!("{p}.occupied"));
        let capacity = reg.counter(&format!("{p}.capacity"));
        if reg.has_counter(&format!("{p}.capacity")) && occupied > capacity {
            violate(
                &mut out,
                format!("{p}: occupied <= capacity"),
                format!("{occupied} > {capacity}"),
            );
        }
    }

    // Sampled-extrapolation conservation: every trace request belongs to
    // exactly one signature cluster, and the extrapolated terminal counts
    // cover the whole trace.
    for p in prefixes_with(reg, ".trace.requests") {
        let total = reg.counter(&format!("{p}.trace.requests"));
        let cluster_prefix = format!("{p}.cluster");
        let mut cluster_sum = 0u64;
        let mut have_clusters = false;
        for (k, v) in reg.counters_under(&cluster_prefix) {
            if k.ends_with(".requests") {
                cluster_sum = cluster_sum.saturating_add(v);
                have_clusters = true;
            }
        }
        if have_clusters && cluster_sum != total {
            violate(
                &mut out,
                format!("{p}: Σ cluster.<c>.requests == trace.requests"),
                format!("{cluster_sum} != {total}"),
            );
        }
        if reg.has_counter(&format!("{p}.est.completed")) {
            let completed = reg.counter(&format!("{p}.est.completed"));
            let shed = reg.counter(&format!("{p}.est.shed"));
            if completed.saturating_add(shed) != total {
                violate(
                    &mut out,
                    format!("{p}: est.completed + est.shed == trace.requests"),
                    format!("{completed} + {shed} != {total}"),
                );
            }
        }
    }

    // Per-run products (meaningless once registries merge: sums of
    // products are not products of sums).
    if reg.counter("core.runs") == 1 {
        let cycles = reg.counter("core.kernel_cycles");
        let items = reg.counter("core.items_per_tile");
        let round = reg.counter("core.round_cycles");
        if reg.has_counter("core.kernel_cycles") && items.saturating_mul(round) != cycles {
            violate(
                &mut out,
                "core: kernel_cycles == items_per_tile * round_cycles".to_owned(),
                format!("{cycles} != {items} * {round}"),
            );
        }
    }

    out
}

/// Panics with a formatted list when any invariant fails. Call after
/// every instrumented run in tests.
///
/// # Panics
///
/// Panics if [`check`] reports violations.
pub fn assert_ok(reg: &CounterRegistry) {
    let violations = check(reg);
    assert!(
        violations.is_empty(),
        "probe invariants violated:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// [`assert_ok`] in debug builds, free in release — the hook components
/// call after assembling a per-run registry.
pub fn debug_check(reg: &CounterRegistry) {
    if cfg!(debug_assertions) {
        assert_ok(reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> CounterRegistry {
        let mut r = CounterRegistry::new();
        r.add("cache.llc.accesses", 10);
        r.add("cache.llc.hits", 7);
        r.add("cache.llc.misses", 3);
        r.add("cache.llc.evictions", 2);
        r.add("cache.llc.writebacks", 1);
        r.add("cache.llc.invalidations", 3);
        r.add("cache.llc.flushed_lines", 2);
        r.add("cache.llc.dirty_drops", 4);
        r.add("cache.coh.invalidations", 6);
        r.add("cache.coh.downgrades", 2);
        r.add("cache.coh.writeback_pulls", 5);
        r.add("sim.dram.lines_read", 4);
        r.add("sim.dram.lines_written", 1);
        r.add("sim.dram.bytes_read", 256);
        r.add("sim.dram.bytes_written", 64);
        r.add("sim.dram.row_activations", 5);
        r.set_gauge("sim.dram.line_bytes", 64.0);
        r.add("sim.dram.ch.busy_ps", 100);
        r.add("sim.dram.ch.span_ps", 150);
        r.add("sim.dram.ch.requests", 5);
        r.add("sim.dram.ch.stalls", 2);
        r.add("fold.expected_steps", 12);
        r.add("fold.steps_executed", 12);
        r.add("experiments.pool.jobs_submitted", 9);
        r.add("experiments.pool.jobs_completed", 9);
        r.add("serve.requests.submitted", 6);
        r.add("serve.requests.completed", 4);
        r.add("serve.requests.shed", 2);
        r.add("serve.lanes.occupied", 48);
        r.add("serve.lanes.capacity", 128);
        r.add("serve.sample.trace.requests", 20);
        r.add("serve.sample.cluster.0.requests", 12);
        r.add("serve.sample.cluster.1.requests", 8);
        r.add("serve.sample.cluster.0.medoid", 3);
        r.add("serve.sample.est.completed", 18);
        r.add("serve.sample.est.shed", 2);
        r
    }

    #[test]
    fn healthy_registry_passes() {
        assert_ok(&healthy());
    }

    #[test]
    fn empty_registry_passes() {
        assert_ok(&CounterRegistry::new());
    }

    type Corruption = Box<dyn Fn(&mut CounterRegistry)>;

    #[test]
    fn each_law_fires() {
        let cases: Vec<(&str, Corruption)> = vec![
            ("hits + misses", Box::new(|r| r.add("cache.llc.hits", 1))),
            (
                "evictions <= misses",
                Box::new(|r| r.add("cache.llc.evictions", 5)),
            ),
            (
                "writebacks <= evictions",
                Box::new(|r| r.add("cache.llc.writebacks", 5)),
            ),
            (
                "dirty_drops <= invalidations + flushed_lines",
                Box::new(|r| r.add("cache.llc.dirty_drops", 10)),
            ),
            (
                "writeback_pulls <= invalidations + downgrades",
                Box::new(|r| r.add("cache.coh.writeback_pulls", 10)),
            ),
            (
                "bytes_read == lines_read",
                Box::new(|r| r.add("sim.dram.bytes_read", 1)),
            ),
            (
                "row_activations",
                Box::new(|r| r.add("sim.dram.row_activations", 1)),
            ),
            (
                "busy_ps <= span_ps",
                Box::new(|r| r.add("sim.dram.ch.busy_ps", 100)),
            ),
            (
                "stalls <= requests",
                Box::new(|r| r.add("sim.dram.ch.stalls", 10)),
            ),
            (
                "steps_executed",
                Box::new(|r| r.add("fold.steps_executed", 1)),
            ),
            (
                "jobs_completed",
                Box::new(|r| r.add("experiments.pool.jobs_submitted", 1)),
            ),
            (
                "completed + shed + stolen == submitted",
                Box::new(|r| r.add("serve.requests.shed", 1)),
            ),
            (
                "completed + shed + stolen == submitted",
                Box::new(|r| r.add("serve.requests.stolen", 3)),
            ),
            (
                "occupied <= capacity",
                Box::new(|r| r.add("serve.lanes.occupied", 1_000)),
            ),
            (
                "cluster.<c>.requests == trace.requests",
                Box::new(|r| r.add("serve.sample.cluster.1.requests", 1)),
            ),
            (
                "est.completed + est.shed == trace.requests",
                Box::new(|r| r.add("serve.sample.est.shed", 1)),
            ),
        ];
        for (law_fragment, corrupt) in cases {
            let mut r = healthy();
            corrupt(&mut r);
            let violations = check(&r);
            assert!(
                violations.iter().any(|v| v.law.contains(law_fragment)),
                "expected a '{law_fragment}' violation, got {violations:?}"
            );
        }
    }

    #[test]
    fn per_run_product_only_checked_for_single_runs() {
        let mut r = CounterRegistry::new();
        r.add("core.runs", 1);
        r.add("core.kernel_cycles", 100);
        r.add("core.items_per_tile", 9);
        r.add("core.round_cycles", 10);
        assert_eq!(check(&r).len(), 1);
        // Two merged runs: the product law is skipped.
        r.add("core.runs", 1);
        assert_ok(&r);
    }

    #[test]
    fn stolen_requests_balance_the_conservation_law() {
        // Victim shard: 2 of its 8 submissions were stolen away; thief
        // shard: the 2 stolen arrivals count as fresh submissions. Both
        // pass alone, and so does their merge (10 = 6 + 2 + 2).
        let mut victim = CounterRegistry::new();
        victim.add("serve.requests.submitted", 8);
        victim.add("serve.requests.completed", 5);
        victim.add("serve.requests.shed", 1);
        victim.add("serve.requests.stolen", 2);
        assert_ok(&victim);
        let mut thief = CounterRegistry::new();
        thief.add("serve.requests.submitted", 2);
        thief.add("serve.requests.completed", 1);
        thief.add("serve.requests.shed", 1);
        assert_ok(&thief);
        let mut merged = victim.clone();
        merged.merge(&thief);
        assert_ok(&merged);
        // And namespaced per-shard copies stay checkable alongside it.
        merged.merge_namespaced("cluster.shard.0.", &victim);
        merged.merge_namespaced("cluster.shard.1.", &thief);
        assert_ok(&merged);
    }

    #[test]
    fn merged_registries_stay_healthy() {
        let mut a = healthy();
        a.merge(&healthy());
        assert_ok(&a);
    }
}
