//! The process-wide probe, gated by `FREAC_TRACE` / `FREAC_METRICS`.
//!
//! When neither variable is set (the normal case), [`global`] is `None`
//! and every hook in the stack is a single branch on an `Option` — no
//! locks, no allocation, no I/O. When either is set, components merge
//! their per-run registries and push trace events here, and the harness
//! writes the output files at exit via [`finish`].
//!
//! Variable values: unset, empty, or `0` disable; `1` enables with the
//! default output path (`freac-trace.json` / `freac-metrics.json` in the
//! working directory); any other value is used as the output path.
//! `FREAC_TRACE_EVENTS` overrides the event-ring capacity.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::chrome::to_chrome_trace;
use crate::events::{EventKind, EventRing, ProbeEvent};
use crate::metrics::{to_counters_json, to_metrics_json};
use crate::registry::CounterRegistry;

/// Environment variable enabling Chrome-trace event capture.
pub const TRACE_ENV: &str = "FREAC_TRACE";
/// Environment variable enabling metrics capture.
pub const METRICS_ENV: &str = "FREAC_METRICS";
/// Environment variable overriding the event-ring capacity.
pub const TRACE_EVENTS_ENV: &str = "FREAC_TRACE_EVENTS";

/// Default bounded-ring capacity (events retained).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Resolved output configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Chrome-trace output path (`None`: tracing off).
    pub trace_path: Option<PathBuf>,
    /// `metrics.json` output path (`None`: default, when any capture is
    /// on).
    pub metrics_path: PathBuf,
    /// Event-ring capacity.
    pub ring_capacity: usize,
}

impl ProbeConfig {
    /// Reads `FREAC_TRACE` / `FREAC_METRICS`; `None` when both are off.
    pub fn from_env() -> Option<Self> {
        let trace = path_from_env(TRACE_ENV, "freac-trace.json");
        let metrics = path_from_env(METRICS_ENV, "freac-metrics.json");
        if trace.is_none() && metrics.is_none() {
            return None;
        }
        let ring_capacity = std::env::var(TRACE_EVENTS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_RING_CAPACITY);
        Some(ProbeConfig {
            trace_path: trace,
            metrics_path: metrics.unwrap_or_else(|| PathBuf::from("freac-metrics.json")),
            ring_capacity,
        })
    }

    /// The deterministic-counters sidecar path: the metrics file name
    /// with `metrics` replaced by `counters` (or `.counters.json`
    /// appended when the name contains no `metrics`).
    pub fn counters_path(&self) -> PathBuf {
        let name = self
            .metrics_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("freac-metrics.json");
        let sidecar = if name.contains("metrics") {
            name.replacen("metrics", "counters", 1)
        } else {
            format!("{name}.counters.json")
        };
        self.metrics_path.with_file_name(sidecar)
    }
}

fn path_from_env(var: &str, default: &str) -> Option<PathBuf> {
    match std::env::var(var) {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Some(PathBuf::from(default)),
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => None,
    }
}

/// A live capture session: merged counters plus the event ring.
#[derive(Debug)]
pub struct Probe {
    config: ProbeConfig,
    origin: Instant,
    counters: Mutex<CounterRegistry>,
    ring: Mutex<EventRing>,
}

impl Probe {
    /// A probe with explicit configuration (tests; [`global`] builds the
    /// env-configured one).
    pub fn new(config: ProbeConfig) -> Self {
        let ring = EventRing::new(config.ring_capacity);
        Probe {
            config,
            origin: Instant::now(),
            counters: Mutex::new(CounterRegistry::new()),
            ring: Mutex::new(ring),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ProbeConfig {
        &self.config
    }

    /// Whether event capture is on (`FREAC_TRACE`).
    pub fn tracing(&self) -> bool {
        self.config.trace_path.is_some()
    }

    /// Wall-clock nanoseconds since the probe was created — the tick
    /// base for harness tracks.
    pub fn wall_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Folds a per-run registry into the process totals.
    pub fn merge(&self, reg: &CounterRegistry) {
        self.counters
            .lock()
            .expect("probe counters poisoned")
            .merge(reg);
    }

    /// Adds to one process-wide counter.
    pub fn add(&self, name: &str, delta: u64) {
        self.counters
            .lock()
            .expect("probe counters poisoned")
            .add(name, delta);
    }

    /// Raises one process-wide gauge to `value` if larger.
    pub fn gauge_max(&self, name: &str, value: f64) {
        self.counters
            .lock()
            .expect("probe counters poisoned")
            .gauge_max(name, value);
    }

    /// Records into one process-wide histogram.
    pub fn observe(&self, name: &str, value: u64) {
        self.counters
            .lock()
            .expect("probe counters poisoned")
            .observe(name, value);
    }

    /// Pushes an event (no-op unless tracing).
    pub fn emit(&self, event: ProbeEvent) {
        if self.tracing() {
            self.ring.lock().expect("probe ring poisoned").push(event);
        }
    }

    /// Opens a wall-clock span on `component`; the guard emits the
    /// matching end event on drop.
    pub fn span<'a>(&'a self, component: &str, name: &str) -> SpanGuard<'a> {
        let mut begin = ProbeEvent::instant(self.wall_ns(), component, name);
        begin.kind = EventKind::Begin;
        self.emit(begin);
        SpanGuard {
            probe: self,
            component: component.to_owned(),
            name: name.to_owned(),
            start_ns: self.wall_ns(),
        }
    }

    /// A snapshot of the merged counters.
    pub fn snapshot(&self) -> CounterRegistry {
        self.counters
            .lock()
            .expect("probe counters poisoned")
            .clone()
    }

    /// Renders the current ring as Chrome-trace JSON.
    pub fn chrome_trace(&self) -> String {
        let ring = self.ring.lock().expect("probe ring poisoned");
        to_chrome_trace(ring.iter())
    }

    /// Events dropped by the bounded ring so far.
    pub fn events_dropped(&self) -> u64 {
        self.ring.lock().expect("probe ring poisoned").dropped()
    }

    /// Writes the configured output files (`metrics.json`, the counters
    /// sidecar, and the Chrome trace when tracing) and returns their
    /// paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_files(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut written = Vec::new();
        let snapshot = {
            let mut counters = self.counters.lock().expect("probe counters poisoned");
            counters.add("probe.events_dropped", self.events_dropped());
            counters.clone()
        };
        write_atomic(&self.config.metrics_path, &to_metrics_json(&snapshot))?;
        written.push(self.config.metrics_path.clone());
        let counters_path = self.config.counters_path();
        write_atomic(&counters_path, &to_counters_json(&snapshot))?;
        written.push(counters_path);
        if let Some(trace_path) = &self.config.trace_path {
            write_atomic(trace_path, &self.chrome_trace())?;
            written.push(trace_path.clone());
        }
        Ok(written)
    }
}

fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// RAII wall-clock span; emits the end event and a duration histogram
/// entry on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    probe: &'a Probe,
    component: String,
    name: String,
    start_ns: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let now = self.probe.wall_ns();
        self.probe.observe(
            &format!("{}.{}.wall_us", self.component, self.name),
            (now - self.start_ns) / 1_000,
        );
        let mut end = ProbeEvent::instant(now, &self.component, &self.name);
        end.kind = EventKind::End;
        self.probe.emit(end);
    }
}

static GLOBAL: OnceLock<Option<Probe>> = OnceLock::new();

/// The process-wide probe: `Some` iff `FREAC_TRACE` or `FREAC_METRICS`
/// enabled capture at first use. The disabled fast path is one atomic
/// load plus a branch.
pub fn global() -> Option<&'static Probe> {
    GLOBAL
        .get_or_init(|| ProbeConfig::from_env().map(Probe::new))
        .as_ref()
}

/// Whether any capture is active.
pub fn enabled() -> bool {
    global().is_some()
}

/// Whether event tracing is active — check before constructing an event
/// so the disabled path allocates nothing.
pub fn tracing() -> bool {
    global().is_some_and(Probe::tracing)
}

/// Merges a per-run registry into the global probe, if active.
pub fn merge(reg: &CounterRegistry) {
    if let Some(p) = global() {
        p.merge(reg);
    }
}

/// Emits one event to the global probe, if tracing.
pub fn emit(event: ProbeEvent) {
    if let Some(p) = global() {
        p.emit(event);
    }
}

/// Writes the configured output files from the global probe, if active.
/// Returns the written paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn finish() -> std::io::Result<Option<Vec<PathBuf>>> {
    match global() {
        Some(p) => p.write_files().map(Some),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_config(tag: &str) -> ProbeConfig {
        let dir = std::env::temp_dir().join(format!("freac-probe-{}-{tag}", std::process::id()));
        ProbeConfig {
            trace_path: Some(dir.join("freac-trace.json")),
            metrics_path: dir.join("freac-metrics.json"),
            ring_capacity: 64,
        }
    }

    #[test]
    fn counters_sidecar_path_derivation() {
        let c = temp_config("sidecar");
        assert!(c
            .counters_path()
            .to_string_lossy()
            .ends_with("freac-counters.json"));
        let odd = ProbeConfig {
            trace_path: None,
            metrics_path: PathBuf::from("out.json"),
            ring_capacity: 1,
        };
        assert_eq!(odd.counters_path(), PathBuf::from("out.json.counters.json"));
    }

    #[test]
    fn span_emits_balanced_events_and_duration() {
        let p = Probe::new(temp_config("span"));
        {
            let _g = p.span("harness", "fig");
        }
        let trace = p.chrome_trace();
        let v = crate::json::Json::parse(&trace).unwrap();
        let phases: Vec<_> = v
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|e| e.get("ph").and_then(crate::json::Json::as_str))
            .filter(|ph| *ph != "M")
            .collect();
        assert_eq!(phases, vec!["B", "E"]);
        let snap = p.snapshot();
        assert_eq!(snap.histogram("harness.fig.wall_us").unwrap().count(), 1);
    }

    #[test]
    fn write_files_produces_all_outputs() {
        let p = Probe::new(temp_config("files"));
        p.add("a.b", 3);
        p.emit(ProbeEvent::instant(0, "c", "e"));
        let written = p.write_files().unwrap();
        assert_eq!(written.len(), 3);
        for path in &written {
            let text = std::fs::read_to_string(path).unwrap();
            assert!(!text.is_empty());
            crate::json::Json::parse(&text).unwrap();
        }
        let dir = written[0].parent().unwrap().to_owned();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn merge_accumulates_into_snapshot() {
        let p = Probe::new(temp_config("merge"));
        let mut r = CounterRegistry::new();
        r.add("x", 2);
        p.merge(&r);
        p.merge(&r);
        assert_eq!(p.snapshot().counter("x"), 4);
    }
}
