//! Flat per-run `metrics.json` exporter and importer.
//!
//! Layout (sections and keys sorted, so text diffs are stable):
//!
//! ```json
//! {
//!   "counters":   { "sim.dram.reads": 4, ... },
//!   "gauges":     { "sim.dram.line_bytes": 64.0, ... },
//!   "histograms": { "fold.pass_steps": {"count":2,"sum":10,"min":5,"max":5,
//!                                        "p50":5.0,"p95":5.0,"p99":5.0,
//!                                        "buckets":{"3":2}}, ... }
//! }
//! ```
//!
//! Histogram `p50`/`p95`/`p99` are interpolated quantile estimates
//! ([`Histogram::quantile`]) derived from the buckets at export time; the
//! importer ignores them, so exports still round-trip byte-for-byte.
//!
//! Counters are deterministic by contract (see [`crate::registry`]), so
//! CI diffs the `counters` section against a committed baseline to catch
//! silent behavioral drift; gauges and histograms may carry wall-clock
//! values and are excluded from that diff.

use crate::json::Json;
use crate::registry::{CounterRegistry, Histogram};

/// Serializes a registry to the `metrics.json` text.
pub fn to_metrics_json(reg: &CounterRegistry) -> String {
    Json::Obj(vec![
        ("counters".to_owned(), counters_json(reg)),
        (
            "gauges".to_owned(),
            Json::Obj(
                reg.gauges()
                    .map(|(k, v)| (k.to_owned(), Json::Num(v)))
                    .collect(),
            ),
        ),
        (
            "histograms".to_owned(),
            Json::Obj(
                reg.histograms()
                    .map(|(k, h)| (k.to_owned(), histogram_json(h)))
                    .collect(),
            ),
        ),
    ])
    .write()
}

/// Serializes only the deterministic `counters` section (one sorted
/// `"name": value` pair per line) — the file CI diffs against the
/// committed baseline.
pub fn to_counters_json(reg: &CounterRegistry) -> String {
    let mut out = String::from("{\n");
    let body: Vec<String> = reg
        .counters()
        .map(|(k, v)| format!("  {}: {v}", Json::Str(k.to_owned()).write()))
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n}\n");
    out
}

fn counters_json(reg: &CounterRegistry) -> Json {
    Json::Obj(
        reg.counters()
            .map(|(k, v)| (k.to_owned(), Json::UInt(v)))
            .collect(),
    )
}

fn histogram_json(h: &Histogram) -> Json {
    let mut members = vec![
        ("count".to_owned(), Json::UInt(h.count())),
        ("sum".to_owned(), Json::UInt(h.sum())),
    ];
    if let (Some(min), Some(max)) = (h.min(), h.max()) {
        members.push(("min".to_owned(), Json::UInt(min)));
        members.push(("max".to_owned(), Json::UInt(max)));
        // Derived interpolated quantiles: recomputed from the buckets on
        // export, so they are ignored by the importer yet survive the
        // round trip byte-for-byte.
        for (key, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            let v = h.quantile(q).expect("non-empty histogram has quantiles");
            members.push((key.to_owned(), Json::Num(v)));
        }
    }
    members.push((
        "buckets".to_owned(),
        Json::Obj(
            h.nonzero_buckets()
                .into_iter()
                .map(|(i, c)| (i.to_string(), Json::UInt(c)))
                .collect(),
        ),
    ));
    Json::Obj(members)
}

/// Parses `metrics.json` text back into a registry.
///
/// # Errors
///
/// Returns a description of the first malformed section or value.
pub fn from_metrics_json(text: &str) -> Result<CounterRegistry, String> {
    let v = Json::parse(text)?;
    let mut reg = CounterRegistry::new();
    if let Some(counters) = v.get("counters") {
        for (k, val) in counters.as_obj().ok_or("counters must be an object")? {
            let n = val
                .as_u64()
                .ok_or_else(|| format!("counter '{k}' is not a u64"))?;
            reg.set_counter(k, n);
        }
    }
    if let Some(gauges) = v.get("gauges") {
        for (k, val) in gauges.as_obj().ok_or("gauges must be an object")? {
            let n = val
                .as_f64()
                .ok_or_else(|| format!("gauge '{k}' is not a number"))?;
            reg.set_gauge(k, n);
        }
    }
    if let Some(hists) = v.get("histograms") {
        for (k, val) in hists.as_obj().ok_or("histograms must be an object")? {
            reg.insert_histogram(k, parse_histogram(k, val)?);
        }
    }
    Ok(reg)
}

fn parse_histogram(name: &str, v: &Json) -> Result<Histogram, String> {
    let sum = v
        .get("sum")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("histogram '{name}' missing sum"))?;
    let min = v.get("min").and_then(Json::as_u64);
    let max = v.get("max").and_then(Json::as_u64);
    let mut buckets = Vec::new();
    for (i, c) in v
        .get("buckets")
        .and_then(Json::as_obj)
        .ok_or_else(|| format!("histogram '{name}' missing buckets"))?
    {
        let idx: usize = i
            .parse()
            .map_err(|_| format!("histogram '{name}' bucket key '{i}'"))?;
        let count = c
            .as_u64()
            .ok_or_else(|| format!("histogram '{name}' bucket '{i}' count"))?;
        buckets.push((idx, count));
    }
    let h = Histogram::from_parts(&buckets, sum, min, max)?;
    let declared = v
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("histogram '{name}' missing count"))?;
    if h.count() != declared {
        return Err(format!(
            "histogram '{name}' count {declared} != bucket total {}",
            h.count()
        ));
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips() {
        let mut r = CounterRegistry::new();
        r.add("sim.dram.reads", 42);
        r.add("big", u64::MAX);
        r.set_gauge("rate", 0.125);
        r.observe("lat", 0);
        r.observe("lat", 7);
        r.observe("lat", 1 << 40);
        let text = to_metrics_json(&r);
        let back = from_metrics_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn exported_quantiles_are_derived_and_round_trip_stable() {
        let mut r = CounterRegistry::new();
        for v in [1u64, 2, 3, 900, 900, 900, 4000] {
            r.observe("serve.latency_ps", v);
        }
        let text = to_metrics_json(&r);
        assert!(text.contains("\"p50\""), "{text}");
        assert!(text.contains("\"p95\""), "{text}");
        assert!(text.contains("\"p99\""), "{text}");
        // The importer drops the derived keys; re-export regenerates them
        // identically because they are a pure function of buckets/min/max.
        let back = from_metrics_json(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(to_metrics_json(&back), text);
    }

    #[test]
    fn empty_registry_round_trips() {
        let r = CounterRegistry::new();
        assert_eq!(from_metrics_json(&to_metrics_json(&r)).unwrap(), r);
    }

    #[test]
    fn counters_json_is_sorted_lines() {
        let mut r = CounterRegistry::new();
        r.add("z.last", 1);
        r.add("a.first", 2);
        let text = to_counters_json(&r);
        let a = text.find("a.first").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < z, "{text}");
        assert!(text.ends_with("}\n"));
        Json::parse(&text).unwrap();
    }

    #[test]
    fn importer_rejects_malformed_sections() {
        assert!(from_metrics_json("{\"counters\": 3}").is_err());
        assert!(from_metrics_json("{\"counters\": {\"x\": -1}}").is_err());
        assert!(from_metrics_json("{\"histograms\": {\"h\": {\"count\": 1}}}").is_err());
        assert!(from_metrics_json(
            "{\"histograms\": {\"h\": {\"count\": 2, \"sum\": 1, \"buckets\": {\"1\": 1}}}}"
        )
        .is_err());
    }
}
