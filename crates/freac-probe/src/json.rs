//! A minimal JSON value with parser and writer.
//!
//! The workspace is std-only, so the exporters hand-roll their JSON; the
//! golden and round-trip tests need to read it back. This module is the
//! shared dialect: objects preserve insertion order, and integer literals
//! that fit `u64` stay exact ([`Json::UInt`]) instead of passing through
//! `f64` — counter values above 2^53 must round-trip bit-for-bit.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (`None` for other shapes or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Num(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(v) => Some(v as f64),
            Json::Num(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, in order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes compactly (no insignificant whitespace).
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a description with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Writes a finite `f64` so it parses back as a number (JSON has no
/// NaN/Inf; those become `null`).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            // Keep integers readable ("3" not "3.0"-less float noise), but
            // add ".0" so the round-trip stays a float where it matters.
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("dangling escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our exporters;
                            // map unpaired surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!(
                                "unknown escape '\\{}' at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "12345678901234567890123", // > u64: becomes a float
            "\"hi \\\"there\\\"\"",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":{\"c\":[]}}",
        ] {
            let v = Json::parse(text).unwrap();
            let again = Json::parse(&v.write()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX - 1;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v, Json::UInt(big));
        assert_eq!(v.write(), big.to_string());
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn floats_round_trip() {
        let v = Json::Num(1.5e-3);
        let back = Json::parse(&v.write()).unwrap();
        assert_eq!(back.as_f64(), Some(1.5e-3));
        // Whole floats keep a decimal point so they stay floats.
        assert_eq!(Json::Num(3.0).write(), "3.0");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn object_get_and_order() {
        let v = Json::parse("{\"z\":1,\"a\":2}").unwrap();
        assert_eq!(v.get("z").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("missing"), None);
        let keys: Vec<_> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn control_chars_escape() {
        let v = Json::Str("a\nb\u{1}".into());
        assert_eq!(v.write(), "\"a\\nb\\u0001\"");
        assert_eq!(Json::parse(&v.write()).unwrap(), v);
    }
}
