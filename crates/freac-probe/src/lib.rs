//! Observability for the FReaC Cache simulation stack: unified counters,
//! cycle-stamped tracing, and invariant-checked metrics.
//!
//! The crate is std-only and splits into:
//!
//! * [`registry`] — [`CounterRegistry`]: dotted-name counters (monotonic,
//!   deterministic by contract), gauges, and power-of-two histograms,
//!   with a commutative/associative [`CounterRegistry::merge`];
//! * [`events`] — [`ProbeEvent`] and the bounded drop-oldest
//!   [`EventRing`];
//! * [`chrome`] / [`metrics`] — exporters to Chrome-trace JSON and flat
//!   `metrics.json` (plus a deterministic counters sidecar for CI
//!   baseline diffs), with a `metrics.json` importer for round-trip
//!   tests;
//! * [`invariants`] — conservation-law cross-checks over any registry
//!   (`hits + misses == accesses`, DRAM byte conservation, fold-step
//!   conservation, …);
//! * [`global`] — the `FREAC_TRACE` / `FREAC_METRICS` env-gated
//!   process-wide probe. Disabled (the default), every hook is a branch
//!   on an `Option`.
//!
//! Component crates keep their own always-on stats structs and gain
//! `export_into(&mut CounterRegistry, prefix)` methods; `run_kernel`
//! assembles a per-run registry (carried on `KernelRun.probes`) and the
//! harness merges per-run registries into the global probe.

pub mod chrome;
pub mod events;
pub mod global;
pub mod invariants;
pub mod json;
pub mod metrics;
pub mod registry;

pub use chrome::to_chrome_trace;
pub use events::{EventKind, EventRing, ProbeEvent};
pub use global::{Probe, ProbeConfig, SpanGuard};
pub use invariants::{assert_ok, check, debug_check, Violation};
pub use json::Json;
pub use metrics::{from_metrics_json, to_counters_json, to_metrics_json};
pub use registry::{CounterRegistry, Histogram, HISTOGRAM_BUCKETS};
