//! The bounded, cycle-stamped event ring.
//!
//! Components push [`ProbeEvent`]s while tracing is enabled; the ring
//! keeps the most recent `capacity` events and counts what it dropped,
//! so a runaway trace degrades gracefully instead of exhausting memory.
//!
//! Timestamps are plain ticks (`t_cycle`). By convention, simulator
//! components stamp in **simulated picoseconds** and harness components
//! stamp in **wall-clock nanoseconds**; each component gets its own
//! track in the exported trace, so the two time bases never share an
//! axis. The Chrome exporter divides ticks by 1000 into its microsecond
//! field.

use std::collections::VecDeque;

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Start of a span (paired with a later [`EventKind::End`] on the
    /// same component track).
    Begin,
    /// End of the most recent unclosed span on the track.
    End,
    /// A point event.
    Instant,
}

/// One trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeEvent {
    /// Timestamp in ticks (see module docs for the per-track time base).
    pub t_cycle: u64,
    /// Track name, e.g. `"sim.dram"` or `"harness"`. Events on one track
    /// must be pushed in non-decreasing `t_cycle` order for a clean
    /// trace; the exporter clamps violations rather than reordering.
    pub component: String,
    /// Span begin/end or instant.
    pub kind: EventKind,
    /// Event label, e.g. `"read_line"` or `"fig08"`.
    pub name: String,
    /// Free-form key/value payload, exported as Chrome `args`.
    pub payload: Vec<(String, String)>,
}

impl ProbeEvent {
    /// An instant event with no payload.
    pub fn instant(t_cycle: u64, component: &str, name: &str) -> Self {
        ProbeEvent {
            t_cycle,
            component: component.to_owned(),
            kind: EventKind::Instant,
            name: name.to_owned(),
            payload: Vec::new(),
        }
    }

    /// Attaches one payload entry (builder style).
    pub fn with(mut self, key: &str, value: impl ToString) -> Self {
        self.payload.push((key.to_owned(), value.to_string()));
        self
    }
}

/// A drop-oldest bounded ring of events.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: VecDeque<ProbeEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring capacity must be positive");
        EventRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: ProbeEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Events in arrival order (oldest first).
    pub fn iter(&self) -> impl Iterator<Item = &ProbeEvent> {
        self.buf.iter()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest() {
        let mut r = EventRing::new(3);
        for t in 0..5 {
            r.push(ProbeEvent::instant(t, "c", "e"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<_> = r.iter().map(|e| e.t_cycle).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn payload_builder() {
        let e = ProbeEvent::instant(7, "sim.dram", "read_line").with("bytes", 64);
        assert_eq!(e.payload, vec![("bytes".to_owned(), "64".to_owned())]);
        assert_eq!(e.kind, EventKind::Instant);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = EventRing::new(0);
    }
}
