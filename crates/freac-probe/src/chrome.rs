//! Chrome-trace JSON exporter.
//!
//! Produces the `chrome://tracing` / Perfetto "JSON Array Format" with a
//! wrapping object: `{"traceEvents": [...]}`. Each distinct event
//! component becomes one thread track (a `tid` plus a `thread_name`
//! metadata record), assigned in order of first appearance so output is
//! deterministic for a given event sequence.
//!
//! Guarantees enforced here, and relied on by the golden test:
//!
//! * timestamps are non-decreasing within every track (violations are
//!   clamped up to the track's high-water mark, never reordered, so
//!   span nesting survives);
//! * every `B` has a matching `E` on its track: stray `E`s are dropped,
//!   spans still open at export time are closed at the track's final
//!   timestamp.

use crate::events::{EventKind, ProbeEvent};
use crate::json::Json;

/// Converts ticks (ps or ns, see [`crate::events`]) to the exporter's
/// microsecond field with sub-tick precision preserved.
fn ticks_to_us(t: u64) -> Json {
    if t.is_multiple_of(1000) {
        Json::UInt(t / 1000)
    } else {
        Json::Num(t as f64 / 1000.0)
    }
}

/// Renders events into a Chrome-trace JSON string.
pub fn to_chrome_trace<'a>(events: impl IntoIterator<Item = &'a ProbeEvent>) -> String {
    let mut tracks: Vec<String> = Vec::new(); // index = tid
    let mut high_water: Vec<u64> = Vec::new(); // per-tid clamp
    let mut open_spans: Vec<Vec<String>> = Vec::new(); // per-tid B-stack
    let mut out: Vec<Json> = Vec::new();

    for e in events {
        let tid = match tracks.iter().position(|t| *t == e.component) {
            Some(i) => i,
            None => {
                tracks.push(e.component.clone());
                high_water.push(0);
                open_spans.push(Vec::new());
                out.push(thread_name_record(tracks.len() - 1, &e.component));
                tracks.len() - 1
            }
        };
        let t = e.t_cycle.max(high_water[tid]);
        high_water[tid] = t;
        let ph = match e.kind {
            EventKind::Begin => {
                open_spans[tid].push(e.name.clone());
                "B"
            }
            EventKind::End => {
                if open_spans[tid].pop().is_none() {
                    continue; // stray End: nothing to balance, drop it
                }
                "E"
            }
            EventKind::Instant => "i",
        };
        out.push(event_record(ph, &e.name, tid, t, &e.payload));
    }

    // Close spans still open at export time at the track's last timestamp.
    for (tid, stack) in open_spans.iter_mut().enumerate() {
        while let Some(name) = stack.pop() {
            out.push(event_record("E", &name, tid, high_water[tid], &[]));
        }
    }

    Json::Obj(vec![
        ("traceEvents".to_owned(), Json::Arr(out)),
        ("displayTimeUnit".to_owned(), Json::Str("ms".to_owned())),
    ])
    .write()
}

fn thread_name_record(tid: usize, name: &str) -> Json {
    Json::Obj(vec![
        ("ph".to_owned(), Json::Str("M".to_owned())),
        ("name".to_owned(), Json::Str("thread_name".to_owned())),
        ("pid".to_owned(), Json::UInt(1)),
        ("tid".to_owned(), Json::UInt(tid as u64)),
        (
            "args".to_owned(),
            Json::Obj(vec![("name".to_owned(), Json::Str(name.to_owned()))]),
        ),
    ])
}

fn event_record(ph: &str, name: &str, tid: usize, t: u64, payload: &[(String, String)]) -> Json {
    let mut members = vec![
        ("ph".to_owned(), Json::Str(ph.to_owned())),
        ("name".to_owned(), Json::Str(name.to_owned())),
        ("cat".to_owned(), Json::Str("freac".to_owned())),
        ("pid".to_owned(), Json::UInt(1)),
        ("tid".to_owned(), Json::UInt(tid as u64)),
        ("ts".to_owned(), ticks_to_us(t)),
    ];
    if ph == "i" {
        members.push(("s".to_owned(), Json::Str("t".to_owned())));
    }
    if !payload.is_empty() {
        members.push((
            "args".to_owned(),
            Json::Obj(
                payload
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    Json::Obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventRing;

    fn span(t0: u64, t1: u64, component: &str, name: &str) -> [ProbeEvent; 2] {
        let mut b = ProbeEvent::instant(t0, component, name);
        b.kind = EventKind::Begin;
        let mut e = ProbeEvent::instant(t1, component, name);
        e.kind = EventKind::End;
        [b, e]
    }

    #[test]
    fn exports_valid_json_with_named_tracks() {
        let mut ring = EventRing::new(16);
        for ev in span(1000, 5000, "harness", "fig08") {
            ring.push(ev);
        }
        ring.push(ProbeEvent::instant(250, "sim.dram", "read_line").with("bytes", 64));
        let text = to_chrome_trace(ring.iter());
        let v = Json::parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata + B + E + i
        assert_eq!(events.len(), 5);
        let names: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, vec!["harness", "sim.dram"]);
    }

    #[test]
    fn clamps_non_monotonic_timestamps_per_track() {
        let events = [
            ProbeEvent::instant(500, "c", "a"),
            ProbeEvent::instant(100, "c", "b"), // goes back in time
            ProbeEvent::instant(50, "other", "c"), // separate track: fine
        ];
        let text = to_chrome_trace(events.iter());
        let v = Json::parse(&text).unwrap();
        let ts: Vec<f64> = v
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("tid").unwrap().as_u64() == Some(0))
            .filter_map(|e| e.get("ts").and_then(Json::as_f64))
            .collect();
        assert_eq!(ts, vec![0.5, 0.5]);
    }

    #[test]
    fn balances_spans() {
        let mut events: Vec<ProbeEvent> = Vec::new();
        // Unclosed Begin...
        let mut b = ProbeEvent::instant(10, "c", "open");
        b.kind = EventKind::Begin;
        events.push(b);
        // ...and a stray End on another track.
        let mut e = ProbeEvent::instant(10, "d", "stray");
        e.kind = EventKind::End;
        events.push(e);
        let text = to_chrome_trace(events.iter());
        let v = Json::parse(&text).unwrap();
        let (mut begins, mut ends) = (0, 0);
        for ev in v.get("traceEvents").unwrap().as_arr().unwrap() {
            match ev.get("ph").unwrap().as_str().unwrap() {
                "B" => begins += 1,
                "E" => ends += 1,
                _ => {}
            }
        }
        assert_eq!(begins, 1);
        assert_eq!(ends, 1, "open span closed, stray end dropped");
    }

    #[test]
    fn sub_microsecond_ticks_keep_precision() {
        let events = [ProbeEvent::instant(250, "c", "quarter")];
        let text = to_chrome_trace(events.iter());
        assert!(text.contains("0.25"), "{text}");
    }
}
