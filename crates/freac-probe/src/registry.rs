//! The hierarchical counter registry.
//!
//! Every metric lives under a dotted name (`sim.dram.reads`,
//! `cache.llc.hits`, `experiments.pool.jobs_completed`). Three metric
//! kinds cover the stack:
//!
//! * **counters** — monotonic `u64` totals. Deterministic by contract:
//!   anything whose value can vary run-to-run (wall-clock, scheduling)
//!   must not be a counter, so the `counters` section of `metrics.json`
//!   can be diffed against a committed baseline.
//! * **gauges** — point-in-time `f64` values (configuration constants,
//!   rates, wall-clock durations). Merged by maximum.
//! * **histograms** — power-of-two bucketed distributions with exact
//!   count/sum, for per-set access spreads and pass latencies.
//!
//! All maps are `BTreeMap`s so iteration, export, and equality are
//! deterministic. [`CounterRegistry::merge`] is commutative and
//! associative for all three kinds, which is what makes counters
//! identical between 1-worker and N-worker harness runs: the merge order
//! may differ, the merged totals cannot.

use std::collections::BTreeMap;

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// whose bit-width is `i`, i.e. bucket 0 holds zeros and bucket 64 holds
/// values of 2^63 and above.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two bucketed histogram with exact count and sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts observed values with bit-width `i`.
    buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0; HISTOGRAM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index of a value: its bit width (0 for 0).
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty `(bucket_index, count)` pairs in ascending bucket order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Rebuilds a histogram from exported parts (used by the metrics.json
    /// importer). `buckets` holds `(index, count)` pairs.
    pub fn from_parts(
        buckets: &[(usize, u64)],
        sum: u64,
        min: Option<u64>,
        max: Option<u64>,
    ) -> Result<Self, String> {
        let mut h = Histogram::default();
        for &(i, c) in buckets {
            if i >= HISTOGRAM_BUCKETS {
                return Err(format!("histogram bucket {i} out of range"));
            }
            h.buckets[i] = c;
            h.count += c;
        }
        h.sum = sum;
        h.min = min.unwrap_or(u64::MAX);
        h.max = max.unwrap_or(0);
        Ok(h)
    }
}

/// A named collection of counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        CounterRegistry::default()
    }

    /// Adds `delta` to counter `name` (saturating; created at 0).
    pub fn add(&mut self, name: &str, delta: u64) {
        let c = self.counters.entry_or_insert(name);
        *c = c.saturating_add(delta);
    }

    /// Adds one to counter `name`.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Whether counter `name` has been touched.
    pub fn has_counter(&self, name: &str) -> bool {
        self.counters.contains_key(name)
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Raises gauge `name` to `value` if larger (the merge rule, usable
    /// directly for high-water marks).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let g = self.gauges.entry(name.to_owned()).or_insert(f64::MIN);
        if value > *g {
            *g = value;
        }
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// Histogram `name`, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Counter names sharing a dotted `prefix` (e.g. `"sim.dram"`).
    pub fn counters_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, u64)> {
        self.counters().filter(move |(k, _)| {
            k.strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with('.'))
        })
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take the maximum,
    /// histograms merge bucket-wise. Commutative and associative, so
    /// merge order (i.e. worker scheduling) cannot change the result.
    pub fn merge(&mut self, other: &CounterRegistry) {
        for (k, &v) in &other.counters {
            let c = self.counters.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(v);
        }
        for (k, &v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(f64::MIN);
            if v > *g {
                *g = v;
            }
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Inserts a counter at an absolute value (importer use).
    pub(crate) fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Inserts a histogram wholesale (importer use).
    pub(crate) fn insert_histogram(&mut self, name: &str, h: Histogram) {
        self.histograms.insert(name.to_owned(), h);
    }
}

/// `entry(name.to_owned()).or_insert(0)` without allocating on the hot
/// (existing-key) path.
trait EntryOrInsert {
    fn entry_or_insert(&mut self, name: &str) -> &mut u64;
}

impl EntryOrInsert for BTreeMap<String, u64> {
    fn entry_or_insert(&mut self, name: &str) -> &mut u64 {
        if !self.contains_key(name) {
            self.insert(name.to_owned(), 0);
        }
        self.get_mut(name).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut r = CounterRegistry::new();
        r.add("a.b", 3);
        r.inc("a.b");
        assert_eq!(r.counter("a.b"), 4);
        assert_eq!(r.counter("missing"), 0);
        r.add("a.b", u64::MAX);
        assert_eq!(r.counter("a.b"), u64::MAX);
    }

    #[test]
    fn histogram_buckets_by_bit_width() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = CounterRegistry::new();
        a.add("c", 2);
        a.set_gauge("g", 1.5);
        a.observe("h", 7);
        let mut b = CounterRegistry::new();
        b.add("c", 5);
        b.add("only_b", 1);
        b.set_gauge("g", 0.5);
        b.observe("h", 900);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 7);
        assert_eq!(ab.gauge("g"), Some(1.5));
        assert_eq!(ab.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn counters_under_prefix() {
        let mut r = CounterRegistry::new();
        r.add("sim.dram.reads", 1);
        r.add("sim.dram.writes", 2);
        r.add("sim.dramx.other", 3);
        r.add("cache.hits", 4);
        let names: Vec<_> = r.counters_under("sim.dram").map(|(k, _)| k).collect();
        assert_eq!(names, vec!["sim.dram.reads", "sim.dram.writes"]);
    }

    #[test]
    fn gauge_merge_takes_max() {
        let mut r = CounterRegistry::new();
        r.gauge_max("w", 3.0);
        r.gauge_max("w", 2.0);
        assert_eq!(r.gauge("w"), Some(3.0));
    }
}
