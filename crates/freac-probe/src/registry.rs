//! The hierarchical counter registry.
//!
//! Every metric lives under a dotted name (`sim.dram.reads`,
//! `cache.llc.hits`, `experiments.pool.jobs_completed`). Three metric
//! kinds cover the stack:
//!
//! * **counters** — monotonic `u64` totals. Deterministic by contract:
//!   anything whose value can vary run-to-run (wall-clock, scheduling)
//!   must not be a counter, so the `counters` section of `metrics.json`
//!   can be diffed against a committed baseline.
//! * **gauges** — point-in-time `f64` values (configuration constants,
//!   rates, wall-clock durations). Merged by maximum.
//! * **histograms** — power-of-two bucketed distributions with exact
//!   count/sum, for per-set access spreads and pass latencies.
//!
//! All maps are `BTreeMap`s so iteration, export, and equality are
//! deterministic. [`CounterRegistry::merge`] is commutative and
//! associative for all three kinds, which is what makes counters
//! identical between 1-worker and N-worker harness runs: the merge order
//! may differ, the merged totals cannot.

use std::collections::BTreeMap;

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// whose bit-width is `i`, i.e. bucket 0 holds zeros and bucket 64 holds
/// values of 2^63 and above.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two bucketed histogram with exact count and sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts observed values with bit-width `i`.
    buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0; HISTOGRAM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index of a value: its bit width (0 for 0).
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value bounds `[lo, hi]` of bucket `i` (bucket 0 holds only zeros).
    fn bucket_bounds(i: usize) -> (f64, f64) {
        if i == 0 {
            (0.0, 0.0)
        } else {
            let lo = 2f64.powi(i as i32 - 1);
            (lo, lo.mul_add(2.0, -1.0))
        }
    }

    /// Value at integer rank `r` (0-based over the sorted observations),
    /// assuming `first`/`last` are the outermost non-empty buckets:
    /// observations inside one bucket are spread linearly across its value
    /// range, with the edge buckets clipped to the exact observed min/max.
    fn value_at_rank(&self, r: u64, first: usize, last: usize) -> f64 {
        let mut below = 0u64;
        for i in first..=last {
            let c = self.buckets[i];
            if c == 0 {
                continue;
            }
            if r < below + c {
                let (mut lo, mut hi) = Self::bucket_bounds(i);
                if i == first {
                    lo = lo.max(self.min as f64);
                }
                if i == last {
                    hi = hi.min(self.max as f64);
                }
                let hi = hi.max(lo);
                let frac = if c == 1 {
                    0.0
                } else {
                    (r - below) as f64 / (c - 1) as f64
                };
                return lo + frac * (hi - lo);
            }
            below += c;
        }
        self.max as f64
    }

    /// Estimated `q`-quantile of the observed values (`q` in `[0, 1]`;
    /// `None` when empty or `q` is out of range).
    ///
    /// The estimate interpolates linearly between the order statistics at
    /// `floor(q * (count - 1))` and `ceil(q * (count - 1))`, where an order
    /// statistic's value is reconstructed from the power-of-two buckets by
    /// spreading each bucket's observations evenly across its value range
    /// (clipped to the exact min/max at the edges). The result is exact
    /// when all observations share one bucket and never leaves
    /// `[min, max]`; quantiles are monotone in `q` and, because merging
    /// just adds bucket counts, the estimate for a merged histogram is
    /// independent of merge order.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let first = self.buckets.iter().position(|&c| c > 0).expect("count > 0");
        let last = self
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .expect("count > 0");
        let rank = q * (self.count - 1) as f64;
        let r0 = rank.floor() as u64;
        let r1 = rank.ceil() as u64;
        let v0 = self.value_at_rank(r0, first, last);
        if r1 == r0 {
            return Some(v0);
        }
        let v1 = self.value_at_rank(r1, first, last);
        Some(v0 + (rank - r0 as f64) * (v1 - v0))
    }

    /// Non-empty `(bucket_index, count)` pairs in ascending bucket order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Rebuilds a histogram from exported parts (used by the metrics.json
    /// importer). `buckets` holds `(index, count)` pairs.
    pub fn from_parts(
        buckets: &[(usize, u64)],
        sum: u64,
        min: Option<u64>,
        max: Option<u64>,
    ) -> Result<Self, String> {
        let mut h = Histogram::default();
        for &(i, c) in buckets {
            if i >= HISTOGRAM_BUCKETS {
                return Err(format!("histogram bucket {i} out of range"));
            }
            h.buckets[i] = c;
            h.count += c;
        }
        h.sum = sum;
        h.min = min.unwrap_or(u64::MAX);
        h.max = max.unwrap_or(0);
        Ok(h)
    }
}

/// A named collection of counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        CounterRegistry::default()
    }

    /// Adds `delta` to counter `name` (saturating; created at 0).
    pub fn add(&mut self, name: &str, delta: u64) {
        let c = self.counters.entry_or_insert(name);
        *c = c.saturating_add(delta);
    }

    /// Adds one to counter `name`.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Whether counter `name` has been touched.
    pub fn has_counter(&self, name: &str) -> bool {
        self.counters.contains_key(name)
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Raises gauge `name` to `value` if larger (the merge rule, usable
    /// directly for high-water marks).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let g = self.gauges.entry(name.to_owned()).or_insert(f64::MIN);
        if value > *g {
            *g = value;
        }
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// Histogram `name`, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Counter names sharing a dotted `prefix` (e.g. `"sim.dram"`).
    pub fn counters_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, u64)> {
        self.counters().filter(move |(k, _)| {
            k.strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with('.'))
        })
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take the maximum,
    /// histograms merge bucket-wise. Commutative and associative, so
    /// merge order (i.e. worker scheduling) cannot change the result.
    pub fn merge(&mut self, other: &CounterRegistry) {
        for (k, &v) in &other.counters {
            let c = self.counters.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(v);
        }
        for (k, &v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(f64::MIN);
            if v > *g {
                *g = v;
            }
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Folds `other` into `self` with every metric name prefixed by
    /// `prefix` (e.g. `"cluster.shard.0."`): counters add, gauges take the
    /// maximum, histograms merge bucket-wise — the same rules as
    /// [`CounterRegistry::merge`], shifted into a namespace. Because the
    /// invariant checker keys off name *suffixes*, namespacing a shard's
    /// registry this way keeps its conservation laws checkable inside the
    /// combined registry, alongside the un-prefixed cluster rollup.
    pub fn merge_namespaced(&mut self, prefix: &str, other: &CounterRegistry) {
        for (k, &v) in &other.counters {
            let name = format!("{prefix}{k}");
            let c = self.counters.entry_or_insert(&name);
            *c = c.saturating_add(v);
        }
        for (k, &v) in &other.gauges {
            let g = self
                .gauges
                .entry(format!("{prefix}{k}"))
                .or_insert(f64::MIN);
            if v > *g {
                *g = v;
            }
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(format!("{prefix}{k}"))
                .or_default()
                .merge(h);
        }
    }

    /// Inserts a counter at an absolute value (importer use).
    pub(crate) fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Inserts a histogram wholesale (importer use).
    pub(crate) fn insert_histogram(&mut self, name: &str, h: Histogram) {
        self.histograms.insert(name.to_owned(), h);
    }

    /// Merges a standalone histogram into the named histogram, creating it
    /// if absent — for exporting distributions assembled outside any
    /// registry (e.g. the sampled-serving latency mixture).
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms.entry(name.to_owned()).or_default().merge(h);
    }
}

/// `entry(name.to_owned()).or_insert(0)` without allocating on the hot
/// (existing-key) path.
trait EntryOrInsert {
    fn entry_or_insert(&mut self, name: &str) -> &mut u64;
}

impl EntryOrInsert for BTreeMap<String, u64> {
    fn entry_or_insert(&mut self, name: &str) -> &mut u64 {
        if !self.contains_key(name) {
            self.insert(name.to_owned(), 0);
        }
        self.get_mut(name).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let mut r = CounterRegistry::new();
        r.add("a.b", 3);
        r.inc("a.b");
        assert_eq!(r.counter("a.b"), 4);
        assert_eq!(r.counter("missing"), 0);
        r.add("a.b", u64::MAX);
        assert_eq!(r.counter("a.b"), u64::MAX);
    }

    #[test]
    fn histogram_buckets_by_bit_width() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (10, 1)]);
    }

    #[test]
    fn quantiles_of_a_constant_are_exact() {
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.observe(7);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(7.0), "q={q}");
        }
        assert_eq!(Histogram::default().quantile(0.5), None);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        assert_eq!(h.quantile(f64::NAN), None);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_min_max() {
        let mut h = Histogram::default();
        for v in [0, 1, 3, 9, 40, 41, 1000, 65_000, 1 << 40] {
            h.observe(v);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q).unwrap();
            assert!(v >= prev, "quantiles must be monotone in q at q={q}");
            assert!((0.0..=(1u64 << 40) as f64).contains(&v));
            prev = v;
        }
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some((1u64 << 40) as f64));
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        // 1..=100 uniform: the p50 target rank 49.5 lands in bucket 6
        // (values 32..=63, 32 observations, 31 smaller values before it),
        // so the interpolated estimate must sit inside that bucket and
        // within a bucket-width of the true median 50.5.
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((32.0..=63.0).contains(&p50), "p50={p50}");
        assert!((p50 - 50.5).abs() <= 32.0);
        // The extreme quantiles clip to the exact observations.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        let p99 = h.quantile(0.99).unwrap();
        assert!((64.0..=100.0).contains(&p99), "p99={p99}");
    }

    #[test]
    fn quantiles_survive_merge_commutativity() {
        // Quantiles are a pure function of the merged buckets/min/max, so
        // a+b and b+a must agree bit-for-bit at every probed q.
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for i in 0..200u64 {
            a.observe(i * i % 977);
            b.observe((i * 31) % (1 << 20));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            assert_eq!(ab.quantile(q), ba.quantile(q), "q={q}");
        }
        // And merging cannot move a quantile outside the union's range.
        assert_eq!(ab.quantile(0.0), Some(0.0));
        assert_eq!(ab.quantile(1.0).unwrap(), ab.max().unwrap() as f64);
    }

    /// Relative tolerance for the bracket property: within-bucket linear
    /// interpolation computes the same real number along different float
    /// paths on the two sides, so equality at the bracket edge can be off
    /// by a few ulps.
    fn bracket_eps(lo: f64, hi: f64) -> f64 {
        1e-9 * (1.0 + lo.abs().max(hi.abs()))
    }

    /// Asserts `merge(a, b)`'s quantile lies between the per-source
    /// quantiles at every probed `q` — the cross-shard merge contract.
    fn assert_quantiles_bracket(a: &Histogram, b: &Histogram) {
        let mut m = a.clone();
        m.merge(b);
        for i in 0..=100 {
            let q = f64::from(i) / 100.0;
            let qa = a.quantile(q).unwrap();
            let qb = b.quantile(q).unwrap();
            let qm = m.quantile(q).unwrap();
            let (lo, hi) = (qa.min(qb), qa.max(qb));
            let eps = bracket_eps(lo, hi);
            assert!(
                qm >= lo - eps && qm <= hi + eps,
                "merged q{q} = {qm} outside per-source bracket [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn merged_quantiles_bracket_per_source_quantiles() {
        // Disjoint buckets: one source entirely below the other.
        let mut low = Histogram::default();
        let mut high = Histogram::default();
        for i in 0..50u64 {
            low.observe(i % 16);
            high.observe(1_000 + i * 37);
        }
        assert_quantiles_bracket(&low, &high);

        // Same bucket, different values (the spread estimator's worst
        // case: per-source min/max clips differ from the merged clip).
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for _ in 0..100 {
            a.observe(64);
            b.observe(127);
        }
        a.observe(32); // widen a's clip to the bucket floor
        assert_quantiles_bracket(&a, &b);

        // Lopsided counts: one observation vs. a heavy distribution.
        let mut single = Histogram::default();
        single.observe(50);
        let mut heavy = Histogram::default();
        for i in 0..1_000u64 {
            heavy.observe((i * i) % 4_096);
        }
        assert_quantiles_bracket(&single, &heavy);
        assert_quantiles_bracket(&heavy, &single);

        // Edge buckets: zeros on one side, near-saturated on the other.
        let mut zeros = Histogram::default();
        let mut huge = Histogram::default();
        for _ in 0..10 {
            zeros.observe(0);
            huge.observe(u64::MAX - 7);
        }
        assert_quantiles_bracket(&zeros, &huge);
    }

    /// The bucket-resolution bracket: within-bucket smearing can push a
    /// merged quantile outside the strict per-source bracket, but the
    /// rank→bucket mapping is exact, so the estimate can never stray more
    /// than one power-of-two bucket (a factor of 2) beyond it.
    fn assert_quantiles_bracket_within_bucket_resolution(a: &Histogram, b: &Histogram) {
        let mut m = a.clone();
        m.merge(b);
        for i in 0..=100 {
            let q = f64::from(i) / 100.0;
            let qa = a.quantile(q).unwrap();
            let qb = b.quantile(q).unwrap();
            let qm = m.quantile(q).unwrap();
            let (lo, hi) = (qa.min(qb), qa.max(qb));
            let eps = bracket_eps(lo, hi);
            assert!(
                qm >= lo / 2.0 - 1.0 - eps && qm <= hi * 2.0 + 1.0 + eps,
                "merged q{q} = {qm} more than a bucket outside per-source bracket [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn merged_quantiles_bracket_on_adversarial_spreads() {
        // A bucket-boundary comb against a mid-bucket spike: every comb
        // value is a power of two (the loneliest point of its bucket),
        // merged with 500 observations at the top of one shared bucket.
        // The merged histogram smears those 501 same-bucket entries across
        // the bucket's whole value range, so the strict bracket can fail —
        // but only within the shared bucket, never beyond it.
        let mut comb = Histogram::default();
        for i in 0..20u32 {
            comb.observe(1u64 << i);
        }
        let mut spike = Histogram::default();
        for _ in 0..500 {
            spike.observe((1u64 << 10) - 1);
        }
        assert_quantiles_bracket_within_bucket_resolution(&comb, &spike);

        // Identical shapes shifted by one bucket.
        let mut even = Histogram::default();
        let mut odd = Histogram::default();
        for i in 0..64u64 {
            even.observe(1 << (2 * (i % 8)));
            odd.observe(2 << (2 * (i % 8)));
        }
        assert_quantiles_bracket_within_bucket_resolution(&even, &odd);
    }

    #[test]
    fn merge_namespaced_prefixes_every_metric() {
        let mut shard = CounterRegistry::new();
        shard.add("serve.requests.submitted", 5);
        shard.set_gauge("serve.ways.compute", 8.0);
        shard.observe("serve.latency_ps", 300);

        let mut cluster = CounterRegistry::new();
        cluster.add("cluster.steals", 1);
        cluster.merge_namespaced("cluster.shard.0.", &shard);
        cluster.merge_namespaced("cluster.shard.0.", &shard);

        assert_eq!(
            cluster.counter("cluster.shard.0.serve.requests.submitted"),
            10
        );
        assert_eq!(cluster.counter("serve.requests.submitted"), 0);
        assert_eq!(
            cluster.gauge("cluster.shard.0.serve.ways.compute"),
            Some(8.0)
        );
        assert_eq!(
            cluster
                .histogram("cluster.shard.0.serve.latency_ps")
                .unwrap()
                .count(),
            2
        );
        // The un-namespaced rollup is untouched.
        assert_eq!(cluster.counter("cluster.steals"), 1);

        // Namespaced-merge then plain-merge equals plain-merge of the
        // namespaced copy: the prefix is pure renaming.
        let mut direct = CounterRegistry::new();
        direct.add("cluster.shard.0.serve.requests.submitted", 10);
        assert_eq!(
            cluster.counter("cluster.shard.0.serve.requests.submitted"),
            direct.counter("cluster.shard.0.serve.requests.submitted")
        );
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = CounterRegistry::new();
        a.add("c", 2);
        a.set_gauge("g", 1.5);
        a.observe("h", 7);
        let mut b = CounterRegistry::new();
        b.add("c", 5);
        b.add("only_b", 1);
        b.set_gauge("g", 0.5);
        b.observe("h", 900);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 7);
        assert_eq!(ab.gauge("g"), Some(1.5));
        assert_eq!(ab.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn counters_under_prefix() {
        let mut r = CounterRegistry::new();
        r.add("sim.dram.reads", 1);
        r.add("sim.dram.writes", 2);
        r.add("sim.dramx.other", 3);
        r.add("cache.hits", 4);
        let names: Vec<_> = r.counters_under("sim.dram").map(|(k, _)| k).collect();
        assert_eq!(names, vec!["sim.dram.reads", "sim.dram.writes"]);
    }

    #[test]
    fn gauge_merge_takes_max() {
        let mut r = CounterRegistry::new();
        r.gauge_max("w", 3.0);
        r.gauge_max("w", 2.0);
        assert_eq!(r.gauge("w"), Some(3.0));
    }
}
