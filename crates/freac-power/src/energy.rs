//! Energy accounting for FReaC Cache accelerator runs.
//!
//! The paper estimates FReaC power "by accounting for the number of reads
//! from the compute clusters and scratchpads", plus 9 mW per switch-box
//! link at full load, plus leakage (Sec. V-C). [`EnergyCounter`] implements
//! exactly that accounting; dividing by the run's duration yields power.

use crate::sram::SramParams;

/// Energy of a 32-bit MAC operation at 32 nm, in picojoules.
pub const MAC_OP_PJ: f64 = 2.0;

/// Energy of one operand-crossbar traversal, in picojoules.
pub const XBAR_HOP_PJ: f64 = 0.35;

/// Energy of latching one bit in the intermediate registers, in picojoules.
pub const REG_BIT_PJ: f64 = 0.01;

/// Power of one switch-box link at 100 % load, in watts (paper Sec. V-C).
pub const LINK_POWER_W: f64 = 0.009;

/// Dynamic energy split by component, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Configuration-row reads from compute sub-arrays and tag arrays.
    pub config_pj: f64,
    /// Scratchpad word reads and writes.
    pub scratchpad_pj: f64,
    /// Multiply-accumulate operations.
    pub mac_pj: f64,
    /// Operand-crossbar traversals.
    pub xbar_pj: f64,
    /// Intermediate-register bit latches.
    pub reg_pj: f64,
    /// Off-chip DRAM line transfers.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total across components.
    pub fn total_pj(&self) -> f64 {
        self.config_pj
            + self.scratchpad_pj
            + self.mac_pj
            + self.xbar_pj
            + self.reg_pj
            + self.dram_pj
    }

    /// The component shares as fractions of the total (zeros if empty).
    pub fn shares(&self) -> [f64; 6] {
        let t = self.total_pj();
        if t == 0.0 {
            return [0.0; 6];
        }
        [
            self.config_pj / t,
            self.scratchpad_pj / t,
            self.mac_pj / t,
            self.xbar_pj / t,
            self.reg_pj / t,
            self.dram_pj / t,
        ]
    }
}

/// Accumulates energy in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyCounter {
    subarray_reads: u64,
    scratchpad_reads: u64,
    scratchpad_writes: u64,
    mac_ops: u64,
    xbar_hops: u64,
    reg_bits: u64,
    dram_lines: u64,
}

impl EnergyCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        EnergyCounter::default()
    }

    /// Records `n` compute sub-array configuration reads.
    pub fn add_subarray_reads(&mut self, n: u64) {
        self.subarray_reads += n;
    }

    /// Records `n` scratchpad word reads.
    pub fn add_scratchpad_reads(&mut self, n: u64) {
        self.scratchpad_reads += n;
    }

    /// Records `n` scratchpad word writes.
    pub fn add_scratchpad_writes(&mut self, n: u64) {
        self.scratchpad_writes += n;
    }

    /// Records `n` MAC operations.
    pub fn add_mac_ops(&mut self, n: u64) {
        self.mac_ops += n;
    }

    /// Records `n` crossbar traversals.
    pub fn add_xbar_hops(&mut self, n: u64) {
        self.xbar_hops += n;
    }

    /// Records `n` register bit latches.
    pub fn add_reg_bits(&mut self, n: u64) {
        self.reg_bits += n;
    }

    /// Records `n` DRAM line transfers.
    pub fn add_dram_lines(&mut self, n: u64) {
        self.dram_lines += n;
    }

    /// Total dynamic energy in picojoules.
    pub fn dynamic_pj(&self) -> f64 {
        let b = self.breakdown();
        b.config_pj + b.scratchpad_pj + b.mac_pj + b.xbar_pj + b.reg_pj + b.dram_pj
    }

    /// Per-component dynamic energy, for the energy-breakdown analysis.
    pub fn breakdown(&self) -> EnergyBreakdown {
        let sub = SramParams::subarray_8kb_32nm().access_energy_pj;
        EnergyBreakdown {
            config_pj: self.subarray_reads as f64 * sub,
            scratchpad_pj: (self.scratchpad_reads + self.scratchpad_writes) as f64 * sub,
            mac_pj: self.mac_ops as f64 * MAC_OP_PJ,
            xbar_pj: self.xbar_hops as f64 * XBAR_HOP_PJ,
            reg_pj: self.reg_bits as f64 * REG_BIT_PJ,
            dram_pj: self.dram_lines as f64 * crate::sram::dram_line_energy_pj(64),
        }
    }

    /// Average power in watts over a run of `duration_ps`, including
    /// `leakage_w` of static power and `active_links` switch-box links at
    /// full load.
    ///
    /// # Panics
    ///
    /// Panics if `duration_ps` is zero.
    pub fn average_power_w(&self, duration_ps: u64, leakage_w: f64, active_links: usize) -> f64 {
        assert!(duration_ps > 0, "duration must be positive");
        let seconds = duration_ps as f64 * 1e-12;
        self.dynamic_pj() * 1e-12 / seconds + leakage_w + active_links as f64 * LINK_POWER_W
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &EnergyCounter) {
        self.subarray_reads += other.subarray_reads;
        self.scratchpad_reads += other.scratchpad_reads;
        self.scratchpad_writes += other.scratchpad_writes;
        self.mac_ops += other.mac_ops;
        self.xbar_hops += other.xbar_hops;
        self.reg_bits += other.reg_bits;
        self.dram_lines += other.dram_lines;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_energy_accumulates() {
        let mut e = EnergyCounter::new();
        e.add_subarray_reads(1000);
        e.add_mac_ops(100);
        let expected = 1000.0 * 3.69 + 100.0 * MAC_OP_PJ;
        assert!((e.dynamic_pj() - expected).abs() < 1e-9);
    }

    #[test]
    fn power_includes_leakage_and_links() {
        let e = EnergyCounter::new();
        // No dynamic activity: power is exactly leakage + links.
        let p = e.average_power_w(1_000_000, 1.125, 10);
        assert!((p - (1.125 + 0.09)).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = EnergyCounter::new();
        a.add_scratchpad_reads(5);
        let mut b = EnergyCounter::new();
        b.add_scratchpad_reads(7);
        b.add_dram_lines(1);
        a.merge(&b);
        assert!(a.dynamic_pj() > 12.0 * 3.69);
    }

    #[test]
    fn sustained_compute_power_is_watts_scale() {
        // 32 clusters x 4 sub-array reads per cycle at 4 GHz for 1 ms.
        let mut e = EnergyCounter::new();
        let cycles = 4_000_000_000u64 / 1000; // 1 ms at 4 GHz
        e.add_subarray_reads(cycles * 32 * 4);
        let p = e.average_power_w(1_000_000_000, 0.14, 0);
        // 128 reads/cycle x 3.69 pJ x 4 GHz ~ 1.9 W dynamic.
        assert!(p > 1.0 && p < 3.0, "got {p} W");
    }
}
