//! Edge-CPU power constants (McPAT, 32 nm low-power library).
//!
//! The host is an 8-core A15-class out-of-order CPU at 4 GHz (Table I); the
//! Fig. 14 comparison drops A7-class embedded cores into the LLC. McPAT is
//! a closed parameter source, so we embed representative per-core numbers
//! consistent with the paper's relative results (the multi-threaded CPU
//! runs at roughly twice the power of the FReaC accelerator, and an A7 is
//! roughly an order of magnitude smaller/cheaper than an A15).

/// Active power of one A15-class core at 4 GHz, watts.
pub const A15_CORE_ACTIVE_W: f64 = 1.6;

/// Idle/static power of one A15-class core, watts.
pub const A15_CORE_IDLE_W: f64 = 0.12;

/// Active power of one A7-class embedded core, watts.
pub const A7_CORE_ACTIVE_W: f64 = 0.35;

/// Idle/static power of one A7-class embedded core, watts.
pub const A7_CORE_IDLE_W: f64 = 0.03;

/// Uncore power (interconnect, memory controller) when the chip is under
/// load, watts.
pub const UNCORE_ACTIVE_W: f64 = 0.9;

/// Area of one A7-class core, mm² (paper Sec. VI cites ~0.49 mm²).
pub const A7_CORE_AREA_MM2: f64 = 0.49;

/// Power of the host CPU complex with `active` of `total` A15 cores busy.
///
/// # Panics
///
/// Panics if `active > total`.
pub fn host_cpu_power_w(active: usize, total: usize) -> f64 {
    assert!(active <= total, "cannot have more active cores than cores");
    active as f64 * A15_CORE_ACTIVE_W + (total - active) as f64 * A15_CORE_IDLE_W + UNCORE_ACTIVE_W
}

/// Power of `n` active A7-class embedded cores in the LLC.
pub fn embedded_cores_power_w(n: usize) -> f64 {
    n as f64 * A7_CORE_ACTIVE_W
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vs_all_cores() {
        let one = host_cpu_power_w(1, 8);
        let all = host_cpu_power_w(8, 8);
        assert!(all > 4.0 * one / 2.0);
        // 8 active A15s plus uncore land in the low-teens of watts.
        assert!(all > 10.0 && all < 18.0, "got {all}");
    }

    #[test]
    fn a7_is_much_cheaper_than_a15() {
        let a15 = std::hint::black_box(A15_CORE_ACTIVE_W);
        assert!(a15 / A7_CORE_ACTIVE_W > 4.0);
        assert!((embedded_cores_power_w(16) - 5.6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "active")]
    fn active_bound_checked() {
        let _ = host_cpu_power_w(9, 8);
    }
}
