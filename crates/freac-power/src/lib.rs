//! Area, energy, and power models for the FReaC Cache reproduction.
//!
//! The paper derives its physical numbers from Cacti 6.5, McPAT, DSENT,
//! Xilinx XPE, and RTL synthesis at 32 nm. Those tools are closed parameter
//! sources, so this crate embeds the published constants (Table II,
//! Sec. V-A) and small scaling models around them:
//!
//! * [`sram`] — sub-array access time/energy/area (Cacti-lite);
//! * [`mcc`] — micro-compute-cluster component areas and the slice overhead
//!   computation that reproduces the 3.5 % / 15.3 % headline numbers;
//! * [`energy`] — an energy accumulator for accelerator runs (sub-array
//!   reads, MACs, crossbar hops, switch-box links, leakage);
//! * [`cpu`] — McPAT-like edge-core power (A15-class hosts, A7-class
//!   embedded cores for the Fig. 14 comparison);
//! * [`fpga`] — XPE-like FPGA power for the ZCU102 and Ultra96 baselines.

pub mod cpu;
pub mod energy;
pub mod fpga;
pub mod mcc;
pub mod sram;

pub use energy::EnergyCounter;
pub use mcc::{slice_overhead_report, SliceOverheadReport};
pub use sram::SramParams;
