//! SRAM sub-array parameters (paper Table II) and a Cacti-lite scaling
//! model.
//!
//! The anchor point is the 8 KB compute sub-array at 32 nm:
//! 0.136 mm x 0.096 mm, 0.12 ns access, 3.69 pJ per 32-bit access. Other
//! sizes scale area linearly with capacity and access time/energy with the
//! square root of capacity (wordline/bitline lengths grow with the array's
//! linear dimension), which is the first-order behaviour Cacti exhibits for
//! small arrays.

/// Parameters of one SRAM array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramParams {
    /// Capacity in bytes.
    pub bytes: usize,
    /// Height in millimetres.
    pub height_mm: f64,
    /// Width in millimetres.
    pub width_mm: f64,
    /// Access time in picoseconds.
    pub access_ps: u64,
    /// Energy per access in picojoules.
    pub access_energy_pj: f64,
}

impl SramParams {
    /// The paper's 8 KB compute sub-array at 32 nm (Table II).
    pub fn subarray_8kb_32nm() -> Self {
        SramParams {
            bytes: 8 * 1024,
            height_mm: 0.136,
            width_mm: 0.096,
            access_ps: 120,
            access_energy_pj: 3.69,
        }
    }

    /// Area in square millimetres.
    pub fn area_mm2(&self) -> f64 {
        self.height_mm * self.width_mm
    }

    /// Cacti-lite: scales the 8 KB anchor to an arbitrary capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn scaled_to(bytes: usize) -> Self {
        assert!(bytes > 0, "capacity must be positive");
        let anchor = SramParams::subarray_8kb_32nm();
        let ratio = bytes as f64 / anchor.bytes as f64;
        let linear = ratio.sqrt();
        SramParams {
            bytes,
            height_mm: anchor.height_mm * linear,
            width_mm: anchor.width_mm * linear,
            access_ps: ((anchor.access_ps as f64) * linear).round() as u64,
            access_energy_pj: anchor.access_energy_pj * linear,
        }
    }
}

/// L3 cache slice dimensions at 32 nm (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceParams {
    /// Capacity in bytes.
    pub bytes: usize,
    /// Height in millimetres.
    pub height_mm: f64,
    /// Width in millimetres.
    pub width_mm: f64,
    /// Data sub-arrays in the slice.
    pub data_subarrays: usize,
}

impl SliceParams {
    /// The paper's 1.25 MB slice (Table II).
    pub fn paper_slice_32nm() -> Self {
        SliceParams {
            bytes: 1_310_720,
            height_mm: 1.63,
            width_mm: 1.92,
            data_subarrays: 160,
        }
    }

    /// Area in square millimetres.
    pub fn area_mm2(&self) -> f64 {
        self.height_mm * self.width_mm
    }
}

/// Total LLC leakage power in watts (paper Sec. V, via McPAT).
pub const LLC_LEAKAGE_W: f64 = 1.125;

/// Leakage of one slice in watts.
pub fn slice_leakage_w(slices: usize) -> f64 {
    LLC_LEAKAGE_W / slices as f64
}

/// DRAM access energy per bit in picojoules (paper Sec. I cites
/// 28–45 pJ/bit at 40 nm; we use the midpoint).
pub const DRAM_PJ_PER_BIT: f64 = 36.5;

/// Energy to move one 64-byte line to/from DRAM, in picojoules.
pub fn dram_line_energy_pj(line_bytes: usize) -> f64 {
    DRAM_PJ_PER_BIT * (line_bytes * 8) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_anchor_values() {
        let s = SramParams::subarray_8kb_32nm();
        assert_eq!(s.bytes, 8192);
        assert_eq!(s.access_ps, 120);
        assert!((s.area_mm2() - 0.013056).abs() < 1e-6);
        // One access fits in a 4 GHz cycle (250 ps) — the property that lets
        // FReaC reconfigure its LUTs every cycle (paper Sec. V).
        assert!(s.access_ps < 250);
    }

    #[test]
    fn slice_dimensions() {
        let s = SliceParams::paper_slice_32nm();
        assert!((s.area_mm2() - 3.1296).abs() < 1e-4);
        assert_eq!(s.data_subarrays, 160);
    }

    #[test]
    fn scaling_is_monotone() {
        let small = SramParams::scaled_to(4 * 1024);
        let anchor = SramParams::scaled_to(8 * 1024);
        let big = SramParams::scaled_to(32 * 1024);
        assert!(small.access_ps < anchor.access_ps);
        assert!(big.access_ps > anchor.access_ps);
        assert!(big.access_energy_pj > anchor.access_energy_pj);
        // The anchor reproduces itself.
        assert_eq!(anchor, SramParams::subarray_8kb_32nm());
    }

    #[test]
    fn dram_energy_dwarfs_sram_energy() {
        // The motivating gap: a DRAM line transfer costs orders of magnitude
        // more than an on-chip sub-array access.
        let line = dram_line_energy_pj(64);
        let sram = SramParams::subarray_8kb_32nm().access_energy_pj;
        assert!(line > 1000.0 * sram);
    }

    #[test]
    fn leakage_split() {
        assert!((slice_leakage_w(8) - 0.140625).abs() < 1e-9);
    }
}
