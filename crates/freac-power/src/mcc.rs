//! Micro-compute-cluster component areas and slice overhead (paper
//! Sec. V-A).
//!
//! RTL synthesis at 45 nm scaled to 32 nm gives the component areas below.
//! Adding cluster logic to all 32 possible MCC positions costs ~0.11 mm²
//! (3.5 % of the slice); enabling large tiles additionally needs the
//! switch-box fabric with its configuration memories, bringing the total to
//! ~0.48 mm² (15.3 %).

use crate::sram::SliceParams;

/// Area of the 32-bit MAC unit, in square micrometres.
pub const MAC_AREA_UM2: f64 = 1011.0;

/// Area of the 256 intermediate-value flip-flops, in square micrometres.
pub const REGS_AREA_UM2: f64 = 1086.0;

/// Area of one 32x1 mux tree, in square micrometres.
pub const MUX_TREE_AREA_UM2: f64 = 45.0;

/// Mux trees per cluster (one per compute sub-array).
pub const MUX_TREES_PER_CLUSTER: usize = 4;

/// Area of the operand crossbar, in square micrometres.
pub const XBAR_AREA_UM2: f64 = 1239.0;

/// Global routing and link area for the large-tile switch fabric, in square
/// micrometres (28 switch boxes, 32-bit links).
pub const ROUTING_LINKS_AREA_UM2: f64 = 3469.0;

/// Switch-box fabric overhead per slice (switch boxes, links, and one
/// wide-output 8 KB configuration memory per four MCCs), in square
/// millimetres. The paper reports this as a conservative 0.35 mm².
pub const SWITCH_FABRIC_MM2: f64 = 0.35;

/// Maximum micro compute clusters per slice (16 ways converted).
pub const MAX_MCCS_PER_SLICE: usize = 32;

/// Area added per micro compute cluster, in square micrometres.
pub fn mcc_area_um2() -> f64 {
    MAC_AREA_UM2 + REGS_AREA_UM2 + XBAR_AREA_UM2 + MUX_TREES_PER_CLUSTER as f64 * MUX_TREE_AREA_UM2
}

/// The Sec. V-A overhead accounting for one slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceOverheadReport {
    /// Slice area (Table II), mm².
    pub slice_area_mm2: f64,
    /// Area of one cluster's added logic, mm².
    pub per_cluster_mm2: f64,
    /// Added area for the basic mode (cluster logic at all 32 positions),
    /// mm².
    pub basic_mm2: f64,
    /// Basic-mode overhead as a percentage of the slice.
    pub basic_pct: f64,
    /// Added area including the large-tile switch fabric, mm².
    pub with_fabric_mm2: f64,
    /// Large-tile overhead as a percentage of the slice.
    pub with_fabric_pct: f64,
}

/// Computes the overhead report for the paper's slice.
pub fn slice_overhead_report() -> SliceOverheadReport {
    let slice = SliceParams::paper_slice_32nm().area_mm2();
    let per_cluster = mcc_area_um2() / 1e6;
    let basic = per_cluster * MAX_MCCS_PER_SLICE as f64;
    let with_fabric = basic + SWITCH_FABRIC_MM2 + ROUTING_LINKS_AREA_UM2 / 1e6;
    SliceOverheadReport {
        slice_area_mm2: slice,
        per_cluster_mm2: per_cluster,
        basic_mm2: basic,
        basic_pct: basic / slice * 100.0,
        with_fabric_mm2: with_fabric,
        with_fabric_pct: with_fabric / slice * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cluster_area_matches_paper() {
        // Paper: "the total area added per cluster is 0.0034 mm^2".
        let a = mcc_area_um2();
        assert!((3300.0..3600.0).contains(&a), "got {a} um^2");
    }

    #[test]
    fn basic_overhead_is_about_3_5_pct() {
        let r = slice_overhead_report();
        assert!(
            (3.3..3.8).contains(&r.basic_pct),
            "basic overhead {}",
            r.basic_pct
        );
        // Paper: 0.109 mm^2 for 32 clusters.
        assert!((0.10..0.12).contains(&r.basic_mm2));
    }

    #[test]
    fn fabric_overhead_is_about_15_pct() {
        let r = slice_overhead_report();
        assert!(
            (14.0..16.0).contains(&r.with_fabric_pct),
            "fabric overhead {}",
            r.with_fabric_pct
        );
    }

    #[test]
    fn overheads_nest() {
        let r = slice_overhead_report();
        assert!(r.with_fabric_mm2 > r.basic_mm2);
        assert!(r.per_cluster_mm2 * 32.0 <= r.basic_mm2 + 1e-12);
    }
}
