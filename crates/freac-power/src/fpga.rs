//! XPE-like FPGA power and capacity models for the two comparison boards
//! (paper Sec. V-C): the large PCIe-class Xilinx ZCU102 and the edge-class
//! Ultra96.

/// Resource capacity and power characteristics of an FPGA board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaBoard {
    /// Board name for reports.
    pub name: &'static str,
    /// Usable 6-input LUTs.
    pub luts: u64,
    /// DSP48 slices.
    pub dsps: u64,
    /// Block RAMs (36 Kb).
    pub brams: u64,
    /// Achievable kernel clock in MHz.
    pub clock_mhz: u64,
    /// Board idle + static power in watts (the ZCU102 draws 12 W idle,
    /// Sec. I).
    pub idle_w: f64,
    /// Dynamic power per LUT per MHz, in microwatts.
    pub uw_per_lut_mhz: f64,
    /// Dynamic power per DSP per MHz, in microwatts.
    pub uw_per_dsp_mhz: f64,
    /// Host-to-board transfer bandwidth in GB/s (PCIe 3.0 x16 for the
    /// ZCU102, AXI for the Ultra96).
    pub link_gbps: f64,
    /// Fixed DMA + configuration overhead per offload, in microseconds
    /// (the paper includes 160 us per Choi et al.).
    pub dma_overhead_us: u64,
}

impl FpgaBoard {
    /// Xilinx ZCU102 (XCZU9EG) on PCIe 3.0 x16.
    pub fn zcu102() -> Self {
        FpgaBoard {
            name: "ZCU102",
            luts: 274_080,
            dsps: 2_520,
            brams: 912,
            clock_mhz: 300,
            idle_w: 12.0,
            uw_per_lut_mhz: 0.055,
            uw_per_dsp_mhz: 1.2,
            link_gbps: 16.0,
            dma_overhead_us: 160,
        }
    }

    /// Avnet Ultra96 (XCZU3EG) standalone SoC board over AXI.
    pub fn ultra96() -> Self {
        FpgaBoard {
            name: "Ultra96",
            luts: 70_560,
            dsps: 360,
            brams: 216,
            clock_mhz: 250,
            idle_w: 2.5,
            uw_per_lut_mhz: 0.055,
            uw_per_dsp_mhz: 1.2,
            link_gbps: 2.0,
            dma_overhead_us: 30,
        }
    }

    /// How many copies of an IP using `luts`/`dsps` fit, capped at the
    /// paper's 256-copy data-parallel instantiation limit.
    pub fn copies_that_fit(&self, luts: u64, dsps: u64) -> u64 {
        if luts == 0 && dsps == 0 {
            return 256;
        }
        let by_lut = self.luts.checked_div(luts).unwrap_or(u64::MAX);
        let by_dsp = self.dsps.checked_div(dsps).unwrap_or(u64::MAX);
        by_lut.min(by_dsp).min(256)
    }

    /// Power with `luts`/`dsps` active at the board clock, in watts.
    pub fn power_w(&self, luts: u64, dsps: u64) -> f64 {
        self.idle_w
            + (luts as f64 * self.uw_per_lut_mhz + dsps as f64 * self.uw_per_dsp_mhz)
                * self.clock_mhz as f64
                * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu102_is_much_bigger_than_ultra96() {
        let z = FpgaBoard::zcu102();
        let u = FpgaBoard::ultra96();
        assert!(z.luts > 3 * u.luts);
        assert!(z.idle_w > 4.0 * u.idle_w);
    }

    #[test]
    fn copies_cap_at_256() {
        let z = FpgaBoard::zcu102();
        assert_eq!(z.copies_that_fit(100, 1), 256);
        assert_eq!(z.copies_that_fit(0, 0), 256);
        // A big IP fits only a few times.
        assert_eq!(z.copies_that_fit(100_000, 0), 2);
        // DSP-bound IP.
        assert_eq!(z.copies_that_fit(10, 1260), 2);
    }

    #[test]
    fn loaded_power_exceeds_idle() {
        let z = FpgaBoard::zcu102();
        let p = z.power_w(200_000, 2000);
        assert!(p > z.idle_w + 3.0, "got {p}");
        assert!(p < 30.0, "got {p}");
    }

    #[test]
    fn ultra96_power_stays_edge_class() {
        let u = FpgaBoard::ultra96();
        let p = u.power_w(u.luts, u.dsps);
        assert!(p < 6.0, "got {p}");
    }
}
