//! Umbrella crate for the FReaC Cache reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can use a single dependency. See the individual crates
//! for full documentation:
//!
//! * [`netlist`] — logic IR, builder DSL, K-LUT technology mapping
//! * [`fold`] — logic-folding scheduler and folded executor
//! * [`hls`] — loop-level kernel front end (mini high-level synthesis)
//! * [`cache`] — sliced LLC substrate and cache-hierarchy simulation
//! * [`sim`] — discrete-event engine, buses, DRAM
//! * [`power`] — area/energy/leakage models (Cacti/McPAT/DSENT analogues)
//! * [`core`] — micro compute clusters, tiles, reconfigurable compute slice
//! * [`kernels`] — MachSuite-style benchmark kernels
//! * [`baselines`] — CPU / FPGA / embedded-core comparison models
//! * [`experiments`] — per-figure/table evaluation harness
//! * [`probe`] — observability: counters, tracing, invariant checks
//! * [`serve`] — multi-tenant request serving: admission, batching, slice scheduling

pub use freac_baselines as baselines;
pub use freac_cache as cache;
pub use freac_core as core;
pub use freac_experiments as experiments;
pub use freac_fold as fold;
pub use freac_hls as hls;
pub use freac_kernels as kernels;
pub use freac_netlist as netlist;
pub use freac_power as power;
pub use freac_probe as probe;
pub use freac_serve as serve;
pub use freac_sim as sim;
