//! Regenerates every table and figure of the paper's evaluation and prints
//! them as aligned text tables.
//!
//! Run with: `cargo run --release --example paper_figures`
//!
//! Every kernel is mapped, folded, and timed across tile sizes, slice
//! counts, and baselines; independent cells fan out across the shared
//! worker pool (override with `FREAC_WORKERS=<n>`; `FREAC_WORKERS=1`
//! forces a serial run) and each circuit is synthesized once thanks to
//! the process-wide mapping cache. Output on stdout is byte-identical
//! for any worker count.
//!
//! With `FREAC_TRACE=1` (and/or `FREAC_METRICS=1`) the run also writes
//! `freac-trace.json` (Chrome trace: one track per figure plus the
//! simulated-time kernel tracks), `freac-metrics.json`, and the
//! deterministic `freac-counters.json` baseline sidecar.

use freac::experiments as exp;
use freac::probe;

/// Runs `f` under a wall-clock probe span named `harness.<name>` — a
/// Begin/End pair in the trace plus a `wall_us` histogram entry. Free
/// when the probe is disabled.
fn timed<T>(name: &str, f: impl FnOnce() -> T) -> T {
    match probe::global::global() {
        Some(p) => {
            let _span = p.span("harness", name);
            f()
        }
        None => f(),
    }
}

fn main() {
    // Stderr, so the figure output on stdout stays byte-identical across
    // worker counts.
    eprintln!("paper_figures: {} worker(s)", exp::parallel::worker_count());
    println!("{}", exp::tables::table1());
    println!("{}", exp::tables::table2());
    println!("{}", timed("area", exp::area::area_report));
    println!("{}", timed("fig08", || exp::fig08::run().table()));
    println!("{}", timed("fig09", || exp::fig09::run().table()));
    println!("{}", timed("fig10", || exp::fig10::run().table()));
    println!("{}", timed("fig11", || exp::fig11::run().table()));

    let f12 = timed("fig12", exp::fig12::run);
    println!("{}", f12.speedup_table());
    println!("{}", f12.power_table());
    println!("{}", f12.perf_per_watt_table());
    let (vs1, vs8, ppw) = f12.geomeans();
    println!(
        "Fig. 12 geomeans: {vs1:.2}x vs 1 thread, {vs8:.2}x vs 8 threads, {ppw:.2}x perf/W vs 8 threads"
    );
    println!("                  (paper: 8.2x, 3x, 6.1x)\n");

    println!("{}", timed("fig13", || exp::fig13::run().table()));

    let f14 = timed("fig14", exp::fig14::run);
    println!("{}", f14.table());
    let (vs_ec8, vs_ec16) = f14.geomean_advantage();
    println!("Fig. 14 geomeans: FReaC is {vs_ec8:.2}x vs 8 ECs, {vs_ec16:.2}x vs 16 ECs (paper: ~4x, ~2x)\n");

    println!("{}", timed("fig15", || exp::fig15::run().table()));

    println!(
        "{}",
        timed("opt_ablation", || exp::ablations::netlist_opt().table())
    );

    // Inclusion-policy ablation; with the probe enabled it also exports
    // the cache-hierarchy and way-claim coherence counters, so the CI
    // baseline diff covers back-invalidation and dirty-drop traffic.
    println!(
        "{}",
        timed("inclusion_ablation", || exp::ablations::inclusion().table())
    );

    // Flush observability output (no-op unless FREAC_TRACE/FREAC_METRICS).
    exp::runner::export_probe_stats();
    if probe::global::enabled() {
        let snapshot = probe::global::global().expect("probe enabled").snapshot();
        probe::assert_ok(&snapshot);
        match probe::global::finish() {
            Ok(Some(paths)) => {
                for p in paths {
                    eprintln!("paper_figures: wrote {}", p.display());
                }
            }
            Ok(None) => {}
            Err(e) => eprintln!("paper_figures: failed to write probe output: {e}"),
        }
    }
}
