//! Regenerates every table and figure of the paper's evaluation and prints
//! them as aligned text tables.
//!
//! Run with: `cargo run --release --example paper_figures`
//!
//! Every kernel is mapped, folded, and timed across tile sizes, slice
//! counts, and baselines; independent cells fan out across the shared
//! worker pool (override with `FREAC_WORKERS=<n>`; `FREAC_WORKERS=1`
//! forces a serial run) and each circuit is synthesized once thanks to
//! the process-wide mapping cache. Output on stdout is byte-identical
//! for any worker count.

use freac::experiments as exp;

fn main() {
    // Stderr, so the figure output on stdout stays byte-identical across
    // worker counts.
    eprintln!("paper_figures: {} worker(s)", exp::parallel::worker_count());
    println!("{}", exp::tables::table1());
    println!("{}", exp::tables::table2());
    println!("{}", exp::area::area_report());
    println!("{}", exp::fig08::run().table());
    println!("{}", exp::fig09::run().table());
    println!("{}", exp::fig10::run().table());
    println!("{}", exp::fig11::run().table());

    let f12 = exp::fig12::run();
    println!("{}", f12.speedup_table());
    println!("{}", f12.power_table());
    println!("{}", f12.perf_per_watt_table());
    let (vs1, vs8, ppw) = f12.geomeans();
    println!(
        "Fig. 12 geomeans: {vs1:.2}x vs 1 thread, {vs8:.2}x vs 8 threads, {ppw:.2}x perf/W vs 8 threads"
    );
    println!("                  (paper: 8.2x, 3x, 6.1x)\n");

    println!("{}", exp::fig13::run().table());

    let f14 = exp::fig14::run();
    println!("{}", f14.table());
    let (vs_ec8, vs_ec16) = f14.geomean_advantage();
    println!("Fig. 14 geomeans: FReaC is {vs_ec8:.2}x vs 8 ECs, {vs_ec16:.2}x vs 16 ECs (paper: ~4x, ~2x)\n");

    println!("{}", exp::fig15::run().table());
}
