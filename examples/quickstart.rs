//! Quickstart: build an accelerator circuit, fold it onto a micro compute
//! cluster, execute it bit-exactly, and get paper-style timing for a
//! batched run.
//!
//! Run with: `cargo run --release --example quickstart`

use freac::core::exec::{run_kernel, ExecConfig, KernelSpec};
use freac::core::{Accelerator, AcceleratorTile, SlicePartition};
use freac::netlist::builder::CircuitBuilder;
use freac::netlist::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a datapath: a streaming dot-product PE (acc += a * b).
    let mut b = CircuitBuilder::new("dot-pe");
    let a = b.word_input("a", 32);
    let x = b.word_input("b", 32);
    let (acc, h) = b.word_reg(0, 32);
    let m = b.mac(&a, &x, &acc);
    b.connect_word_reg(h, &m);
    b.word_output("acc", &m);
    let circuit = b.finish()?;

    // 2. Map it onto one micro compute cluster: technology mapping to
    //    4-LUTs, logic folding, bitstream packing.
    let tile = AcceleratorTile::new(1)?;
    let accel = Accelerator::map(&circuit, &tile)?;
    println!(
        "mapped '{}': {} fold steps, effective clock {:.0} MHz, {} config bytes",
        accel.name(),
        accel.fold_cycles(),
        accel.effective_clock_mhz(),
        accel.bitstream().total_bytes()
    );

    // 3. Execute the folded circuit functionally — bit-exact.
    let pairs = [(3u32, 7u32), (10, 11), (1000, 2000)];
    let mut expect = 0u32;
    let mut out = Vec::new();
    let mut ex = freac::fold::FoldedExecutor::new(accel.netlist(), accel.schedule());
    for (av, xv) in pairs {
        expect = expect.wrapping_add(av.wrapping_mul(xv));
        out = ex.run_cycle(&[Value::Word(av), Value::Word(xv)])?;
    }
    assert_eq!(out[0], Value::Word(expect));
    println!("folded execution result: {expect} (matches software)");

    // 4. Time a batched data-parallel run on the paper's system: 8 slices,
    //    16 MCCs + 640 KB scratchpad per slice, 128 KB left as cache.
    let spec = KernelSpec {
        name: "dot".into(),
        items: 4 << 20,
        cycles_per_item: 1,
        read_words_per_item: 2,
        write_words_per_item: 0,
        working_set_per_tile: 4 * 1024,
        input_bytes: (4u64 << 20) * 8,
        output_bytes: 4,
    };
    let cfg = ExecConfig {
        partition: SlicePartition::end_to_end(),
        slices: 8,
        dirty_fraction: 0.5,
    };
    let run = run_kernel(&accel, &spec, &cfg)?;
    println!(
        "batched run: {} tiles, kernel {:.1} us, setup {:.1} us, {:.2} W, {}",
        run.total_tiles,
        run.kernel_time_ps as f64 / 1e6,
        run.setup.total_ps() as f64 / 1e6,
        run.power_w,
        if run.memory_bound {
            "memory bound"
        } else {
            "compute bound"
        },
    );
    Ok(())
}
