//! Bring your own kernel: describe a computation at loop level with the
//! mini-HLS front end, compile it to an accelerator circuit, verify the
//! folded hardware bit-exactly against the loop's software semantics, and
//! time a batched run on the full 8-slice system.
//!
//! The kernel here is an integer SAXPY-and-clamp:
//! `acc += min(a * x[i] + y[i], CLAMP)` — something no fixed-function
//! accelerator ships, which is exactly FReaC Cache's pitch.
//!
//! Run with: `cargo run --release --example custom_kernel`

use freac::core::exec::{run_kernel, ExecConfig, KernelSpec};
use freac::core::{Accelerator, AcceleratorTile, SlicePartition};
use freac::fold::FoldedExecutor;
use freac::hls::{Expr, LoopKernel, Reduce};
use freac::kernels::DataGen;
use freac::netlist::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the kernel: 64 iterations per work item.
    let trip = 64u32;
    let kernel = LoopKernel::new("saxpy_clamp", trip)
        .input("x")
        .input("y")
        .constant("a", 13)
        .constant("clamp", 1_000_000)
        .body(
            Expr::port("x")
                .mul(Expr::name("a"))
                .add(Expr::port("y"))
                .min(Expr::name("clamp")),
        )
        .reduce(Reduce::sum());

    // 2. Compile and map onto a 2-MCC tile.
    let circuit = kernel.compile()?;
    let accel = Accelerator::map(&circuit, &AcceleratorTile::new(2)?)?;
    println!(
        "compiled '{}': {} LUTs, {} MACs, {} fold steps, effective clock {:.0} MHz",
        accel.name(),
        accel.stats().luts,
        accel.stats().macs,
        accel.fold_cycles(),
        accel.effective_clock_mhz(),
    );

    // 3. Verify the folded hardware against the loop semantics on random
    //    data.
    let mut gen = DataGen::with_seed(42);
    let xs = gen.words(trip as usize, 1 << 16);
    let ys = gen.words(trip as usize, 1 << 16);
    let expect = kernel.reference(&[("x", &xs), ("y", &ys)]);
    let mut hw = FoldedExecutor::new(accel.netlist(), accel.schedule());
    let mut out = Vec::new();
    for i in 0..trip as usize {
        out = hw.run_cycle(&[Value::Word(xs[i]), Value::Word(ys[i])])?;
    }
    assert_eq!(out[0], Value::Word(expect));
    assert_eq!(out[1], Value::Bit(true));
    println!("folded hardware result {expect} matches the loop's software semantics");

    // 4. Time a batched run: 100k work items across all 8 slices. The HLS
    //    description supplies the schedule view the timing model needs.
    let items = 100_000u64;
    let spec = KernelSpec {
        name: kernel.name().to_owned(),
        items,
        cycles_per_item: kernel.states_per_item(),
        read_words_per_item: kernel.read_words_per_item(),
        write_words_per_item: kernel.write_words_per_item(),
        working_set_per_tile: 2 * trip as u64 * 4,
        input_bytes: items * 2 * trip as u64 * 4,
        output_bytes: items * 4,
    };
    let run = run_kernel(
        &accel,
        &spec,
        &ExecConfig {
            partition: SlicePartition::end_to_end(),
            slices: 8,
            dirty_fraction: 0.5,
        },
    )?;
    println!(
        "batched run: {} tiles, kernel {:.2} ms, {:.2} W, {}",
        run.total_tiles,
        run.kernel_time_ps as f64 / 1e9,
        run.power_w,
        if run.memory_bound {
            "memory bound"
        } else {
            "compute bound"
        },
    );
    Ok(())
}
