//! Serve three tenants' AES/GEMM offload requests through the LLC's
//! compute slices — admission control, batch coalescing, and weighted-fair
//! slice scheduling over `freac-serve`.
//!
//! The closed-loop drivers keep each tenant's request window full: a
//! completion triggers the next request after think time, a shed request
//! is retried with backoff. The run prints every tenant's latency
//! quantiles (interpolated p50/p95/p99 straight from the probe
//! histograms) and the batching speedup over a single-lane rerun of the
//! identical workload.
//!
//! Run with: `cargo run --release --example serve_offload`

use freac::kernels::KernelId;
use freac::serve::{
    tenant_table, ClosedLoop, SchedPolicy, ServeConfig, ServeReport, Server, TenantSpec,
};

const SEED: u64 = 2028;

fn specs() -> Vec<TenantSpec> {
    // An interactive tenant (high weight, deadlines), a batch tenant, and
    // a mixed tenant that issues the occasional exclusive request.
    let mut web = TenantSpec::new("web", "aes", 40);
    web.weight = 4;
    web.concurrency = 8;
    web.deadline_ps = Some(25_000_000);
    let mut train = TenantSpec::new("train", "gemm", 30);
    train.weight = 1;
    train.concurrency = 6;
    let mut etl = TenantSpec::new("etl", "aes", 30);
    etl.mix = vec![("aes".to_owned(), 1), ("gemm".to_owned(), 1)];
    etl.weight = 2;
    etl.concurrency = 6;
    etl.exclusive_permille = 100;
    vec![web, train, etl]
}

fn serve(batching: bool) -> Result<ServeReport, Box<dyn std::error::Error>> {
    let mut server = Server::new(ServeConfig {
        batching,
        policy: SchedPolicy::WeightedFair,
        ..ServeConfig::default()
    })?;
    server.register_paper_kernel(KernelId::Aes)?;
    server.register_paper_kernel(KernelId::Gemm)?;
    let specs = specs();
    for s in &specs {
        server.add_tenant(&s.name, s.weight)?;
    }
    let mut driver = ClosedLoop::new(&specs, SEED);
    for req in driver.initial() {
        server.submit(req)?;
    }
    Ok(server.run(|outcome| driver.on_outcome(outcome))?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batched = serve(true)?;
    println!("three tenants, aes+gemm, weighted-fair over 4 slices:\n");
    print!("{}", tenant_table(&batched));
    println!(
        "\nbatch occupancy: {} coalesced dispatches, {} single-lane",
        batched.probes.counter("serve.batches.coalesced"),
        batched.probes.counter("serve.batches.single_lane"),
    );
    println!(
        "reconfigurations: {} ({:.1} us total), teardown reclaim {:.1} us",
        batched.probes.counter("serve.reconfigs"),
        batched.probes.counter("serve.reconfig.total_ps") as f64 / 1e6,
        batched.teardown_ps as f64 / 1e6,
    );
    println!(
        "deadlines: {} met, {} missed",
        batched.probes.counter("serve.deadlines.met"),
        batched.probes.counter("serve.deadlines.missed"),
    );

    let single = serve(false)?;
    println!(
        "\nsame workload single-lane: {:.1} us vs {:.1} us batched ({:.2}x)",
        single.span_ps as f64 / 1e6,
        batched.span_ps as f64 / 1e6,
        single.span_ps as f64 / batched.span_ps as f64,
    );
    assert!(
        batched.span_ps < single.span_ps,
        "batching must win on this workload"
    );
    freac::probe::global::finish()?;
    Ok(())
}
