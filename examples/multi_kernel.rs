//! Multi-kernel offload sessions: an edge-inference-style pipeline
//! (CONV -> FC) interleaved with an AES encryption job, showing how FReaC
//! Cache amortizes its one-time flush and reuses resident configurations
//! — the scheduling question an OS-level runtime would face.
//!
//! Run with: `cargo run --release --example multi_kernel`

use freac::core::exec::ExecConfig;
use freac::core::{Accelerator, AcceleratorTile, OffloadSession, SlicePartition};
use freac::experiments::runner::spec_of;
use freac::kernels::{kernel, KernelId, BATCH};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExecConfig {
        partition: SlicePartition::end_to_end(),
        slices: 8,
        dirty_fraction: 0.5,
    };
    let tile = AcceleratorTile::new(1)?;
    let accel = |id: KernelId| -> Result<_, Box<dyn std::error::Error>> {
        Ok((id, Accelerator::map(&kernel(id).circuit(), &tile)?))
    };
    let conv = accel(KernelId::Conv)?;
    let fc = accel(KernelId::Fc)?;
    let aes = accel(KernelId::Aes)?;

    // Strategy A: group work per kernel (two inference batches, then the
    // encryption job).
    let schedule_a = [&conv, &conv, &fc, &fc, &aes];
    // Strategy B: strict round-robin between inference stages and crypto.
    let schedule_b = [&conv, &fc, &aes, &conv, &fc];

    for (label, plan) in [
        ("grouped", &schedule_a[..]),
        ("interleaved", &schedule_b[..]),
    ] {
        let mut session = OffloadSession::begin(cfg)?;
        for (id, a) in plan.iter() {
            let spec = spec_of(*id, &kernel(*id).workload(BATCH / 16)); // small batches
            session.offload(a, &spec)?;
        }
        println!("strategy: {label}");
        println!(
            "  one-time flush+lock: {:.1} us",
            session.flush_lock_ps() as f64 / 1e6
        );
        for r in session.runs() {
            println!(
                "  {:5}  reconfig={}  config {:.1} us  kernel {:.1} us",
                r.name,
                if r.reconfigured { "yes" } else { "no " },
                r.config_ps as f64 / 1e6,
                r.run.kernel_time_ps as f64 / 1e6,
            );
        }
        println!(
            "  total {:.1} us, {} config bytes moved\n",
            session.total_ps() as f64 / 1e6,
            session.config_bytes()
        );
    }
    Ok(())
}
