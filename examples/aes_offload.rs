//! Offload AES-128 encryption to the LLC, end to end, through the
//! memory-mapped host interface — the six-step flow of the paper's Fig. 5:
//! select ways, flush, lock, configure, fill the scratchpad, run.
//!
//! The example also cross-checks the accelerator's folded execution against
//! the software AES reference (FIPS-197 semantics), block by block.
//!
//! Run with: `cargo run --release --example aes_offload`

use freac::core::ccctrl::{encode_ways, regs, CcCtrl};
use freac::core::{Accelerator, AcceleratorTile, SlicePartition};
use freac::kernels::aes;
use freac::netlist::Value;
use freac::sim::DramModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Map the AES circuit (the fixed key is part of the bitstream).
    let circuit = aes::build_circuit();
    let tile = AcceleratorTile::new(1)?;
    let accel = Accelerator::map(&circuit, &tile)?;
    println!(
        "AES-128 accelerator: {} 4-LUTs, {} fold steps per round-cycle",
        accel.stats().luts,
        accel.fold_cycles()
    );

    // --- Drive the host-interface protocol (Fig. 5, steps 1-6). ---
    let dram = DramModel::ddr4_2400_x4();
    let mut ctrl = CcCtrl::new(0.5); // assume half the flushed lines dirty
    let partition = SlicePartition::end_to_end();
    ctrl.store(regs::SELECT, encode_ways(&partition), &dram)?; // 1 select
    ctrl.store(regs::FLUSH, 1, &dram)?; //                        2 flush
    ctrl.store(regs::LOCK, 1, &dram)?; //                         3 lock
    ctrl.store(
        regs::CONFIG_DATA,
        accel.bitstream().total_bytes() as u64,
        &dram,
    )?; // 4
    let blocks: u64 = 1024;
    ctrl.store(regs::SPAD_FILL, blocks * 16, &dram)?; //          5 fill
    ctrl.store(regs::RUN, 1, &dram)?; //                          6 run
    println!(
        "setup: flush {:.1} us, config {:.1} us, fill {:.1} us",
        ctrl.timing().flush_ps as f64 / 1e6,
        ctrl.timing().config_ps as f64 / 1e6,
        ctrl.timing().fill_ps as f64 / 1e6,
    );

    // --- While "running", verify the datapath bit-exactly. ---
    let mut ex = freac::fold::FoldedExecutor::new(accel.netlist(), accel.schedule());
    let mut checked = 0;
    for blk in 0..8u64 {
        let mut pt = [0u8; 16];
        for (i, byte) in pt.iter_mut().enumerate() {
            *byte = (blk as u8).wrapping_mul(31).wrapping_add(i as u8 * 7);
        }
        let inputs: Vec<Value> = (0..4)
            .map(|c| {
                Value::Word(u32::from_le_bytes([
                    pt[c * 4],
                    pt[c * 4 + 1],
                    pt[c * 4 + 2],
                    pt[c * 4 + 3],
                ]))
            })
            .collect();
        let mut out = Vec::new();
        for _ in 0..11 {
            out = ex.run_cycle(&inputs)?;
        }
        let mut ct = [0u8; 16];
        for c in 0..4 {
            let w = out[c].as_word().expect("ciphertext word");
            ct[c * 4..c * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        assert_eq!(ct, aes::encrypt_block(&pt, &aes::KEY), "block {blk}");
        checked += 1;
    }
    ctrl.complete_run()?;
    println!("verified {checked} blocks against the FIPS-197 software reference");
    println!(
        "controller state after completion: {:?}; status register = {}",
        ctrl.state(),
        ctrl.load(regs::STATUS)?
    );
    Ok(())
}
