//! Export a kernel's accelerator netlist in interchange formats — BLIF for
//! academic CAD flows (ABC/VTR), Graphviz DOT for inspection, and
//! structural Verilog for synthesis cross-checks — before and after the
//! LUT-packing optimization.
//!
//! Run with: `cargo run --release --example netlist_export [KERNEL] [DIR]`

use std::fs;
use std::path::PathBuf;

use freac::kernels::{all_kernels, kernel, KernelId};
use freac::netlist::opt::pack_luts;
use freac::netlist::techmap::{tech_map, TechMapOptions};
use freac::netlist::{export, verilog, NetlistStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let id = args
        .next()
        .and_then(|name| {
            all_kernels()
                .into_iter()
                .find(|k| k.name().eq_ignore_ascii_case(&name))
        })
        .unwrap_or(KernelId::Kmp);
    let dir = PathBuf::from(args.next().unwrap_or_else(|| "target/netlists".into()));
    fs::create_dir_all(&dir)?;

    let circuit = kernel(id).circuit();
    let mapped = tech_map(&circuit, TechMapOptions::lut4())?;
    let (packed, report) = pack_luts(&mapped, 4)?;

    let stem = id.name().to_lowercase();
    let write = |suffix: &str, contents: String| -> std::io::Result<PathBuf> {
        let path = dir.join(format!("{stem}{suffix}"));
        fs::write(&path, contents)?;
        Ok(path)
    };

    let blif = write(".blif", export::to_blif(&mapped))?;
    let dot = write(".dot", export::to_dot(&mapped))?;
    let v = write(".v", verilog::to_verilog(&mapped))?;
    let packed_blif = write(".packed.blif", export::to_blif(&packed))?;

    let s = NetlistStats::of(&mapped);
    println!(
        "{id}: {} nodes, {} LUTs ({} after packing, {:.0} % saved), depth {}",
        mapped.len(),
        report.luts_before,
        report.luts_after,
        report.reduction() * 100.0,
        s.depth,
    );
    for p in [blif, dot, v, packed_blif] {
        println!("  wrote {}", p.display());
    }
    Ok(())
}
