//! Explore the compute-to-memory trade-off of a slice: how the way split
//! changes tile count, operand bandwidth, and kernel time for a chosen
//! benchmark — the design-space question behind the paper's Figs. 9-11.
//!
//! Run with: `cargo run --release --example partition_explorer [KERNEL]`
//! where KERNEL is one of AES CONV DOT FC GEMM KMP NW SRT STN2 STN3 VADD
//! (default GEMM).

use freac::core::exec::{max_tiles_per_slice, run_kernel, ExecConfig};
use freac::core::{Accelerator, AcceleratorTile, SlicePartition};
use freac::experiments::render::TextTable;
use freac::experiments::runner::spec_of;
use freac::kernels::{all_kernels, kernel, KernelId, BATCH};

fn parse_kernel(arg: Option<String>) -> KernelId {
    let Some(name) = arg else {
        return KernelId::Gemm;
    };
    all_kernels()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown kernel '{name}', using GEMM");
            KernelId::Gemm
        })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let id = parse_kernel(std::env::args().nth(1));
    let k = kernel(id);
    let w = k.workload(BATCH);
    let spec = spec_of(id, &w);
    println!(
        "{}: {} items, {} cycles/item, working set {} KB per tile\n",
        id,
        w.items,
        w.cycles_per_item,
        w.working_set_per_tile / 1024
    );

    let tile = AcceleratorTile::new(1)?;
    let accel = Accelerator::map(&k.circuit(), &tile)?;

    let mut t = TextTable::new(
        format!("{id}: slice partition sweep (tile size 1, single slice)"),
        &[
            "partition",
            "MCCs",
            "spad KB",
            "tiles",
            "kernel us",
            "bound",
        ],
    );
    for p in SlicePartition::sweep(0) {
        let tiles = max_tiles_per_slice(&p, 1, &spec);
        let cfg = ExecConfig {
            partition: p,
            slices: 1,
            dirty_fraction: 0.5,
        };
        let run = run_kernel(&accel, &spec, &cfg);
        let (tiles_s, time_s, bound_s) = match (&tiles, &run) {
            (Ok(n), Ok(r)) => (
                n.to_string(),
                format!("{:.1}", r.kernel_time_ps as f64 / 1e6),
                if r.memory_bound { "memory" } else { "compute" }.to_owned(),
            ),
            (Err(_), _) | (_, Err(_)) => ("-".into(), "-".into(), "does not fit".into()),
        };
        t.row(vec![
            format!("{}c/{}s", p.compute_ways(), p.scratchpad_ways()),
            p.mccs().to_string(),
            (p.scratchpad_bytes() / 1024).to_string(),
            tiles_s,
            time_s,
            bound_s,
        ]);
    }
    println!("{t}");
    Ok(())
}
