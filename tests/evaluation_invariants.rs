//! Cross-crate invariants of the evaluation pipeline — the relationships
//! the paper's figures rely on, checked end to end.

use freac::core::{AcceleratorTile, SlicePartition};
use freac::experiments::runner::{best_freac_run, freac_run_at, map_kernel};
use freac::kernels::{all_kernels, kernel, KernelId};
use freac::netlist::NetlistStats;

#[test]
fn every_kernel_maps_on_every_tile_size() {
    for id in all_kernels() {
        for t in [1usize, 2, 4, 8, 16, 32] {
            let accel =
                map_kernel(id, t).unwrap_or_else(|e| panic!("{id} fails to map on tile {t}: {e}"));
            assert!(accel.fold_cycles() >= 1);
            assert!(
                accel.fold_cycles() <= 2048,
                "{id} at tile {t} exceeds configuration rows"
            );
        }
    }
}

#[test]
fn fold_cycles_shrink_or_hold_with_tile_size() {
    for id in all_kernels() {
        let mut prev = usize::MAX;
        for t in [1usize, 2, 4, 8, 16, 32] {
            let f = map_kernel(id, t).expect("maps").fold_cycles();
            assert!(f <= prev, "{id}: folds rose from {prev} to {f} at tile {t}");
            prev = f;
        }
    }
}

#[test]
fn bitstream_grows_with_circuit_size() {
    let small = map_kernel(KernelId::Vadd, 1).expect("vadd maps");
    let large = map_kernel(KernelId::Aes, 1).expect("aes maps");
    assert!(large.bitstream().lut_config_bytes() > small.bitstream().lut_config_bytes());
    // Config memory never exceeds what the sub-arrays hold: 4 sub-arrays
    // x 8 KB per cluster.
    for id in all_kernels() {
        let a = map_kernel(id, 1).expect("maps");
        assert!(a.bitstream().lut_config_bytes() <= 4 * 8 * 1024);
    }
}

#[test]
fn effective_clock_equals_tile_clock_over_folds() {
    for id in [KernelId::Aes, KernelId::Gemm, KernelId::Kmp] {
        for t in [1usize, 16] {
            let a = map_kernel(id, t).expect("maps");
            let tile = AcceleratorTile::new(t).expect("tile");
            let expect = tile.clock().freq_ghz() * 1000.0 / a.fold_cycles() as f64;
            assert!((a.effective_clock_mhz() - expect).abs() < 1e-6);
        }
    }
}

#[test]
fn mapped_stats_preserve_macs_and_io() {
    for id in all_kernels() {
        let k = kernel(id);
        let raw = NetlistStats::of(&k.circuit());
        let mapped = map_kernel(id, 4).expect("maps");
        let post = mapped.stats();
        assert_eq!(raw.macs, post.macs, "{id}: MACs survive mapping");
        assert_eq!(raw.word_inputs, post.word_inputs, "{id}: inputs survive");
        assert_eq!(raw.word_outputs, post.word_outputs, "{id}: outputs survive");
        // Decomposition usually adds LUTs, but support reduction and
        // constant folding (e.g. dead ROM columns) can also remove some —
        // only the width bound is an invariant.
        assert!(
            post.luts_by_width.iter().skip(5).all(|&c| c == 0),
            "{id}: every mapped LUT fits 4 inputs"
        );
    }
}

#[test]
fn slice_count_scales_throughput_until_a_roofline() {
    for id in [KernelId::Gemm, KernelId::Kmp] {
        let t1 = best_freac_run(id, SlicePartition::end_to_end(), 1)
            .expect("runs")
            .run
            .kernel_time_ps;
        let t8 = best_freac_run(id, SlicePartition::end_to_end(), 8)
            .expect("runs")
            .run
            .kernel_time_ps;
        let scaling = t1 as f64 / t8 as f64;
        assert!(
            (1.0..=8.5).contains(&scaling),
            "{id}: 8-slice scaling {scaling}"
        );
    }
}

#[test]
fn memory_bound_kernels_saturate_and_compute_bound_do_not() {
    // VADD streams far more data than compute: adding slices eventually
    // stops helping (DRAM roofline). AES is compute bound: 8 slices buy
    // close to 8x.
    let scale = |id: KernelId| {
        let t1 = best_freac_run(id, SlicePartition::end_to_end(), 1)
            .expect("runs")
            .run
            .kernel_time_ps;
        let t8 = best_freac_run(id, SlicePartition::end_to_end(), 8)
            .expect("runs")
            .run
            .kernel_time_ps;
        t1 as f64 / t8 as f64
    };
    let vadd = scale(KernelId::Vadd);
    let aes = scale(KernelId::Aes);
    assert!(aes > 6.0, "AES should scale with slices, got {aes}");
    assert!(
        vadd < aes,
        "VADD saturates earlier than AES ({vadd} vs {aes})"
    );
}

#[test]
fn working_sets_gate_tile_counts() {
    // GEMM cannot fill all 32 MCCs with size-1 tiles under the 256 KB
    // scratchpad, but AES can (Fig. 9's contrast).
    let gemm =
        freac_run_at(KernelId::Gemm, 1, SlicePartition::max_compute(), 1).expect("gemm runs");
    let aes = freac_run_at(KernelId::Aes, 1, SlicePartition::max_compute(), 1).expect("aes runs");
    assert!(gemm.tiles_per_slice < 32);
    assert_eq!(aes.tiles_per_slice, 32);
}

#[test]
fn energy_and_power_are_physical() {
    for id in all_kernels() {
        let b = best_freac_run(id, SlicePartition::end_to_end(), 8).expect("runs");
        assert!(b.run.power_w > 0.1, "{id}: leakage floor");
        assert!(
            b.run.power_w < 25.0,
            "{id}: power {} W is beyond edge-class budgets",
            b.run.power_w
        );
        assert!(b.run.energy.dynamic_pj() > 0.0);
    }
}

#[test]
fn accelerator_reuse_is_cheaper_than_first_setup() {
    // Once configured, re-running with new data skips flush+config: the
    // setup breakdown must expose that (fill is a small part of setup for
    // a dirty cache).
    let b = best_freac_run(KernelId::Conv, SlicePartition::end_to_end(), 8).expect("runs");
    let s = b.run.setup;
    assert!(s.flush_ps > s.fill_ps, "flush dominates first-time setup");
    assert!(s.total_ps() > s.fill_ps);
}
