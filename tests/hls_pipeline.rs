//! End-to-end integration of the mini-HLS front end with the FReaC core:
//! loop kernels compile, map, fold, execute bit-exactly, time, and run in
//! offload sessions — the full "bring your own kernel" path.

use freac::core::detailed::{roofline_item_cycles, simulate_slice_pass};
use freac::core::exec::{run_kernel, ExecConfig, KernelSpec};
use freac::core::{Accelerator, AcceleratorTile, OffloadSession, SlicePartition};
use freac::fold::FoldedExecutor;
use freac::hls::library;
use freac::hls::{Expr, LoopKernel, Reduce};
use freac::kernels::DataGen;
use freac::netlist::Value;

fn spec_for(k: &LoopKernel, items: u64) -> KernelSpec {
    KernelSpec {
        name: k.name().to_owned(),
        items,
        cycles_per_item: k.states_per_item(),
        read_words_per_item: k.read_words_per_item(),
        write_words_per_item: k.write_words_per_item(),
        working_set_per_tile: 8 * 1024,
        input_bytes: items * k.read_words_per_item() * 4,
        output_bytes: items * 4,
    }
}

#[test]
fn library_kernels_run_the_whole_pipeline() {
    let cfg = ExecConfig {
        partition: SlicePartition::end_to_end(),
        slices: 8,
        dirty_fraction: 0.5,
    };
    for k in [
        library::dot(16),
        library::saxpy(16, 5),
        library::l2_norm_sq(16),
        library::relu_sum(16, 100),
        library::horner(8, 3),
        library::peak(16),
    ] {
        let circuit = k.compile().expect("compiles");
        let accel = Accelerator::map(&circuit, &AcceleratorTile::new(1).expect("tile"))
            .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
        let run = run_kernel(&accel, &spec_for(&k, 50_000), &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
        assert!(run.kernel_time_ps > 0, "{}", k.name());
        assert!(run.power_w > 0.0, "{}", k.name());
    }
}

#[test]
fn hls_kernel_folded_execution_matches_loop_semantics() {
    let trip = 12u32;
    let k = library::saxpy(trip, 9);
    let circuit = k.compile().expect("compiles");
    let accel = Accelerator::map(&circuit, &AcceleratorTile::new(2).expect("tile")).expect("maps");
    let mut gen = DataGen::with_seed(99);
    let xs = gen.words(trip as usize, 1 << 20);
    let ys = gen.words(trip as usize, 1 << 20);
    let mut hw = FoldedExecutor::new(accel.netlist(), accel.schedule());
    let mut out = Vec::new();
    for i in 0..trip as usize {
        out = hw
            .run_cycle(&[Value::Word(xs[i]), Value::Word(ys[i])])
            .expect("runs");
    }
    assert_eq!(out[0], Value::Word(k.reference(&[("x", &xs), ("y", &ys)])));
}

#[test]
fn hls_kernels_validate_the_detailed_simulator() {
    let k = library::dot(32);
    let circuit = k.compile().expect("compiles");
    let accel = Accelerator::map(&circuit, &AcceleratorTile::new(1).expect("tile")).expect("maps");
    let spec = spec_for(&k, 10_000);
    let p = SlicePartition::end_to_end();
    let detailed = simulate_slice_pass(&accel, &spec, &p).expect("simulates");
    let roofline = roofline_item_cycles(&accel, &spec, &p).expect("estimates");
    assert!(detailed.pass_cycles as u64 >= accel.fold_cycles() as u64);
    assert!(
        detailed.pass_cycles <= roofline * 4 + 64,
        "detailed {} vs roofline {roofline}",
        detailed.pass_cycles
    );
}

#[test]
fn mixed_hls_and_benchmark_session() {
    // A session interleaving a custom HLS kernel with a benchmark kernel:
    // each reconfigures on first use, then hits the configuration cache.
    let cfg = ExecConfig {
        partition: SlicePartition::end_to_end(),
        slices: 4,
        dirty_fraction: 0.25,
    };
    let tile = AcceleratorTile::new(1).expect("tile");
    let custom = Accelerator::map(&library::l2_norm_sq(16).compile().expect("compiles"), &tile)
        .expect("maps");
    let bench = Accelerator::map(
        &freac::kernels::kernel(freac::kernels::KernelId::Vadd).circuit(),
        &tile,
    )
    .expect("maps");
    let spec_c = spec_for(&library::l2_norm_sq(16), 10_000);
    let spec_b = KernelSpec {
        name: "vadd".into(),
        items: 10_000,
        cycles_per_item: 1,
        read_words_per_item: 2,
        write_words_per_item: 1,
        working_set_per_tile: 6 * 1024,
        input_bytes: 80_000,
        output_bytes: 40_000,
    };
    let mut session = OffloadSession::with_config_slots(cfg, 2).expect("begins");
    session.offload(&custom, &spec_c).expect("offloads");
    session.offload(&bench, &spec_b).expect("offloads");
    session.offload(&custom, &spec_c).expect("offloads");
    session.offload(&bench, &spec_b).expect("offloads");
    let flags: Vec<bool> = session.runs().iter().map(|r| r.reconfigured).collect();
    assert_eq!(flags, vec![true, true, false, false]);
}

#[test]
fn hls_error_paths_surface_cleanly() {
    // A body referencing an undeclared port must fail to compile, and the
    // error must be displayable.
    let bad = LoopKernel::new("bad", 4).body(Expr::port("nope"));
    let err = bad.compile().expect_err("must fail");
    assert!(err.to_string().contains("nope"));

    // Reduction over an unbound constant likewise.
    let bad = LoopKernel::new("bad2", 4)
        .input("x")
        .body(Expr::port("x"))
        .reduce(Reduce::custom(0, Expr::acc().add(Expr::name("ghost"))));
    let err = bad.compile().expect_err("must fail");
    assert!(err.to_string().contains("ghost"));
}

#[test]
fn states_per_item_feeds_the_timing_model_consistently() {
    // More FSM states per item (more ports) must never make the modeled
    // kernel faster, all else equal.
    let cfg = ExecConfig {
        partition: SlicePartition::end_to_end(),
        slices: 8,
        dirty_fraction: 0.5,
    };
    let tile = AcceleratorTile::new(1).expect("tile");
    let one_port = library::l2_norm_sq(32);
    let two_port = library::dot(32);
    let t1 = {
        let a = Accelerator::map(&one_port.compile().expect("c"), &tile).expect("m");
        run_kernel(&a, &spec_for(&one_port, 100_000), &cfg)
            .expect("runs")
            .kernel_time_ps
    };
    let t2 = {
        let a = Accelerator::map(&two_port.compile().expect("c"), &tile).expect("m");
        run_kernel(&a, &spec_for(&two_port, 100_000), &cfg)
            .expect("runs")
            .kernel_time_ps
    };
    assert!(
        t2 >= t1,
        "dot (2 ports, {t2} ps) cannot be faster than l2 (1 port, {t1} ps)"
    );
}
