//! End-to-end host-interface behaviour: the six-step offload protocol,
//! partition encoding, setup-time accounting, and its interaction with the
//! timed execution model.

use freac::core::ccctrl::{decode_ways, encode_ways, regs, CcCtrl, CtrlState};
use freac::core::exec::{run_kernel, ExecConfig};
use freac::core::{Accelerator, AcceleratorTile, CoreError, SlicePartition};
use freac::experiments::runner::spec_of;
use freac::kernels::{kernel, KernelId, BATCH};
use freac::sim::DramModel;

#[test]
fn offload_flow_reaches_done_and_accumulates_time() {
    let dram = DramModel::ddr4_2400_x4();
    let accel = Accelerator::map(
        &kernel(KernelId::Dot).circuit(),
        &AcceleratorTile::new(1).expect("tile"),
    )
    .expect("dot maps");

    let mut ctrl = CcCtrl::new(1.0);
    let p = SlicePartition::end_to_end();
    ctrl.store(regs::SELECT, encode_ways(&p), &dram)
        .expect("select");
    assert_eq!(ctrl.state(), CtrlState::Selected);
    ctrl.store(regs::FLUSH, 1, &dram).expect("flush");
    ctrl.store(regs::LOCK, 1, &dram).expect("lock");
    ctrl.store(
        regs::CONFIG_DATA,
        accel.bitstream().total_bytes() as u64,
        &dram,
    )
    .expect("configure");
    ctrl.store(regs::SPAD_FILL, 64 * 1024, &dram).expect("fill");
    ctrl.store(regs::OFFSET, 0x1000, &dram).expect("offset");
    ctrl.store(regs::RUN, 1, &dram).expect("run");
    assert_eq!(ctrl.load(regs::RUN).expect("poll"), 1);
    ctrl.complete_run().expect("complete");
    assert_eq!(ctrl.state(), CtrlState::Done);

    let t = ctrl.timing();
    assert!(t.flush_ps > 0, "worst-case flush must cost time");
    assert!(t.config_ps > 0);
    assert!(t.fill_ps > 0);
}

#[test]
fn protocol_rejects_out_of_order_operations() {
    let dram = DramModel::ddr4_2400_x4();
    let mut ctrl = CcCtrl::new(0.0);
    // Configure before lock.
    assert!(matches!(
        ctrl.store(regs::CONFIG_DATA, 128, &dram),
        Err(CoreError::ProtocolViolation { .. })
    ));
    // Lock before flush.
    let p = SlicePartition::balanced();
    ctrl.store(regs::SELECT, encode_ways(&p), &dram)
        .expect("select");
    assert!(matches!(
        ctrl.store(regs::LOCK, 1, &dram),
        Err(CoreError::ProtocolViolation { .. })
    ));
}

#[test]
fn partition_encoding_round_trips_all_valid_splits() {
    for p in SlicePartition::sweep(0)
        .into_iter()
        .chain(SlicePartition::sweep(2))
        .chain(SlicePartition::sweep(4))
    {
        let enc = encode_ways(&p);
        assert_eq!(decode_ways(enc).expect("valid split decodes"), p);
    }
}

#[test]
fn run_kernel_setup_matches_manual_protocol_costs() {
    // The exec model's setup accounting must equal driving the CC Ctrl by
    // hand with the same parameters.
    let id = KernelId::Stn2;
    let k = kernel(id);
    let w = k.workload(BATCH);
    let spec = spec_of(id, &w);
    let accel =
        Accelerator::map(&k.circuit(), &AcceleratorTile::new(1).expect("tile")).expect("stn2 maps");
    let cfg = ExecConfig {
        partition: SlicePartition::end_to_end(),
        slices: 8,
        dirty_fraction: 0.25,
    };
    let run = run_kernel(&accel, &spec, &cfg).expect("runs");

    let dram = DramModel::ddr4_2400_x4();
    let mut ctrl = CcCtrl::new(0.25);
    ctrl.store(regs::SELECT, encode_ways(&cfg.partition), &dram)
        .expect("select");
    ctrl.store(regs::FLUSH, 1, &dram).expect("flush");
    ctrl.store(regs::LOCK, 1, &dram).expect("lock");
    ctrl.store(
        regs::CONFIG_DATA,
        accel.bitstream().total_bytes() as u64,
        &dram,
    )
    .expect("config");
    let per_slice = spec
        .input_bytes
        .div_ceil(8)
        .min(cfg.partition.scratchpad_bytes());
    ctrl.store(regs::SPAD_FILL, per_slice, &dram).expect("fill");
    assert_eq!(run.setup, ctrl.timing());
}

#[test]
fn dirtier_caches_flush_longer() {
    let mk = |dirty: f64| {
        let dram = DramModel::ddr4_2400_x4();
        let mut ctrl = CcCtrl::new(dirty);
        let p = SlicePartition::max_compute();
        ctrl.store(regs::SELECT, encode_ways(&p), &dram)
            .expect("select");
        ctrl.store(regs::FLUSH, 1, &dram).expect("flush");
        ctrl.timing().flush_ps
    };
    let clean = mk(0.0);
    let half = mk(0.5);
    let full = mk(1.0);
    assert_eq!(clean, 0);
    assert!(half > 0);
    assert!(full > half * 3 / 2);
}
