//! Integration properties of the serving subsystem (ISSUE acceptance
//! gates): batching beats single-lane on the four-tenant mixed workload,
//! the load generator is worker-count independent, and merged counters are
//! identical across parallelism.

use freac::core::{Accelerator, AcceleratorTile};
use freac::kernels::KernelId;
use freac::netlist::OptLevel;
use freac::serve::{
    open_loop_trace, Request, RequestProfile, SchedPolicy, ServeConfig, ServeReport, Server,
    TenantSpec,
};

const SEED: u64 = 0x7e57_05e1;

fn mixed_specs() -> Vec<TenantSpec> {
    let mut alpha = TenantSpec::new("alpha", "aes", 32);
    alpha.weight = 4;
    alpha.mean_gap_ps = 2_000;
    let mut beta = TenantSpec::new("beta", "gemm", 32);
    beta.weight = 2;
    beta.mean_gap_ps = 3_000;
    let mut gamma = TenantSpec::new("gamma", "aes", 32);
    gamma.mix = vec![("aes".to_owned(), 1), ("gemm".to_owned(), 1)];
    gamma.mean_gap_ps = 2_500;
    let mut delta = TenantSpec::new("delta", "gemm", 32);
    delta.mix = vec![("aes".to_owned(), 2), ("gemm".to_owned(), 1)];
    delta.mean_gap_ps = 4_000;
    vec![alpha, beta, gamma, delta]
}

fn serve_mixed(batching: bool, workers: usize) -> ServeReport {
    let mut server = Server::new(ServeConfig {
        batching,
        policy: SchedPolicy::WeightedFair,
        ..ServeConfig::default()
    })
    .expect("config is valid");
    server
        .register_paper_kernel(KernelId::Aes)
        .expect("aes maps");
    server
        .register_paper_kernel(KernelId::Gemm)
        .expect("gemm maps");
    let specs = mixed_specs();
    for s in &specs {
        server.add_tenant(&s.name, s.weight).expect("unique tenant");
    }
    for req in open_loop_trace(&specs, SEED, workers) {
        server.submit(req).expect("trace request is valid");
    }
    server.run_to_completion().expect("serving drains")
}

#[test]
fn batching_beats_single_lane_on_the_mixed_workload() {
    let batched = serve_mixed(true, 1);
    let single = serve_mixed(false, 1);
    assert_eq!(
        batched.completions.len(),
        single.completions.len(),
        "both modes must complete the same requests"
    );
    assert!(
        batched.span_ps < single.span_ps,
        "batched span {} must be strictly smaller than single-lane {}",
        batched.span_ps,
        single.span_ps
    );
    assert!(
        batched.throughput_rps() > single.throughput_rps(),
        "batched throughput must be strictly higher"
    );
    // Same functional results in both modes, in the same canonical order.
    let hb: Vec<(String, u64, u64)> = batched
        .completions
        .iter()
        .map(|c| (c.tenant.clone(), c.seq, c.output_hash))
        .collect();
    let mut hs: Vec<(String, u64, u64)> = single
        .completions
        .iter()
        .map(|c| (c.tenant.clone(), c.seq, c.output_hash))
        .collect();
    let mut hb_sorted = hb.clone();
    hb_sorted.sort();
    hs.sort();
    assert_eq!(hb_sorted, hs, "output hashes diverged between modes");
}

#[test]
fn load_generation_is_worker_count_independent() {
    let specs = mixed_specs();
    let one = open_loop_trace(&specs, SEED, 1);
    let many = open_loop_trace(&specs, SEED, 4);
    assert_eq!(one, many, "trace depends on worker count");
}

#[test]
fn merged_counters_are_identical_across_worker_counts() {
    let r1 = serve_mixed(true, 1);
    let r4 = serve_mixed(true, 4);
    assert_eq!(
        freac::probe::to_counters_json(&r1.probes),
        freac::probe::to_counters_json(&r4.probes),
        "serving counters depend on trace-generation parallelism"
    );
    assert_eq!(r1.completions, r4.completions);
    assert_eq!(r1.dispatches, r4.dispatches);
}

#[test]
fn tenant_quantiles_are_ordered() {
    let r = serve_mixed(true, 1);
    for t in &r.tenants {
        assert!(t.completed > 0, "tenant {} completed nothing", t.name);
        assert!(
            t.p50_ps <= t.p95_ps && t.p95_ps <= t.p99_ps,
            "tenant {} quantiles out of order: p50 {} p95 {} p99 {}",
            t.name,
            t.p50_ps,
            t.p95_ps,
            t.p99_ps
        );
    }
}

/// The mixed workload with exclusives sprinkled in, served at a given
/// lane cap, with tenants/kernels optionally registered (and the trace
/// submitted) in reverse — the enumeration-order probe.
fn serve_mixed_at_width(max_lanes: usize, reverse: bool) -> ServeReport {
    let mut server = Server::new(ServeConfig {
        policy: SchedPolicy::WeightedFair,
        queue_depth: 512,
        max_lanes,
        ..ServeConfig::default()
    })
    .expect("config is valid");
    let mut kernels = vec![KernelId::Aes, KernelId::Gemm];
    let mut specs = mixed_specs();
    for s in &mut specs {
        s.exclusive_permille = 125; // ~1 in 8 rides the single-lane path
    }
    if reverse {
        kernels.reverse();
        specs.reverse();
    }
    for k in kernels {
        server.register_paper_kernel(k).expect("kernel maps");
    }
    for s in &specs {
        server.add_tenant(&s.name, s.weight).expect("unique tenant");
    }
    let mut trace = open_loop_trace(&specs, SEED, 1);
    if reverse {
        trace.reverse();
    }
    for req in trace {
        server.submit(req).expect("trace request is valid");
    }
    server.run_to_completion().expect("serving drains")
}

#[test]
fn every_batch_width_conserves_and_is_enumeration_order_independent() {
    // At every bit-sliced sweep width (64, 256, 512 lanes), on a mixed
    // exclusive/batchable trace: no request is lost, counters obey the
    // registered laws, the schedule is a pure function of the request
    // set, and the functional results are identical across widths.
    let mut hashes_by_width: Vec<Vec<(String, u64, u64)>> = Vec::new();
    for &width in &[64usize, 256, 512] {
        let fwd = serve_mixed_at_width(width, false);
        let rev = serve_mixed_at_width(width, true);
        assert_eq!(
            fwd.dispatches, rev.dispatches,
            "w{width}: schedule depends on enumeration order"
        );
        assert_eq!(
            fwd.completions, rev.completions,
            "w{width}: completions depend on enumeration order"
        );
        assert_eq!(
            freac::probe::to_counters_json(&fwd.probes),
            freac::probe::to_counters_json(&rev.probes),
            "w{width}: counters depend on enumeration order"
        );
        let submitted = fwd.probes.counter("serve.requests.submitted");
        assert_eq!(submitted, 128, "w{width}: full trace submitted");
        assert_eq!(
            fwd.completions.len() as u64 + fwd.sheds.len() as u64,
            submitted,
            "w{width}: conservation violated"
        );
        let violations = freac::probe::check(&fwd.probes);
        assert!(violations.is_empty(), "w{width}: {violations:?}");
        assert!(
            fwd.probes.counter("serve.lanes.occupied")
                <= fwd.probes.counter("serve.lanes.capacity"),
            "w{width}: batches exceeded offered lanes"
        );
        let mut hashes: Vec<(String, u64, u64)> = fwd
            .completions
            .iter()
            .map(|c| (c.tenant.clone(), c.seq, c.output_hash))
            .collect();
        hashes.sort();
        hashes_by_width.push(hashes);
    }
    for pair in hashes_by_width.windows(2) {
        assert_eq!(
            pair[0], pair[1],
            "output hashes diverged between sweep widths"
        );
    }
}

/// [`serve_mixed`] with each kernel pre-mapped at an explicit optimization
/// level and registered through [`Server::register_accelerator`] — no
/// environment mutation, so opt-on and opt-off servers coexist in-process.
fn serve_mixed_at_level(level: OptLevel) -> ServeReport {
    let cfg = ServeConfig {
        policy: SchedPolicy::WeightedFair,
        ..ServeConfig::default()
    };
    let tile = AcceleratorTile::new(cfg.tile_mccs).expect("tile is valid");
    let mut server = Server::new(cfg).expect("config is valid");
    for id in [KernelId::Aes, KernelId::Gemm] {
        let k = freac::kernels::kernel(id);
        let w = k.workload(1);
        let accel =
            Accelerator::map_shared_with_level(&k.circuit(), &tile, level).expect("kernel maps");
        server
            .register_accelerator(
                &id.name().to_lowercase(),
                accel,
                RequestProfile {
                    cycles_per_item: w.cycles_per_item,
                    read_words: w.read_words_per_item,
                    write_words: w.write_words_per_item,
                },
            )
            .expect("unique kernel");
    }
    let specs = mixed_specs();
    for s in &specs {
        server.add_tenant(&s.name, s.weight).expect("unique tenant");
    }
    for req in open_loop_trace(&specs, SEED, 1) {
        server.submit(req).expect("trace request is valid");
    }
    server.run_to_completion().expect("serving drains")
}

#[test]
fn serving_is_functionally_invariant_under_optimization() {
    // Opt-on and opt-off servers over the same trace: every request
    // completes with the same output hash, nothing extra is shed, and the
    // optimized server is never slower end to end (fewer fold steps per
    // invocation can only shorten the schedule).
    let raw = serve_mixed_at_level(OptLevel::Off);
    let opt = serve_mixed_at_level(OptLevel::Full);
    let key = |r: &ServeReport| {
        let mut h: Vec<(String, u64, u64)> = r
            .completions
            .iter()
            .map(|c| (c.tenant.clone(), c.seq, c.output_hash))
            .collect();
        h.sort();
        h
    };
    assert_eq!(key(&raw), key(&opt), "optimization changed served results");
    assert_eq!(raw.sheds.len(), opt.sheds.len(), "shedding diverged");
    assert!(
        opt.span_ps <= raw.span_ps,
        "optimized serving was slower: {} > {}",
        opt.span_ps,
        raw.span_ps
    );
}

#[test]
fn exclusive_requests_are_never_coalesced() {
    let mut server = Server::new(ServeConfig::default()).expect("config");
    server
        .register_paper_kernel(KernelId::Aes)
        .expect("aes maps");
    server.add_tenant("t", 1).expect("tenant");
    for i in 0..12 {
        let mut r = Request::new("t", i, "aes", 0, i);
        r.exclusive = i % 3 == 0;
        server.submit(r).expect("submit");
    }
    let report = server.run_to_completion().expect("drains");
    for d in &report.dispatches {
        let any_exclusive = report
            .completions
            .iter()
            .any(|c| c.batch_id == d.batch_id && c.lanes == 1);
        if d.lanes > 1 {
            assert!(
                !any_exclusive,
                "exclusive request coalesced into batch {}",
                d.batch_id
            );
        }
    }
    // 4 exclusive requests → at least 4 single-lane dispatches.
    assert!(
        report.probes.counter("serve.batches.single_lane") >= 4,
        "exclusive requests must ride alone"
    );
}

#[test]
fn stolen_then_shed_requests_terminate_exactly_once() {
    // The steal/shed interaction hazard: a request stolen from a victim
    // shard and then shed by the thief must appear in exactly one shed
    // list — never in two, and never in any completion list. The victim
    // accounts it as `stolen`, the thief as `submitted` then `shed`, and
    // the merged ledger still balances.
    let mut victim = Server::new(ServeConfig {
        slices: 1,
        batching: false,
        ..ServeConfig::default()
    })
    .expect("victim config");
    victim
        .register_paper_kernel(KernelId::Aes)
        .expect("aes maps");
    victim.add_tenant("t", 1).expect("tenant");
    for i in 0..6 {
        victim
            .submit(Request::new("t", i, "aes", 0, i))
            .expect("submit");
    }
    // Admit (and start dispatching) the t=0 arrivals, then steal the four
    // newest queued requests — the cluster's steal_epoch sequence.
    let mut no_follow_ups = |_: &freac::serve::Outcome| Vec::new();
    victim
        .run_until(0, &mut no_follow_ups)
        .expect("prefix runs");
    let stolen = victim.steal_newest(4);
    assert_eq!(stolen.len(), 4, "four queued requests must be stealable");

    // The thief has a single-entry queue: the simultaneous stolen arrivals
    // overflow it, so some stolen requests are shed on arrival.
    let mut thief = Server::new(ServeConfig {
        slices: 1,
        batching: false,
        queue_depth: 1,
        ..ServeConfig::default()
    })
    .expect("thief config");
    thief
        .register_paper_kernel(KernelId::Aes)
        .expect("aes maps");
    thief.add_tenant("t", 1).expect("tenant");
    for req in stolen {
        thief.submit_stolen(req).expect("stolen resubmits");
    }
    let tr = thief.run_to_completion().expect("thief drains");
    let vr = victim.run_to_completion().expect("victim drains");

    // Victim ledger: two requests served locally, four migrated out,
    // nothing shed.
    assert_eq!(vr.probes.counter("serve.requests.stolen"), 4);
    assert_eq!(vr.completions.len(), 2);
    assert!(vr.sheds.is_empty(), "victim must not shed migrated work");

    // Thief ledger: the stolen requests are fresh submissions there, and
    // the one-deep queue forces at least one shed.
    assert_eq!(tr.probes.counter("serve.requests.stolen_in"), 4);
    assert_eq!(tr.probes.counter("serve.requests.submitted"), 4);
    assert_eq!(tr.completions.len() + tr.sheds.len(), 4);
    assert!(!tr.sheds.is_empty(), "overflow must shed on the thief");

    // Exactly-once termination across both shards: every identity shows
    // up in one terminal list, and a stolen-then-shed identity is in the
    // thief's shed list only.
    let mut terminal: Vec<(String, u64)> = Vec::new();
    for c in vr.completions.iter().chain(tr.completions.iter()) {
        terminal.push((c.tenant.clone(), c.seq));
    }
    for s in vr.sheds.iter().chain(tr.sheds.iter()) {
        terminal.push((s.request.tenant.clone(), s.request.seq));
    }
    terminal.sort();
    let expect: Vec<(String, u64)> = (0..6).map(|i| ("t".to_owned(), i)).collect();
    assert_eq!(terminal, expect, "a request terminated twice or never");
    for s in &tr.sheds {
        let seq = s.request.seq;
        assert!(
            !vr.sheds.iter().any(|v| v.request.seq == seq),
            "seq {seq} shed on both shards"
        );
        assert!(
            !vr.completions.iter().any(|v| v.seq == seq)
                && !tr.completions.iter().any(|v| v.seq == seq),
            "seq {seq} both shed and completed"
        );
    }

    // Counter laws hold per shard and on the merged ledger, where the
    // victim's `stolen` balances the thief's fresh `submitted`.
    for probes in [&vr.probes, &tr.probes] {
        let violations = freac::probe::check(probes);
        assert!(
            violations.is_empty(),
            "per-shard laws violated: {violations:?}"
        );
    }
    let mut merged = freac::probe::CounterRegistry::new();
    merged.merge(&vr.probes);
    merged.merge(&tr.probes);
    let violations = freac::probe::check(&merged);
    assert!(
        violations.is_empty(),
        "merged laws violated: {violations:?}"
    );
    assert_eq!(
        merged.counter("serve.requests.completed")
            + merged.counter("serve.requests.shed")
            + merged.counter("serve.requests.stolen"),
        merged.counter("serve.requests.submitted"),
        "merged conservation with migration broke"
    );
}
