//! Interchange-format integration: every benchmark kernel's mapped netlist
//! exports to BLIF, DOT, and Verilog, and its packed bitstream survives a
//! serialization round trip.

use freac::core::bitstream::Bitstream;
use freac::fold::{schedule_fold, FoldConstraints, LutMode};
use freac::kernels::{all_kernels, kernel};
use freac::netlist::techmap::{tech_map, TechMapOptions};
use freac::netlist::{export, verilog, NodeKind};

#[test]
fn every_kernel_exports_to_all_formats() {
    for id in all_kernels() {
        let mapped = tech_map(&kernel(id).circuit(), TechMapOptions::lut4())
            .unwrap_or_else(|e| panic!("{id}: {e}"));

        let blif = export::to_blif(&mapped);
        assert!(blif.starts_with(".model "), "{id}");
        assert!(blif.trim_end().ends_with(".end"), "{id}");
        // Every LUT becomes a .names table.
        let luts = mapped
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Lut(_)))
            .count();
        let names = blif.matches(".names ").count();
        assert!(names >= luts, "{id}: {names} tables for {luts} LUTs");

        let dot = export::to_dot(&mapped);
        assert!(dot.starts_with("digraph"), "{id}");
        let edges: usize = mapped.nodes().iter().map(|n| n.inputs.len()).sum();
        assert_eq!(dot.matches(" -> ").count(), edges, "{id}");

        let v = verilog::to_verilog(&mapped);
        assert!(v.starts_with("module "), "{id}");
        assert!(v.trim_end().ends_with("endmodule"), "{id}");
    }
}

#[test]
fn every_kernel_bitstream_round_trips() {
    for id in all_kernels() {
        let mapped = tech_map(&kernel(id).circuit(), TechMapOptions::lut4())
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        for clusters in [1usize, 4] {
            let cons = FoldConstraints::for_tile(clusters, LutMode::Lut4);
            let sched = schedule_fold(&mapped, &cons).unwrap_or_else(|e| panic!("{id}: {e}"));
            let bs = Bitstream::pack(&mapped, &sched, clusters, LutMode::Lut4);
            let bytes = bs.to_bytes();
            let back =
                Bitstream::from_bytes(&bytes).unwrap_or_else(|e| panic!("{id} x{clusters}: {e}"));
            assert_eq!(back, bs, "{id} x{clusters}");
            // Wire format is reasonably compact: within 2x of the raw
            // configuration payload plus headers.
            assert!(
                bytes.len() <= 2 * bs.lut_config_bytes() + 64 * clusters + 64,
                "{id} x{clusters}: {} wire bytes for {} config bytes",
                bytes.len(),
                bs.lut_config_bytes()
            );
        }
    }
}

#[test]
fn packing_preserves_every_kernel_function() {
    use freac::netlist::eval::equivalent_on;
    use freac::netlist::opt::pack_luts;
    use freac::netlist::Value;

    for id in all_kernels() {
        let circuit = kernel(id).circuit();
        let mapped = tech_map(&circuit, TechMapOptions::lut4()).unwrap();
        let (packed, _) = pack_luts(&mapped, 4).unwrap_or_else(|e| panic!("{id}: {e}"));
        // A deterministic stimulus per kernel, several cycles (covers the
        // sequential kernels' counters and accumulators).
        let inputs: Vec<Value> = circuit
            .primary_inputs()
            .iter()
            .enumerate()
            .map(|(i, _)| Value::Word((i as u32 + 1).wrapping_mul(0x9E37_79B9) % 4096))
            .collect();
        assert!(
            equivalent_on(&mapped, &packed, &[inputs], 12).unwrap(),
            "{id}: packing changed the function"
        );
    }
}
