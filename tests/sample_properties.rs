//! Sampled-mode matrix: every scheduler × shed-policy combination on
//! mixed open-loop traces. Each case pins three properties of the
//! representative-interval sampler ([`freac::serve::sample`]):
//!
//! 1. **Accuracy** — the extrapolated p50/p95/p99 land inside their own
//!    declared error bound *and* within 5% absolute of a full-fidelity
//!    replay of the same trace;
//! 2. **Conservation** — extrapolated completions + sheds equal the trace
//!    length, and the probe laws hold;
//! 3. **Determinism** — the same seed renders a byte-identical report,
//!    at one worker and at four.
//!
//! Every case uses a distinct trace seed, so the matrix doubles as the
//! "at least three distinct 100k-request traces" accuracy gate. Traces
//! open with a gentle ramp window that pays the cold-slice setups
//! (~7.7 us each for the tiny kernels) before pressure starts: sampling
//! compresses repeating behavior, and a trace dominated by a one-off
//! boot transient has none to compress — that regime stays with the
//! full-fidelity smoke in `cluster_properties.rs`.

use freac::netlist::builder::CircuitBuilder;
use freac::netlist::Netlist;
use freac::serve::{
    open_loop_trace, Cluster, ClusterConfig, Request, RequestProfile, RoutePolicy, SampleConfig,
    SampledServer, SchedPolicy, ServeConfig, ShedPolicy, StealConfig, TenantSpec,
};

fn adder() -> Netlist {
    let mut b = CircuitBuilder::new("add");
    let a = b.word_input("a", 8);
    let x = b.word_input("x", 8);
    let s = b.add(&a, &x);
    b.word_output("s", &s);
    b.finish().expect("adder builds")
}

fn masker() -> Netlist {
    let mut b = CircuitBuilder::new("mask");
    let a = b.word_input("a", 8);
    let x = b.word_input("x", 8);
    let m = b.and_words(&a, &x);
    b.word_output("m", &m);
    b.finish().expect("masker builds")
}

fn add_profile() -> RequestProfile {
    RequestProfile {
        cycles_per_item: 2,
        read_words: 4,
        write_words: 1,
    }
}

fn mask_profile() -> RequestProfile {
    RequestProfile {
        cycles_per_item: 1,
        read_words: 2,
        write_words: 1,
    }
}

/// Four tenants with distinct weights, kernel mixes, inter-arrival gaps,
/// deadlines on one, exclusive requests on another.
fn specs(requests: u64) -> Vec<TenantSpec> {
    let mut alpha = TenantSpec::new("alpha", "add", requests);
    alpha.weight = 4;
    alpha.mean_gap_ps = 1_600;
    let mut beta = TenantSpec::new("beta", "mask", requests);
    beta.weight = 2;
    beta.mean_gap_ps = 2_000;
    let mut gamma = TenantSpec::new("gamma", "add", requests);
    gamma.mix = vec![("add".to_owned(), 1), ("mask".to_owned(), 1)];
    gamma.mean_gap_ps = 2_400;
    gamma.deadline_ps = Some(20_000_000);
    let mut delta = TenantSpec::new("delta", "mask", requests);
    delta.mix = vec![("add".to_owned(), 2), ("mask".to_owned(), 1)];
    delta.mean_gap_ps = 2_800;
    delta.exclusive_permille = 125;
    vec![alpha, beta, gamma, delta]
}

/// A mixed open-loop trace behind a ramp prefix: 1024 gently spaced
/// requests absorb the cold-slice configurations, then the jittered
/// four-tenant trace plays shifted past the ramp.
fn mixed_trace(seed: u64, per_tenant: u64) -> Vec<Request> {
    const RAMP: u64 = 1_024;
    const RAMP_GAP: u64 = 25_000;
    let names = ["alpha", "beta", "gamma", "delta"];
    let mut trace: Vec<Request> = (0..RAMP)
        .map(|i| {
            let kernel = if i % 3 == 0 { "mask" } else { "add" };
            // Sequence numbers far above the open-loop range keep
            // (tenant, seq) identities unique.
            Request::new(
                names[(i % 4) as usize],
                1 << 40 | i,
                kernel,
                i * RAMP_GAP,
                i,
            )
        })
        .collect();
    let shift = RAMP * RAMP_GAP;
    for mut r in open_loop_trace(&specs(per_tenant), seed, 4) {
        r.arrival_ps += shift;
        if let Some(d) = r.deadline_ps.as_mut() {
            *d += shift;
        }
        trace.push(r);
    }
    trace
}

fn cluster_config(policy: SchedPolicy, shed: ShedPolicy) -> ClusterConfig {
    ClusterConfig {
        shards: 4,
        route: RoutePolicy::KernelAffinity { spill_depth: 64 },
        steal: Some(StealConfig::default()),
        shard: ServeConfig {
            queue_depth: 512,
            policy,
            shed,
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn full_cluster(policy: SchedPolicy, shed: ShedPolicy) -> Cluster {
    let mut c = Cluster::new(cluster_config(policy, shed)).expect("config is valid");
    c.register_kernel("add", &adder(), add_profile())
        .expect("adder maps");
    c.register_kernel("mask", &masker(), mask_profile())
        .expect("masker maps");
    for s in specs(1) {
        c.add_tenant(&s.name, s.weight).expect("unique tenant");
    }
    c
}

fn sampler(policy: SchedPolicy, shed: ShedPolicy, workers: usize) -> SampledServer {
    let sample = SampleConfig {
        window: 1024,
        max_clusters: 12,
        warmup: 512,
        workers,
        ..SampleConfig::default()
    };
    let mut s = SampledServer::new(cluster_config(policy, shed), sample).expect("config is valid");
    s.register_kernel("add", &adder(), add_profile())
        .expect("adder maps");
    s.register_kernel("mask", &masker(), mask_profile())
        .expect("masker maps");
    for t in specs(1) {
        s.add_tenant(&t.name, t.weight).expect("unique tenant");
    }
    s
}

/// Requests per tenant: ~100k-request traces in release, ~8k in debug.
/// `FREAC_SAMPLE_MATRIX_REQUESTS` (total, split across the four tenants)
/// overrides either way.
fn per_tenant() -> u64 {
    std::env::var("FREAC_SAMPLE_MATRIX_REQUESTS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(
            if cfg!(debug_assertions) {
                2_048
            } else {
                24_576
            },
            |total| total / 4,
        )
}

fn case(policy: SchedPolicy, shed: ShedPolicy, seed: u64) {
    let trace = mixed_trace(seed, per_tenant());
    let n = trace.len() as u64;

    // Full-fidelity truth.
    let mut full = full_cluster(policy, shed);
    for r in trace.iter().cloned() {
        full.submit(r).expect("trace request is valid");
    }
    let full_rep = full.run_to_completion().expect("serving drains");
    let h = full_rep
        .probes
        .histogram("serve.latency_ps")
        .expect("latencies recorded");

    // Sampled estimate: conservation, probe laws, bound + 5% accuracy.
    let rep = sampler(policy, shed, 1)
        .run(&trace)
        .expect("sampling drains");
    assert_eq!(rep.trace_requests, n);
    assert_eq!(
        rep.est_completed + rep.est_shed,
        n,
        "extrapolated terminals must cover the whole trace"
    );
    let violations = freac::probe::check(&rep.probes);
    assert!(violations.is_empty(), "probe laws violated: {violations:?}");
    for (name, est, actual) in [
        ("p50", rep.p50_ps, h.quantile(0.5).expect("non-empty")),
        ("p95", rep.p95_ps, h.quantile(0.95).expect("non-empty")),
        ("p99", rep.p99_ps, h.quantile(0.99).expect("non-empty")),
    ] {
        assert!(
            est.covers(actual),
            "{name}: full-fidelity {actual} outside sampled bound {} +- {}",
            est.value,
            est.bound
        );
        assert!(
            (actual - est.value).abs() <= 0.05 * actual,
            "{name}: sampled {} deviates more than 5% from full {actual}",
            est.value
        );
    }

    // Same seed, same bytes — at one worker and at four.
    let again = sampler(policy, shed, 1)
        .run(&trace)
        .expect("sampling drains");
    assert_eq!(rep.render(), again.render(), "same-seed reruns must match");
    let wide = sampler(policy, shed, 4)
        .run(&trace)
        .expect("sampling drains");
    assert_eq!(
        rep.render(),
        wide.render(),
        "worker count must not change the report"
    );
    assert_eq!(
        freac::probe::to_counters_json(&rep.probes),
        freac::probe::to_counters_json(&wide.probes),
        "worker count must not change the probes"
    );
}

#[test]
fn fifo_reject_new_samples_within_bounds() {
    case(SchedPolicy::Fifo, ShedPolicy::RejectNew, 0x5a3b_0001);
}

#[test]
fn fifo_drop_oldest_samples_within_bounds() {
    case(SchedPolicy::Fifo, ShedPolicy::DropOldest, 0x5a3b_0002);
}

#[test]
fn weighted_fair_reject_new_samples_within_bounds() {
    case(
        SchedPolicy::WeightedFair,
        ShedPolicy::RejectNew,
        0x5a3b_0003,
    );
}

#[test]
fn weighted_fair_drop_oldest_samples_within_bounds() {
    case(
        SchedPolicy::WeightedFair,
        ShedPolicy::DropOldest,
        0x5a3b_0004,
    );
}

#[test]
fn deadline_aware_reject_new_samples_within_bounds() {
    case(
        SchedPolicy::DeadlineAware,
        ShedPolicy::RejectNew,
        0x5a3b_0005,
    );
}

#[test]
fn deadline_aware_drop_oldest_samples_within_bounds() {
    case(
        SchedPolicy::DeadlineAware,
        ShedPolicy::DropOldest,
        0x5a3b_0006,
    );
}
