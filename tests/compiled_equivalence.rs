//! Compiled execution plans must be indistinguishable from the
//! interpreters on every benchmark kernel: the fold plan tracks the
//! step-interpreting `FoldedExecutor` (outputs *and* probe counters), and
//! the 64-wide bit-sliced batch evaluator tracks one reference `Evaluator`
//! per lane. CI runs this test as the compiled-vs-interpreted divergence
//! gate for the example programs.

use freac::core::{Accelerator, AcceleratorTile};
use freac::fold::{compile_fold, schedule_fold, FoldConstraints, FoldedExecutor, LutMode};
use freac::kernels::all_kernels;
use freac::netlist::eval::Evaluator;
use freac::netlist::techmap::{tech_map, TechMapOptions};
use freac::netlist::{compile, Netlist, NodeKind, OptLevel, Value, BATCH_LANES, BATCH_WIDTHS};
use freac::probe::CounterRegistry;

/// One deterministic input vector per primary input, respecting kinds.
fn inputs_for(netlist: &Netlist, seed: u32) -> Vec<Value> {
    netlist
        .primary_inputs()
        .iter()
        .enumerate()
        .map(|(i, &id)| match netlist.nodes()[id.index()].kind {
            NodeKind::BitInput { .. } => Value::Bit((seed >> (i % 32)) & 1 == 1),
            _ => Value::Word(
                seed.wrapping_mul(0x9e37_79b9)
                    .wrapping_add(i as u32 * 0x85eb),
            ),
        })
        .collect()
}

fn mapped_kernel(id: freac::kernels::KernelId) -> Netlist {
    let circuit = freac::kernels::kernel(id).circuit();
    tech_map(&circuit, TechMapOptions::lut4())
        .unwrap_or_else(|e| panic!("{id}: tech_map refused: {e}"))
}

#[test]
fn compiled_fold_matches_interpreter_on_every_kernel() {
    for id in all_kernels() {
        let mapped = mapped_kernel(id);
        let cons = FoldConstraints::for_tile(2, LutMode::Lut4);
        let schedule =
            schedule_fold(&mapped, &cons).unwrap_or_else(|e| panic!("{id}: schedule: {e}"));
        let plan =
            compile_fold(&mapped, &schedule).unwrap_or_else(|e| panic!("{id}: compile_fold: {e}"));
        let mut interp = FoldedExecutor::new(&mapped, &schedule);
        let mut compiled = plan.executor();
        let mut out = Vec::new();
        for cycle in 0..4u32 {
            let inputs = inputs_for(&mapped, 0x5eed_0000 | cycle);
            let expect = interp
                .run_cycle(&inputs)
                .unwrap_or_else(|e| panic!("{id}: interpreted cycle {cycle}: {e}"));
            compiled
                .run_cycle_into(&inputs, &mut out)
                .unwrap_or_else(|e| panic!("{id}: compiled cycle {cycle}: {e}"));
            assert_eq!(out, expect, "{id}: compiled fold diverged at cycle {cycle}");
        }
        // Counter fidelity: the compiled executor accounts for its work
        // exactly like the interpreter, key for key and value for value.
        let mut ra = CounterRegistry::new();
        let mut rb = CounterRegistry::new();
        interp.export_into(&mut ra, "fold");
        compiled.export_into(&mut rb, "fold");
        assert_eq!(
            ra.counters().collect::<Vec<_>>(),
            rb.counters().collect::<Vec<_>>(),
            "{id}: compiled counters diverged from the interpreter"
        );
    }
}

#[test]
fn optimized_mapping_agrees_with_raw_on_every_kernel() {
    // The netlist-optimization pipeline (on by default) must be invisible
    // functionally and strictly helpful operationally: on every kernel the
    // opt-on and opt-off accelerators produce identical outputs across
    // cycles, the optimized fold is no longer than the raw one, and every
    // fold counter of the optimized run is bounded by the raw run's.
    let tile = AcceleratorTile::new(2).expect("tile 2 is valid");
    for id in all_kernels() {
        let circuit = freac::kernels::kernel(id).circuit();
        let raw = Accelerator::map_with_level(&circuit, &tile, OptLevel::Off)
            .unwrap_or_else(|e| panic!("{id}: raw mapping failed: {e}"));
        let opt = Accelerator::map_with_level(&circuit, &tile, OptLevel::Full)
            .unwrap_or_else(|e| panic!("{id}: optimized mapping failed: {e}"));
        assert!(
            opt.fold_cycles() <= raw.fold_cycles(),
            "{id}: optimization lengthened the fold ({} -> {})",
            raw.fold_cycles(),
            opt.fold_cycles()
        );
        assert!(
            opt.stats().luts <= raw.stats().luts,
            "{id}: optimization added LUTs ({} -> {})",
            raw.stats().luts,
            opt.stats().luts
        );
        let mut raw_ex = raw.fold_plan().executor();
        let mut opt_ex = opt.fold_plan().executor();
        let (mut raw_out, mut opt_out) = (Vec::new(), Vec::new());
        for cycle in 0..4u32 {
            // Both accelerators expose the original circuit interface, so
            // one stimulus drives both.
            let inputs = inputs_for(&circuit, 0x0b7_0000 | cycle);
            raw_ex
                .run_cycle_into(&inputs, &mut raw_out)
                .unwrap_or_else(|e| panic!("{id}: raw cycle {cycle}: {e}"));
            opt_ex
                .run_cycle_into(&inputs, &mut opt_out)
                .unwrap_or_else(|e| panic!("{id}: optimized cycle {cycle}: {e}"));
            assert_eq!(
                raw_out, opt_out,
                "{id}: optimized execution diverged at cycle {cycle}"
            );
        }
        // Counter dominance: the optimized executor does the same kind of
        // work (identical counter keys) and never more of it.
        let mut ra = CounterRegistry::new();
        let mut ro = CounterRegistry::new();
        raw_ex.export_into(&mut ra, "fold");
        opt_ex.export_into(&mut ro, "fold");
        let raw_counts: Vec<(String, u64)> =
            ra.counters().map(|(k, v)| (k.to_owned(), v)).collect();
        let opt_counts: Vec<(String, u64)> =
            ro.counters().map(|(k, v)| (k.to_owned(), v)).collect();
        assert_eq!(
            raw_counts.iter().map(|(k, _)| k).collect::<Vec<_>>(),
            opt_counts.iter().map(|(k, _)| k).collect::<Vec<_>>(),
            "{id}: counter key sets diverged"
        );
        for ((key, rv), (_, ov)) in raw_counts.iter().zip(&opt_counts) {
            assert!(
                ov <= rv,
                "{id}: optimized run did more work on {key}: {ov} > {rv}"
            );
        }
    }
}

#[test]
fn optimized_batch_matches_raw_at_every_width_on_every_kernel() {
    // Bit-sliced batch execution over the optimized mapping must track the
    // raw mapping lane for lane at every sweep width.
    let tile = AcceleratorTile::new(2).expect("tile 2 is valid");
    for id in all_kernels() {
        let circuit = freac::kernels::kernel(id).circuit();
        let raw = Accelerator::map_with_level(&circuit, &tile, OptLevel::Off)
            .unwrap_or_else(|e| panic!("{id}: raw mapping failed: {e}"));
        let opt = Accelerator::map_with_level(&circuit, &tile, OptLevel::Full)
            .unwrap_or_else(|e| panic!("{id}: optimized mapping failed: {e}"));
        let raw_plan = compile(raw.netlist()).unwrap_or_else(|e| panic!("{id}: raw compile: {e}"));
        let opt_plan =
            compile(opt.netlist()).unwrap_or_else(|e| panic!("{id}: optimized compile: {e}"));
        for &width in &BATCH_WIDTHS {
            let lanes: Vec<Vec<Value>> = (0..width as u32)
                .map(|l| inputs_for(&circuit, 0x0b7_b000 ^ l.wrapping_mul(0x0101_0101)))
                .collect();
            let mut raw_state = raw_plan.new_batch_state_for(width);
            let mut opt_state = opt_plan.new_batch_state_for(width);
            let (mut raw_out, mut opt_out) = (Vec::new(), Vec::new());
            for pass in 0..2 {
                raw_plan
                    .run_batch_cycle_any(&mut raw_state, &lanes, &mut raw_out)
                    .unwrap_or_else(|e| panic!("{id}: w{width} raw pass {pass}: {e}"));
                opt_plan
                    .run_batch_cycle_any(&mut opt_state, &lanes, &mut opt_out)
                    .unwrap_or_else(|e| panic!("{id}: w{width} optimized pass {pass}: {e}"));
                assert_eq!(
                    raw_out, opt_out,
                    "{id}: w{width} optimized batch diverged at pass {pass}"
                );
            }
        }
    }
}

#[test]
fn batch_evaluation_matches_reference_on_every_kernel() {
    for id in all_kernels() {
        let mapped = mapped_kernel(id);
        let plan = compile(&mapped).unwrap_or_else(|e| panic!("{id}: compile: {e}"));
        let lanes: Vec<Vec<Value>> = (0..BATCH_LANES as u32)
            .map(|l| inputs_for(&mapped, 0xbeef_0000 ^ (l * 0x0101_0101)))
            .collect();
        let mut state = plan.new_batch_state();
        let mut out = Vec::new();
        let mut refs: Vec<Evaluator> = lanes.iter().map(|_| Evaluator::new(&mapped)).collect();
        for pass in 0..3 {
            plan.run_batch_cycle(&mut state, &lanes, &mut out)
                .unwrap_or_else(|e| panic!("{id}: batch pass {pass}: {e}"));
            for (l, reference) in refs.iter_mut().enumerate() {
                let expect = reference
                    .run_cycle(&lanes[l])
                    .unwrap_or_else(|e| panic!("{id}: lane {l} reference: {e}"));
                assert_eq!(
                    out[l], expect,
                    "{id}: batch lane {l} diverged at pass {pass}"
                );
            }
        }
    }
}

#[test]
fn wide_batch_matches_narrow_and_reference_on_every_kernel() {
    // The multi-word sweeps (256 and 512 lanes) must be indistinguishable
    // from both the 64-lane sweep (lane-for-lane on the shared prefix)
    // and one reference Evaluator per lane — on every kernel, with the
    // same cycle count at every width.
    for id in all_kernels() {
        let mapped = mapped_kernel(id);
        let plan = compile(&mapped).unwrap_or_else(|e| panic!("{id}: compile: {e}"));
        let lane_at = |l: u32| -> Vec<Value> {
            inputs_for(&mapped, 0xbeef_0000 ^ l.wrapping_mul(0x0101_0101))
        };
        let passes = 3;
        let mut narrow_by_pass: Vec<Vec<Vec<Value>>> = Vec::new();
        for &width in &BATCH_WIDTHS {
            let lanes: Vec<Vec<Value>> = (0..width as u32).map(lane_at).collect();
            let mut state = plan.new_batch_state_for(width);
            assert!(
                state.lane_capacity() >= width,
                "{id}: w{width} state holds only {} lanes",
                state.lane_capacity()
            );
            let mut out = Vec::new();
            let mut refs: Vec<Evaluator> = lanes.iter().map(|_| Evaluator::new(&mapped)).collect();
            for pass in 0..passes {
                plan.run_batch_cycle_any(&mut state, &lanes, &mut out)
                    .unwrap_or_else(|e| panic!("{id}: w{width} pass {pass}: {e}"));
                for (l, reference) in refs.iter_mut().enumerate() {
                    let expect = reference
                        .run_cycle(&lanes[l])
                        .unwrap_or_else(|e| panic!("{id}: w{width} lane {l} reference: {e}"));
                    assert_eq!(
                        out[l], expect,
                        "{id}: w{width} lane {l} diverged from reference at pass {pass}"
                    );
                }
                if width == BATCH_LANES {
                    narrow_by_pass.push(out.clone());
                } else {
                    assert_eq!(
                        &out[..BATCH_LANES],
                        &narrow_by_pass[pass][..],
                        "{id}: w{width} pass {pass} diverged from the 64-lane sweep"
                    );
                }
            }
            assert_eq!(
                state.cycles(),
                passes as u64,
                "{id}: w{width} miscounted cycles"
            );
        }
    }
}
