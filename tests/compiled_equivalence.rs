//! Compiled execution plans must be indistinguishable from the
//! interpreters on every benchmark kernel: the fold plan tracks the
//! step-interpreting `FoldedExecutor` (outputs *and* probe counters), and
//! the 64-wide bit-sliced batch evaluator tracks one reference `Evaluator`
//! per lane. CI runs this test as the compiled-vs-interpreted divergence
//! gate for the example programs.

use freac::fold::{compile_fold, schedule_fold, FoldConstraints, FoldedExecutor, LutMode};
use freac::kernels::all_kernels;
use freac::netlist::eval::Evaluator;
use freac::netlist::techmap::{tech_map, TechMapOptions};
use freac::netlist::{compile, Netlist, NodeKind, Value, BATCH_LANES, BATCH_WIDTHS};
use freac::probe::CounterRegistry;

/// One deterministic input vector per primary input, respecting kinds.
fn inputs_for(netlist: &Netlist, seed: u32) -> Vec<Value> {
    netlist
        .primary_inputs()
        .iter()
        .enumerate()
        .map(|(i, &id)| match netlist.nodes()[id.index()].kind {
            NodeKind::BitInput { .. } => Value::Bit((seed >> (i % 32)) & 1 == 1),
            _ => Value::Word(
                seed.wrapping_mul(0x9e37_79b9)
                    .wrapping_add(i as u32 * 0x85eb),
            ),
        })
        .collect()
}

fn mapped_kernel(id: freac::kernels::KernelId) -> Netlist {
    let circuit = freac::kernels::kernel(id).circuit();
    tech_map(&circuit, TechMapOptions::lut4())
        .unwrap_or_else(|e| panic!("{id}: tech_map refused: {e}"))
}

#[test]
fn compiled_fold_matches_interpreter_on_every_kernel() {
    for id in all_kernels() {
        let mapped = mapped_kernel(id);
        let cons = FoldConstraints::for_tile(2, LutMode::Lut4);
        let schedule =
            schedule_fold(&mapped, &cons).unwrap_or_else(|e| panic!("{id}: schedule: {e}"));
        let plan =
            compile_fold(&mapped, &schedule).unwrap_or_else(|e| panic!("{id}: compile_fold: {e}"));
        let mut interp = FoldedExecutor::new(&mapped, &schedule);
        let mut compiled = plan.executor();
        let mut out = Vec::new();
        for cycle in 0..4u32 {
            let inputs = inputs_for(&mapped, 0x5eed_0000 | cycle);
            let expect = interp
                .run_cycle(&inputs)
                .unwrap_or_else(|e| panic!("{id}: interpreted cycle {cycle}: {e}"));
            compiled
                .run_cycle_into(&inputs, &mut out)
                .unwrap_or_else(|e| panic!("{id}: compiled cycle {cycle}: {e}"));
            assert_eq!(out, expect, "{id}: compiled fold diverged at cycle {cycle}");
        }
        // Counter fidelity: the compiled executor accounts for its work
        // exactly like the interpreter, key for key and value for value.
        let mut ra = CounterRegistry::new();
        let mut rb = CounterRegistry::new();
        interp.export_into(&mut ra, "fold");
        compiled.export_into(&mut rb, "fold");
        assert_eq!(
            ra.counters().collect::<Vec<_>>(),
            rb.counters().collect::<Vec<_>>(),
            "{id}: compiled counters diverged from the interpreter"
        );
    }
}

#[test]
fn batch_evaluation_matches_reference_on_every_kernel() {
    for id in all_kernels() {
        let mapped = mapped_kernel(id);
        let plan = compile(&mapped).unwrap_or_else(|e| panic!("{id}: compile: {e}"));
        let lanes: Vec<Vec<Value>> = (0..BATCH_LANES as u32)
            .map(|l| inputs_for(&mapped, 0xbeef_0000 ^ (l * 0x0101_0101)))
            .collect();
        let mut state = plan.new_batch_state();
        let mut out = Vec::new();
        let mut refs: Vec<Evaluator> = lanes.iter().map(|_| Evaluator::new(&mapped)).collect();
        for pass in 0..3 {
            plan.run_batch_cycle(&mut state, &lanes, &mut out)
                .unwrap_or_else(|e| panic!("{id}: batch pass {pass}: {e}"));
            for (l, reference) in refs.iter_mut().enumerate() {
                let expect = reference
                    .run_cycle(&lanes[l])
                    .unwrap_or_else(|e| panic!("{id}: lane {l} reference: {e}"));
                assert_eq!(
                    out[l], expect,
                    "{id}: batch lane {l} diverged at pass {pass}"
                );
            }
        }
    }
}

#[test]
fn wide_batch_matches_narrow_and_reference_on_every_kernel() {
    // The multi-word sweeps (256 and 512 lanes) must be indistinguishable
    // from both the 64-lane sweep (lane-for-lane on the shared prefix)
    // and one reference Evaluator per lane — on every kernel, with the
    // same cycle count at every width.
    for id in all_kernels() {
        let mapped = mapped_kernel(id);
        let plan = compile(&mapped).unwrap_or_else(|e| panic!("{id}: compile: {e}"));
        let lane_at = |l: u32| -> Vec<Value> {
            inputs_for(&mapped, 0xbeef_0000 ^ l.wrapping_mul(0x0101_0101))
        };
        let passes = 3;
        let mut narrow_by_pass: Vec<Vec<Vec<Value>>> = Vec::new();
        for &width in &BATCH_WIDTHS {
            let lanes: Vec<Vec<Value>> = (0..width as u32).map(lane_at).collect();
            let mut state = plan.new_batch_state_for(width);
            assert!(
                state.lane_capacity() >= width,
                "{id}: w{width} state holds only {} lanes",
                state.lane_capacity()
            );
            let mut out = Vec::new();
            let mut refs: Vec<Evaluator> = lanes.iter().map(|_| Evaluator::new(&mapped)).collect();
            for pass in 0..passes {
                plan.run_batch_cycle_any(&mut state, &lanes, &mut out)
                    .unwrap_or_else(|e| panic!("{id}: w{width} pass {pass}: {e}"));
                for (l, reference) in refs.iter_mut().enumerate() {
                    let expect = reference
                        .run_cycle(&lanes[l])
                        .unwrap_or_else(|e| panic!("{id}: w{width} lane {l} reference: {e}"));
                    assert_eq!(
                        out[l], expect,
                        "{id}: w{width} lane {l} diverged from reference at pass {pass}"
                    );
                }
                if width == BATCH_LANES {
                    narrow_by_pass.push(out.clone());
                } else {
                    assert_eq!(
                        &out[..BATCH_LANES],
                        &narrow_by_pass[pass][..],
                        "{id}: w{width} pass {pass} diverged from the 64-lane sweep"
                    );
                }
            }
            assert_eq!(
                state.cycles(),
                passes as u64,
                "{id}: w{width} miscounted cycles"
            );
        }
    }
}
