//! Coherence-mode acceptance gates: on every benchmark kernel, serving
//! under [`HandoffMode::Coherent`] must produce exactly the conservative
//! mode's functional results while paying strictly less for every way
//! handoff, and the MESI litmus machine's targeted claim must leave the
//! same final memory image as the blind whole-cache flush. Per-tenant TLB
//! isolation faults deterministically on a paper kernel.

use std::collections::BTreeMap;

use freac::cache::coherence::CoherentMemory;
use freac::core::{HandoffMode, SlicePartition};
use freac::kernels::{all_kernels, KernelId};
use freac::serve::{Request, ServeConfig, ServeReport, Server, ShedReason};

/// Serves a small deterministic trace of one paper kernel, with a way
/// rescale mid-setup so the conversion path is exercised too.
fn serve_kernel(id: KernelId, handoff: HandoffMode) -> (ServeReport, u64) {
    let name = id.name().to_lowercase();
    let mut server = Server::new(ServeConfig {
        slices: 1,
        handoff,
        ..ServeConfig::default()
    })
    .expect("config is valid");
    server.register_paper_kernel(id).expect("kernel maps");
    server.add_tenant("t", 1).expect("unique tenant");
    let conversion = server
        .rescale(SlicePartition::max_compute(), 0)
        .expect("rescale is valid");
    for seq in 0..4 {
        server
            .submit(Request::new("t", seq, &name, 0, 0x5eed ^ seq))
            .expect("request is valid");
    }
    (
        server.run_to_completion().expect("serving drains"),
        conversion,
    )
}

#[test]
fn coherent_serving_matches_conservative_flush_on_every_kernel() {
    for id in all_kernels() {
        let (flat, flat_conv) = serve_kernel(id, HandoffMode::ConservativeFlush);
        let (coh, coh_conv) = serve_kernel(id, HandoffMode::coherent());
        assert_eq!(
            flat.completions.len(),
            4,
            "{id}: conservative mode must complete the whole trace"
        );
        // Identical request results: same completions, same hashes, same
        // canonical order — the handoff mode is invisible to tenants.
        let results = |r: &ServeReport| -> Vec<(String, u64, u64)> {
            r.completions
                .iter()
                .map(|c| (c.tenant.clone(), c.seq, c.output_hash))
                .collect()
        };
        assert_eq!(results(&flat), results(&coh), "{id}: results diverged");
        assert!(flat.sheds.is_empty() && coh.sheds.is_empty());
        // Strictly cheaper handoffs: the way conversion, the first-claim
        // reconfiguration, and the drain-time way reclaim all shrink.
        assert!(
            coh_conv < flat_conv,
            "{id}: coherent conversion {coh_conv} !< conservative {flat_conv}"
        );
        assert!(
            coh.completions[0].reconfig_ps < flat.completions[0].reconfig_ps,
            "{id}: coherent first-claim reconfig must beat the blind flush"
        );
        assert!(
            coh.teardown_ps < flat.teardown_ps,
            "{id}: coherent way reclaim must beat the blind flush"
        );
    }
}

#[test]
fn targeted_claim_equals_conservative_flush_on_every_kernel_image() {
    // Per kernel: seed a two-agent coherent memory with a deterministic
    // write/read mix derived from the kernel's name, then prove the
    // targeted claim and the conservative flush converge to the same
    // final memory image, with the protocol invariants intact throughout.
    for id in all_kernels() {
        let salt: u64 = id.name().bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        let lines: Vec<u64> = (0..8u64).map(|i| i * 64).collect();
        let mut m = CoherentMemory::new(2);
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..64u64 {
            let agent = ((salt >> (step % 61)) & 1) as usize;
            let addr = lines[((salt.rotate_left(step as u32)) % 8) as usize];
            if step % 3 == 0 {
                let got = m.read(agent, addr);
                assert_eq!(
                    got,
                    reference.get(&addr).copied().unwrap_or(0),
                    "{id}: stale read at {addr:#x}"
                );
            } else {
                let value = salt.wrapping_mul(step + 1);
                m.write(agent, addr, value);
                reference.insert(addr, value);
            }
            m.check_invariants().unwrap_or_else(|e| panic!("{id}: {e}"));
        }
        let mut claimed = m.clone();
        let mut flushed = m;
        claimed.claim(lines.iter().copied());
        flushed.flush_all_conservative();
        assert_eq!(
            claimed.final_memory(),
            flushed.final_memory(),
            "{id}: claim and conservative flush diverged"
        );
        for (&addr, &value) in &reference {
            assert_eq!(
                claimed.memory_value(addr),
                value,
                "{id}: claim lost dirty data at {addr:#x}"
            );
        }
    }
}

#[test]
fn cross_tenant_request_faults_deterministically_on_a_paper_kernel() {
    let run = || {
        let mut server = Server::new(ServeConfig {
            handoff: HandoffMode::coherent(),
            ..ServeConfig::default()
        })
        .expect("config is valid");
        server.register_paper_kernel(KernelId::Aes).expect("maps");
        server.add_tenant("alice", 1).expect("unique");
        server.add_tenant("mallory", 1).expect("unique");
        let alice = server.tenant_segment("alice").expect("registered");
        // Mallory probes Alice's segment; Alice stays inside her own.
        server
            .submit(Request::new("mallory", 0, "aes", 0, 1).with_spad_addr(alice.base))
            .expect("valid submission");
        server
            .submit(Request::new("alice", 0, "aes", 0, 2).with_spad_addr(alice.base))
            .expect("valid submission");
        server.run_to_completion().expect("drains")
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1.completions.len(), 1);
    assert_eq!(r1.completions[0].tenant, "alice");
    assert_eq!(r1.sheds.len(), 1);
    assert_eq!(r1.sheds[0].request.tenant, "mallory");
    assert_eq!(r1.sheds[0].reason, ShedReason::TlbFault);
    assert_eq!(r1.probes.counter("serve.tenant.mallory.tlb_faults"), 1);
    assert_eq!(r1.sheds, r2.sheds, "fault must be deterministic");
    assert_eq!(r1.completions, r2.completions);
}
