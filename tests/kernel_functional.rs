//! Functional verification of every benchmark accelerator against its
//! software reference, running through the full FReaC pipeline
//! (tech-map → fold → folded execution) exactly as the hardware would.

use freac::core::{Accelerator, AcceleratorTile};
use freac::fold::FoldedExecutor;
use freac::kernels::{aes, conv, dot, fc, gemm, kmp, nw, srt, stn2, stn3, vadd};
use freac::netlist::{Netlist, Value};
use freac_rand::Rng64;

/// Maps a circuit onto a 1-MCC tile and returns a folded executor factory.
fn folded(circuit: &Netlist) -> (Accelerator, ()) {
    let tile = AcceleratorTile::new(1).expect("tile 1 is valid");
    (
        Accelerator::map(circuit, &tile).expect("kernel circuits map"),
        (),
    )
}

fn run_stream(accel: &Accelerator, stream: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut ex = FoldedExecutor::new(accel.netlist(), accel.schedule());
    stream
        .iter()
        .map(|inputs| ex.run_cycle(inputs).expect("folded execution succeeds"))
        .collect()
}

#[test]
fn aes_blocks_match_reference() {
    let (accel, ()) = folded(&aes::build_circuit());
    let mut rng = Rng64::new(7);
    for _ in 0..3 {
        let mut pt = [0u8; 16];
        rng.fill_bytes(&mut pt);
        let inputs: Vec<Value> = (0..4)
            .map(|c| {
                Value::Word(u32::from_le_bytes([
                    pt[c * 4],
                    pt[c * 4 + 1],
                    pt[c * 4 + 2],
                    pt[c * 4 + 3],
                ]))
            })
            .collect();
        let stream: Vec<Vec<Value>> = (0..11).map(|_| inputs.clone()).collect();
        let outs = run_stream(&accel, &stream);
        let last = outs.last().expect("eleven cycles ran");
        let mut ct = [0u8; 16];
        for c in 0..4 {
            ct[c * 4..c * 4 + 4].copy_from_slice(&last[c].as_word().expect("word").to_le_bytes());
        }
        assert_eq!(ct, aes::encrypt_block(&pt, &aes::KEY));
    }
}

#[test]
fn vadd_matches_reference() {
    let (accel, ()) = folded(&vadd::build_circuit());
    let a = [5u32, u32::MAX, 123_456_789];
    let b = [9u32, 2, 987_654_321];
    let stream: Vec<Vec<Value>> = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| vec![Value::Word(x), Value::Word(y)])
        .collect();
    let outs = run_stream(&accel, &stream);
    let expect = vadd::reference(&a, &b);
    for (o, e) in outs.iter().zip(expect) {
        assert_eq!(o[0].as_word(), Some(e));
    }
}

#[test]
fn dot_accumulates_like_reference() {
    let (accel, ()) = folded(&dot::build_circuit());
    let a = [2u32, 3, 5, 7, 11];
    let b = [13u32, 17, 19, 23, 29];
    let stream: Vec<Vec<Value>> = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| vec![Value::Word(x), Value::Word(y)])
        .collect();
    let outs = run_stream(&accel, &stream);
    assert_eq!(
        outs.last().expect("stream ran")[0].as_word(),
        Some(dot::reference(&a, &b))
    );
}

#[test]
fn gemm_pe_computes_inner_products() {
    // Stream one 64-deep column pair through the PE.
    let (accel, ()) = folded(&gemm::build_circuit());
    let mut rng = Rng64::new(11);
    let a: Vec<u32> = (0..64).map(|_| rng.range_u32(0, 1000)).collect();
    let b: Vec<u32> = (0..64).map(|_| rng.range_u32(0, 1000)).collect();
    let stream: Vec<Vec<Value>> = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| vec![Value::Word(x), Value::Word(y)])
        .collect();
    let outs = run_stream(&accel, &stream);
    let last = outs.last().expect("stream ran");
    let expect = a
        .iter()
        .zip(&b)
        .fold(0u32, |s, (&x, &y)| s.wrapping_add(x.wrapping_mul(y)));
    assert_eq!(last[0].as_word(), Some(expect));
    assert_eq!(last[1], Value::Bit(true), "done asserted after 64 cycles");
}

#[test]
fn fc_neuron_with_relu() {
    let (accel, ()) = folded(&fc::build_circuit());
    let mut rng = Rng64::new(13);
    let w: Vec<u32> = (0..fc::IN).map(|_| rng.range_u32(0, 512)).collect();
    let x: Vec<u32> = (0..fc::IN).map(|_| rng.range_u32(0, 512)).collect();
    let stream: Vec<Vec<Value>> = w
        .iter()
        .zip(&x)
        .map(|(&a, &b)| vec![Value::Word(a), Value::Word(b)])
        .collect();
    let outs = run_stream(&accel, &stream);
    assert_eq!(
        outs.last().expect("stream ran")[0].as_word(),
        Some(fc::neuron(&w, &x))
    );
}

#[test]
fn conv_pixel_through_folded_pipeline() {
    let (accel, ()) = folded(&conv::build_circuit());
    let p = [10u32, 20, 30, 40, 50, 60, 70, 80, 90];
    let stream: Vec<Vec<Value>> = p.iter().map(|&v| vec![Value::Word(v)]).collect();
    let outs = run_stream(&accel, &stream);
    assert_eq!(
        outs.last().expect("stream ran")[0].as_word(),
        Some(conv::pixel(&p))
    );
}

#[test]
fn stencils_match_reference() {
    let (a2, ()) = folded(&stn2::build_circuit());
    let out = run_stream(
        &a2,
        &[vec![
            Value::Word(9),
            Value::Word(8),
            Value::Word(7),
            Value::Word(6),
            Value::Word(5),
        ]],
    );
    assert_eq!(out[0][0].as_word(), Some(stn2::point(9, 8, 7, 6, 5)));

    let (a3, ()) = folded(&stn3::build_circuit());
    let vals = [1u32, 2, 3, 4, 5, 6, 7];
    let out = run_stream(
        &a3,
        &[vals.iter().map(|&v| Value::Word(v)).collect::<Vec<_>>()],
    );
    assert_eq!(out[0][0].as_word(), Some(stn3::point(vals)));
}

#[test]
fn nw_cell_matches_reference() {
    let (accel, ()) = folded(&nw::build_circuit());
    let cases = [
        (nw::BIAS, nw::BIAS, nw::BIAS, b'C', b'C'),
        (nw::BIAS + 3, nw::BIAS + 1, nw::BIAS + 7, b'A', b'G'),
    ];
    for (nwv, n, w, a, b) in cases {
        let out = run_stream(
            &accel,
            &[vec![
                Value::Word(nwv as u32),
                Value::Word(n as u32),
                Value::Word(w as u32),
                Value::Word(a as u32),
                Value::Word(b as u32),
            ]],
        );
        assert_eq!(out[0][0].as_word(), Some(nw::cell(nwv, n, w, a, b) as u32));
    }
}

#[test]
fn kmp_counts_matches_on_folded_hardware() {
    let (accel, ()) = folded(&kmp::build_circuit());
    let text = b"ABABXXABABABTEST";
    let stream: Vec<Vec<Value>> = text
        .chunks(4)
        .map(|c| vec![Value::Word(u32::from_le_bytes([c[0], c[1], c[2], c[3]]))])
        .collect();
    let outs = run_stream(&accel, &stream);
    assert_eq!(
        outs.last().expect("stream ran")[0].as_word(),
        Some(kmp::count_matches(text))
    );
}

#[test]
fn srt_compare_exchange_on_folded_hardware() {
    let (accel, ()) = folded(&srt::build_circuit());
    let outs = run_stream(&accel, &[vec![Value::Word(42), Value::Word(17)]]);
    let (mn, mx) = srt::compare_exchange(42, 17);
    assert_eq!(outs[0][0].as_word(), Some(mn));
    assert_eq!(outs[0][1].as_word(), Some(mx));
}

#[test]
fn full_gemm_against_matrix_reference() {
    // Drive the PE through an entire (small) matrix multiply and compare
    // against the dense software reference.
    let n = 4usize;
    let mut rng = Rng64::new(17);
    let a: Vec<u32> = (0..n * n).map(|_| rng.range_u32(0, 100)).collect();
    let b: Vec<u32> = (0..n * n).map(|_| rng.range_u32(0, 100)).collect();
    let expect = gemm::reference(&a, &b, n);

    // A PE with K = n.
    let circuit = {
        // Reuse the gemm builder shape via a small local PE of depth 4.
        use freac::netlist::builder::CircuitBuilder;
        let mut bld = CircuitBuilder::new("gemm4");
        let wa = bld.word_input("a", 32);
        let wb = bld.word_input("b", 32);
        let (acc, acc_h) = bld.word_reg(0, 32);
        let (k, k_h) = bld.word_reg(0, 8);
        let zero8 = bld.const_word(0, 8);
        let last = bld.const_word(n as u32 - 1, 8);
        let is_first = bld.eq_words(&k, &zero8);
        let is_last = bld.eq_words(&k, &last);
        let zero32 = bld.const_word(0, 32);
        let acc_in = bld.mux_word(is_first, &acc, &zero32);
        let m = bld.mac(&wa, &wb, &acc_in);
        bld.connect_word_reg(acc_h, &m);
        let k1 = bld.inc(&k);
        let k_next = bld.mux_word(is_last, &k1, &zero8);
        bld.connect_word_reg(k_h, &k_next);
        bld.word_output("acc", &m);
        bld.bit_output("done", is_last);
        bld.finish().expect("pe builds")
    };
    let (accel, ()) = folded(&circuit);
    let mut ex = FoldedExecutor::new(accel.netlist(), accel.schedule());
    let mut got = vec![0u32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut out = Vec::new();
            for k in 0..n {
                out = ex
                    .run_cycle(&[Value::Word(a[i * n + k]), Value::Word(b[k * n + j])])
                    .expect("pe runs");
            }
            assert_eq!(out[1], Value::Bit(true));
            got[i * n + j] = out[0].as_word().expect("word");
        }
    }
    assert_eq!(got, expect);
}
