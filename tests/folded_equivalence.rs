//! The central correctness property of the reproduction: executing a
//! circuit through technology mapping + logic folding on a micro compute
//! cluster is bit-identical to evaluating the original netlist.
//!
//! Random circuits are generated from a small op grammar (arithmetic,
//! logic, comparisons, MAC, a feedback register), mapped to 4- and 5-LUTs,
//! folded onto tiles of several sizes, and co-simulated against the
//! reference evaluator over multiple cycles.

use freac::fold::{schedule_fold, FoldConstraints, FoldedExecutor, LutMode};
use freac::netlist::builder::{CircuitBuilder, Word};
use freac::netlist::eval::Evaluator;
use freac::netlist::techmap::{tech_map, TechMapOptions};
use freac::netlist::{Netlist, Value};
use freac_rand::{cases, Rng64};

/// One step of the random circuit grammar.
#[derive(Debug, Clone)]
enum Op {
    Add(usize, usize),
    Sub(usize, usize),
    Xor(usize, usize),
    And(usize, usize),
    Or(usize, usize),
    MuxBySign(usize, usize, usize),
    RotL(usize, u8),
    Min(usize, usize),
    Mac(usize, usize, usize),
}

fn random_op(rng: &mut Rng64, pool: usize) -> Op {
    let a = rng.index(pool);
    let b = rng.index(pool);
    match rng.index(9) {
        0 => Op::Add(a, b),
        1 => Op::Sub(a, b),
        2 => Op::Xor(a, b),
        3 => Op::And(a, b),
        4 => Op::Or(a, b),
        5 => Op::MuxBySign(a, b, rng.index(pool)),
        6 => Op::RotL(a, rng.index(8) as u8),
        7 => Op::Min(a, b),
        _ => Op::Mac(a, b, rng.index(pool)),
    }
}

fn random_ops(rng: &mut Rng64, pool: usize, lo: usize, hi: usize) -> Vec<Op> {
    let len = lo + rng.index(hi - lo);
    (0..len).map(|_| random_op(rng, pool)).collect()
}

fn random_inputs(rng: &mut Rng64, lo: usize, hi: usize) -> Vec<(u32, u32)> {
    let len = lo + rng.index(hi - lo);
    (0..len)
        .map(|_| (rng.range_u32(0, 65536), rng.range_u32(0, 65536)))
        .collect()
}

/// Builds the circuit and, in lockstep, a software model of it.
fn build(ops: &[Op], with_reg: bool) -> Netlist {
    let mut b = CircuitBuilder::new("random");
    let mut words: Vec<Word> = vec![b.word_input("x", 16), b.word_input("y", 16)];
    let reg = if with_reg {
        let (q, h) = b.word_reg(0, 16);
        words.push(q.clone());
        Some((q, h))
    } else {
        None
    };
    for op in ops {
        let pick = |i: &usize| words[i % words.len()].clone();
        let w = match op {
            Op::Add(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.add(&x, &y)
            }
            Op::Sub(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.sub(&x, &y)
            }
            Op::Xor(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.xor_words(&x, &y)
            }
            Op::And(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.and_words(&x, &y)
            }
            Op::Or(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.or_words(&x, &y)
            }
            Op::MuxBySign(s, a, c) => {
                let sel = pick(s).bit(15);
                let (x, y) = (pick(a), pick(c));
                b.mux_word(sel, &x, &y)
            }
            Op::RotL(a, k) => {
                let x = pick(a);
                b.rotl_const(&x, *k as usize)
            }
            Op::Min(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.min_max_unsigned(&x, &y).0
            }
            Op::Mac(a, c, d) => {
                let (x, y, z) = (pick(a), pick(c), pick(d));
                let m = b.mac(&x, &y, &z);
                m.slice(0, 16)
            }
        };
        words.push(w);
    }
    let last = words.last().expect("at least the inputs exist").clone();
    if let Some((_, h)) = reg {
        b.connect_word_reg(h, &last);
    }
    b.word_output("out", &last);
    let prev = words[words.len().saturating_sub(2)].clone();
    b.word_output("prev", &prev);
    b.finish().expect("generated circuit is structurally valid")
}

fn co_simulate(
    netlist: &Netlist,
    k: TechMapOptions,
    mode: LutMode,
    clusters: usize,
    inputs: &[(u32, u32)],
) {
    let mapped = tech_map(netlist, k).expect("mappable");
    let cons = FoldConstraints::for_tile(clusters, mode);
    let schedule = schedule_fold(&mapped, &cons).expect("schedulable");
    let mut folded = FoldedExecutor::new(&mapped, &schedule);
    let mut reference = Evaluator::new(netlist);
    for &(x, y) in inputs {
        let vals = [Value::Word(x), Value::Word(y)];
        let a = folded.run_cycle(&vals).expect("folded execution succeeds");
        let b = reference
            .run_cycle(&vals)
            .expect("reference evaluation succeeds");
        assert_eq!(a, b, "folded and reference outputs diverged");
    }
}

#[test]
fn folded_execution_matches_reference_lut4() {
    cases(48, 0x000F_01D4, |rng| {
        let ops = random_ops(rng, 6, 1, 12);
        let with_reg = rng.bool();
        let clusters = 1 + rng.index(3);
        let inputs = random_inputs(rng, 1, 4);
        let n = build(&ops, with_reg);
        co_simulate(&n, TechMapOptions::lut4(), LutMode::Lut4, clusters, &inputs);
    });
}

#[test]
fn folded_execution_matches_reference_lut5() {
    cases(48, 0x000F_01D5, |rng| {
        let ops = random_ops(rng, 6, 1, 10);
        let inputs = random_inputs(rng, 1, 3);
        let n = build(&ops, true);
        co_simulate(&n, TechMapOptions::lut5(), LutMode::Lut5, 2, &inputs);
    });
}

#[test]
fn tech_mapping_preserves_semantics() {
    cases(48, 0x7EC4, |rng| {
        let ops = random_ops(rng, 6, 1, 12);
        let inputs = random_inputs(rng, 1, 4);
        let n = build(&ops, true);
        let mapped = tech_map(&n, TechMapOptions::lut4()).expect("mappable");
        let vectors: Vec<Vec<Value>> = inputs
            .iter()
            .map(|&(x, y)| vec![Value::Word(x), Value::Word(y)])
            .collect();
        assert!(freac::netlist::eval::equivalent_on(&n, &mapped, &vectors, 2).expect("evaluable"));
    });
}

#[test]
fn kernel_circuits_fold_equivalently() {
    // Every benchmark circuit, mapped and folded on a 2-cluster tile, must
    // track the reference evaluator over several cycles of a fixed stimulus.
    for id in freac::kernels::all_kernels() {
        let k = freac::kernels::kernel(id);
        let circuit = k.circuit();
        let mapped = tech_map(&circuit, TechMapOptions::lut4()).expect("mappable");
        let cons = FoldConstraints::for_tile(2, LutMode::Lut4);
        let schedule = schedule_fold(&mapped, &cons).expect("schedulable");
        let mut folded = FoldedExecutor::new(&mapped, &schedule);
        let mut reference = Evaluator::new(&circuit);
        // Deterministic stimulus matching each circuit's input signature.
        let inputs: Vec<Value> = circuit
            .primary_inputs()
            .iter()
            .enumerate()
            .map(|(i, _)| Value::Word((i as u32 + 3).wrapping_mul(2654435761) % 1024))
            .collect();
        for cycle in 0..6 {
            let a = folded.run_cycle(&inputs).expect("folded");
            let b = reference.run_cycle(&inputs).expect("reference");
            assert_eq!(a, b, "{id} diverged at cycle {cycle}");
        }
    }
}
