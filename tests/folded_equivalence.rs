//! The central correctness property of the reproduction: executing a
//! circuit through technology mapping + logic folding on a micro compute
//! cluster is bit-identical to evaluating the original netlist.
//!
//! These properties run on the `freac-proptest` harness: random circuits
//! come from the shared grammar (`freac_proptest::circuit`), failing cases
//! are greedily shrunk to minimal counterexamples, and every failure
//! report carries a seed that replays it (see `tests/regressions/`).
//! The suite-wide case count and seed come from `FREAC_PROPTEST_CASES`
//! and `FREAC_PROPTEST_SEED`.

use freac::netlist::techmap::{tech_map, TechMapOptions};
use freac::netlist::Value;
use freac_proptest::check;
use freac_proptest::circuit::CircuitSpec;
use freac_proptest::oracles::fold::{self, FoldCase};

#[test]
fn folded_execution_matches_reference_lut4() {
    // The three-way oracle with the LUT flavor pinned to 4-LUTs: direct
    // evaluation, the mapped netlist, and the folded schedule must agree.
    check(
        "fold/lut4",
        |rng| FoldCase {
            lut5: false,
            ..fold::generate(rng)
        },
        |case| fold::shrink(case).into_iter().filter(|c| !c.lut5).collect(),
        fold::check,
    );
}

#[test]
fn folded_execution_matches_reference_lut5() {
    check(
        "fold/lut5",
        |rng| FoldCase {
            lut5: true,
            ..fold::generate(rng)
        },
        |case| {
            // Keep candidates in the 5-LUT flavor this property pins.
            fold::shrink(case).into_iter().filter(|c| c.lut5).collect()
        },
        fold::check,
    );
}

#[test]
fn tech_mapping_preserves_semantics() {
    // Mapping alone (no folding): the K-LUT netlist is equivalent to the
    // original on random multi-cycle stimuli.
    check(
        "fold/techmap-equivalence",
        fold::generate,
        fold::shrink,
        |case: &FoldCase| {
            let netlist = case.circuit.build();
            let opts = if case.lut5 {
                TechMapOptions::lut5()
            } else {
                TechMapOptions::lut4()
            };
            let mapped = tech_map(&netlist, opts).map_err(|e| format!("tech_map refused: {e}"))?;
            let vectors: Vec<Vec<Value>> = case
                .stimulus
                .iter()
                .map(|&(x, y)| vec![Value::Word(x), Value::Word(y)])
                .collect();
            let same = freac::netlist::eval::equivalent_on(&netlist, &mapped, &vectors, 2)
                .map_err(|e| format!("evaluation failed: {e}"))?;
            if same {
                Ok(())
            } else {
                Err("mapped netlist diverged from the original".into())
            }
        },
    );
}

#[test]
fn shrunk_circuits_stay_well_formed() {
    // Meta-property keeping the shrinker honest: every candidate the
    // grammar offers must itself build, map, and fold cleanly, otherwise
    // shrinking a real failure would derail into generator bugs.
    check(
        "fold/shrink-closure",
        |rng| CircuitSpec::random(rng, 10),
        |_| Vec::new(),
        |spec: &CircuitSpec| {
            for cand in spec.shrink() {
                let case = FoldCase {
                    circuit: cand,
                    lut5: false,
                    clusters: 1,
                    stimulus: vec![(1, 2)],
                };
                fold::check(&case).map_err(|e| format!("shrink candidate broke: {e}"))?;
            }
            Ok(())
        },
    );
}
