//! Integration gates for the cluster serving layer (ISSUE acceptance):
//! kernel-affinity routing strictly reduces reconfigurations vs.
//! round-robin placement, work stealing strictly reduces tail latency on a
//! skewed trace, elastic way autoscaling beats a static allocation on a
//! load spike with every conversion charged, and a ~million-request smoke
//! drains with conservation intact and ordered quantiles.

use freac::kernels::KernelId;
use freac::netlist::builder::CircuitBuilder;
use freac::netlist::Netlist;
use freac::serve::{
    AutoscaleConfig, Cluster, ClusterConfig, ClusterReport, Request, RequestProfile, RoutePolicy,
    ServeConfig, StealConfig,
};

fn tiny_kernel(name: &str) -> Netlist {
    let mut b = CircuitBuilder::new(name);
    let a = b.word_input("a", 8);
    let x = b.word_input("x", 8);
    let s = b.add(&a, &x);
    b.word_output("s", &s);
    b.finish().expect("tiny kernel builds")
}

fn tiny_profile() -> RequestProfile {
    RequestProfile {
        cycles_per_item: 2,
        read_words: 4,
        write_words: 2,
    }
}

/// Four tenants, each pinned to one paper kernel, arrivals interleaved so
/// a shard serving mixed traffic must swap bitstreams constantly.
fn multi_kernel_cluster(route: RoutePolicy) -> ClusterReport {
    let kernels = [KernelId::Aes, KernelId::Gemm, KernelId::Kmp, KernelId::Dot];
    let mut cluster = Cluster::new(ClusterConfig {
        shards: 4,
        route,
        shard: ServeConfig {
            slices: 1,
            queue_depth: 512,
            // Single-lane service: every dispatch makes a fresh residency
            // decision, so placement quality shows directly in reconfigs.
            batching: false,
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    })
    .expect("config is valid");
    for id in kernels {
        cluster.register_paper_kernel(id).expect("kernel maps");
    }
    for (t, id) in kernels.iter().enumerate() {
        cluster
            .add_tenant(&format!("t{t}"), 1)
            .expect("unique tenant");
        let name = id.name().to_lowercase();
        for i in 0..48u64 {
            // Interleave across kernels with tenant-specific gaps so the
            // arrival order is aperiodic: a round-robin cursor cannot
            // accidentally lock one kernel to one shard.
            let arrival = i * (3_700 + t as u64 * 300) + t as u64 * 131;
            cluster
                .submit(Request::new(&format!("t{t}"), i, &name, arrival, i))
                .expect("trace request is valid");
        }
    }
    cluster.run_to_completion().expect("serving drains")
}

#[test]
fn affinity_routing_strictly_reduces_reconfigurations() {
    let affinity = multi_kernel_cluster(RoutePolicy::KernelAffinity {
        spill_depth: usize::MAX,
    });
    let round_robin = multi_kernel_cluster(RoutePolicy::RoundRobin);
    assert_eq!(
        affinity.completions.len(),
        round_robin.completions.len(),
        "both placements must complete the same requests"
    );
    let ra = affinity.probes.counter("serve.reconfigs");
    let rr = round_robin.probes.counter("serve.reconfigs");
    assert!(
        ra < rr,
        "affinity placement must strictly reduce reconfigurations: affinity {ra} vs round-robin {rr}"
    );
    // Affinity concentrates each kernel on its home shard: in the limit
    // each shard's slice configures once per resident kernel.
    assert!(
        affinity.probes.counter("serve.reconfig.total_ps")
            < round_robin.probes.counter("serve.reconfig.total_ps"),
        "affinity must also pay strictly less reconfiguration time"
    );
}

/// One kernel, everything routed to its home shard (infinite spill depth),
/// a burst at t=0: the canonical skewed trace.
fn skewed_cluster(steal: Option<StealConfig>) -> ClusterReport {
    let mut cluster = Cluster::new(ClusterConfig {
        shards: 4,
        route: RoutePolicy::KernelAffinity {
            spill_depth: usize::MAX,
        },
        steal,
        shard: ServeConfig {
            slices: 1,
            queue_depth: 512,
            batching: false,
            ..ServeConfig::default()
        },
        epoch_ps: 10_000,
        ..ClusterConfig::default()
    })
    .expect("config is valid");
    cluster
        .register_kernel("add", &tiny_kernel("add"), tiny_profile())
        .expect("kernel maps");
    cluster.add_tenant("t", 1).expect("unique tenant");
    for i in 0..96u64 {
        cluster
            .submit(Request::new("t", i, "add", i, i))
            .expect("trace request is valid");
    }
    cluster.run_to_completion().expect("serving drains")
}

#[test]
fn work_stealing_strictly_reduces_p99_on_a_skewed_trace() {
    let stolen = skewed_cluster(Some(StealConfig {
        imbalance: 2,
        max_per_epoch: 64,
    }));
    let pinned = skewed_cluster(None);
    assert_eq!(stolen.completions.len(), pinned.completions.len());
    assert!(stolen.steals > 0, "the skewed burst must trigger steals");
    let p99 = |r: &ClusterReport| {
        r.probes
            .histogram("serve.latency_ps")
            .expect("latencies recorded")
            .quantile(0.99)
            .expect("non-empty histogram")
    };
    let (with, without) = (p99(&stolen), p99(&pinned));
    assert!(
        with < without,
        "stealing must strictly reduce p99 on the skewed trace: {with} vs {without}"
    );
    // Migrations balance: every steal left one shard and landed on one.
    assert_eq!(
        stolen.probes.counter("serve.requests.stolen"),
        stolen.probes.counter("serve.requests.stolen_in")
    );
}

/// A load spike against one shard that starts cache-heavy: 4 compute ways,
/// 10 scratchpad, 6 cache. The workload is compute-bound (long folds,
/// almost no operand traffic), so compute-way count is the bottleneck.
fn spike_cluster(autoscale: Option<AutoscaleConfig>) -> ClusterReport {
    let mut cluster = Cluster::new(ClusterConfig {
        shards: 1,
        autoscale,
        shard: ServeConfig {
            partition: freac::core::SlicePartition::new(4, 10, 6).expect("valid split"),
            slices: 1,
            queue_depth: 2048,
            ..ServeConfig::default()
        },
        epoch_ps: 100_000,
        ..ClusterConfig::default()
    })
    .expect("config is valid");
    cluster
        .register_kernel(
            "add",
            &tiny_kernel("add"),
            RequestProfile {
                cycles_per_item: 256,
                read_words: 1,
                write_words: 1,
            },
        )
        .expect("kernel maps");
    cluster.add_tenant("t", 1).expect("unique tenant");
    for i in 0..1024u64 {
        cluster
            .submit(Request::new("t", i, "add", i, i))
            .expect("trace request is valid");
    }
    cluster.run_to_completion().expect("serving drains")
}

#[test]
fn autoscaling_beats_static_allocation_on_a_load_spike() {
    let elastic = spike_cluster(Some(AutoscaleConfig {
        high_backlog: 16,
        low_backlog: 0,
        up_epochs: 1,
        down_epochs: 64,
        ..AutoscaleConfig::default()
    }));
    let static_split = spike_cluster(None);
    assert_eq!(elastic.completions.len(), static_split.completions.len());
    // The conversion actually happened and was charged.
    assert!(
        elastic.probes.counter("cluster.autoscale.up") > 0,
        "the spike must convert ways to compute"
    );
    assert!(
        elastic.probes.counter("cluster.autoscale.conversion_ps") > 0,
        "way conversion must be charged, not free"
    );
    assert!(
        elastic.span_ps < static_split.span_ps,
        "elastic ways must drain the spike strictly faster: {} vs {}",
        elastic.span_ps,
        static_split.span_ps
    );
}

#[test]
fn million_request_smoke_conserves_and_orders_quantiles() {
    // Default 1M requests in release; debug builds (tier-1 `cargo test`)
    // run a smaller trace so the suite stays fast. Override with
    // FREAC_CLUSTER_SMOKE_REQUESTS.
    let n: u64 = std::env::var("FREAC_CLUSTER_SMOKE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) {
            50_000
        } else {
            1_000_000
        });
    let mut cluster = Cluster::new(ClusterConfig {
        shards: 4,
        route: RoutePolicy::KernelAffinity { spill_depth: 64 },
        steal: Some(StealConfig::default()),
        shard: ServeConfig {
            queue_depth: 512,
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    })
    .expect("config is valid");
    cluster
        .register_kernel("add", &tiny_kernel("add"), tiny_profile())
        .expect("adder maps");
    cluster
        .register_kernel(
            "mask",
            {
                let mut b = CircuitBuilder::new("mask");
                let a = b.word_input("a", 8);
                let x = b.word_input("x", 8);
                let m = b.and_words(&a, &x);
                b.word_output("m", &m);
                &b.finish().expect("masker builds")
            },
            RequestProfile {
                cycles_per_item: 1,
                read_words: 2,
                write_words: 1,
            },
        )
        .expect("masker maps");
    for t in 0..4 {
        cluster
            .add_tenant(&format!("t{t}"), 1 + t % 2)
            .expect("unique tenant");
    }
    for i in 0..n {
        let tenant = format!("t{}", i % 4);
        let kernel = if i % 3 == 0 { "mask" } else { "add" };
        cluster
            .submit(Request::new(&tenant, i / 4, kernel, i * 200, i))
            .expect("trace request is valid");
    }
    let report = cluster.run_to_completion().expect("serving drains");

    // Conservation, cluster-wide and per terminal class.
    assert_eq!(
        report.completions.len() as u64 + report.sheds.len() as u64,
        n,
        "every request must complete or shed exactly once"
    );
    assert_eq!(report.probes.counter("cluster.requests.submitted"), n);
    assert_eq!(
        report.probes.counter("cluster.requests.completed")
            + report.probes.counter("cluster.requests.shed"),
        n
    );
    let violations = freac::probe::check(&report.probes);
    assert!(violations.is_empty(), "probe laws violated: {violations:?}");

    // Ordered quantiles on the merged latency distribution.
    let h = report
        .probes
        .histogram("serve.latency_ps")
        .expect("latencies recorded");
    let (p50, p95, p99) = (
        h.quantile(0.5).expect("non-empty"),
        h.quantile(0.95).expect("non-empty"),
        h.quantile(0.99).expect("non-empty"),
    );
    assert!(
        p50 <= p95 && p95 <= p99,
        "quantiles out of order: p50 {p50} p95 {p95} p99 {p99}"
    );
}
