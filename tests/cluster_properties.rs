//! Integration gates for the cluster serving layer (ISSUE acceptance):
//! kernel-affinity routing strictly reduces reconfigurations vs.
//! round-robin placement, work stealing strictly reduces tail latency on a
//! skewed trace, elastic way autoscaling beats a static allocation on a
//! load spike with every conversion charged, and a ~million-request smoke
//! drains with conservation intact and ordered quantiles.

use freac::kernels::KernelId;
use freac::netlist::builder::CircuitBuilder;
use freac::netlist::Netlist;
use freac::serve::{
    AutoscaleConfig, Cluster, ClusterConfig, ClusterReport, Request, RequestProfile, RoutePolicy,
    SampleConfig, SampledServer, ServeConfig, StealConfig,
};

fn tiny_kernel(name: &str) -> Netlist {
    let mut b = CircuitBuilder::new(name);
    let a = b.word_input("a", 8);
    let x = b.word_input("x", 8);
    let s = b.add(&a, &x);
    b.word_output("s", &s);
    b.finish().expect("tiny kernel builds")
}

fn tiny_profile() -> RequestProfile {
    RequestProfile {
        cycles_per_item: 2,
        read_words: 4,
        write_words: 2,
    }
}

/// Four tenants, each pinned to one paper kernel, arrivals interleaved so
/// a shard serving mixed traffic must swap bitstreams constantly.
fn multi_kernel_cluster(route: RoutePolicy) -> ClusterReport {
    let kernels = [KernelId::Aes, KernelId::Gemm, KernelId::Kmp, KernelId::Dot];
    let mut cluster = Cluster::new(ClusterConfig {
        shards: 4,
        route,
        shard: ServeConfig {
            slices: 1,
            queue_depth: 512,
            // Single-lane service: every dispatch makes a fresh residency
            // decision, so placement quality shows directly in reconfigs.
            batching: false,
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    })
    .expect("config is valid");
    for id in kernels {
        cluster.register_paper_kernel(id).expect("kernel maps");
    }
    for (t, id) in kernels.iter().enumerate() {
        cluster
            .add_tenant(&format!("t{t}"), 1)
            .expect("unique tenant");
        let name = id.name().to_lowercase();
        for i in 0..48u64 {
            // Interleave across kernels with tenant-specific gaps so the
            // arrival order is aperiodic: a round-robin cursor cannot
            // accidentally lock one kernel to one shard.
            let arrival = i * (3_700 + t as u64 * 300) + t as u64 * 131;
            cluster
                .submit(Request::new(&format!("t{t}"), i, &name, arrival, i))
                .expect("trace request is valid");
        }
    }
    cluster.run_to_completion().expect("serving drains")
}

#[test]
fn affinity_routing_strictly_reduces_reconfigurations() {
    let affinity = multi_kernel_cluster(RoutePolicy::KernelAffinity {
        spill_depth: usize::MAX,
    });
    let round_robin = multi_kernel_cluster(RoutePolicy::RoundRobin);
    assert_eq!(
        affinity.completions.len(),
        round_robin.completions.len(),
        "both placements must complete the same requests"
    );
    let ra = affinity.probes.counter("serve.reconfigs");
    let rr = round_robin.probes.counter("serve.reconfigs");
    assert!(
        ra < rr,
        "affinity placement must strictly reduce reconfigurations: affinity {ra} vs round-robin {rr}"
    );
    // Affinity concentrates each kernel on its home shard: in the limit
    // each shard's slice configures once per resident kernel.
    assert!(
        affinity.probes.counter("serve.reconfig.total_ps")
            < round_robin.probes.counter("serve.reconfig.total_ps"),
        "affinity must also pay strictly less reconfiguration time"
    );
}

/// One kernel, everything routed to its home shard (infinite spill depth),
/// a burst at t=0: the canonical skewed trace.
fn skewed_cluster(steal: Option<StealConfig>) -> ClusterReport {
    let mut cluster = Cluster::new(ClusterConfig {
        shards: 4,
        route: RoutePolicy::KernelAffinity {
            spill_depth: usize::MAX,
        },
        steal,
        shard: ServeConfig {
            slices: 1,
            queue_depth: 512,
            batching: false,
            ..ServeConfig::default()
        },
        epoch_ps: 10_000,
        ..ClusterConfig::default()
    })
    .expect("config is valid");
    cluster
        .register_kernel("add", &tiny_kernel("add"), tiny_profile())
        .expect("kernel maps");
    cluster.add_tenant("t", 1).expect("unique tenant");
    for i in 0..96u64 {
        cluster
            .submit(Request::new("t", i, "add", i, i))
            .expect("trace request is valid");
    }
    cluster.run_to_completion().expect("serving drains")
}

#[test]
fn work_stealing_strictly_reduces_p99_on_a_skewed_trace() {
    let stolen = skewed_cluster(Some(StealConfig {
        imbalance: 2,
        max_per_epoch: 64,
    }));
    let pinned = skewed_cluster(None);
    assert_eq!(stolen.completions.len(), pinned.completions.len());
    assert!(stolen.steals > 0, "the skewed burst must trigger steals");
    let p99 = |r: &ClusterReport| {
        r.probes
            .histogram("serve.latency_ps")
            .expect("latencies recorded")
            .quantile(0.99)
            .expect("non-empty histogram")
    };
    let (with, without) = (p99(&stolen), p99(&pinned));
    assert!(
        with < without,
        "stealing must strictly reduce p99 on the skewed trace: {with} vs {without}"
    );
    // Migrations balance: every steal left one shard and landed on one.
    assert_eq!(
        stolen.probes.counter("serve.requests.stolen"),
        stolen.probes.counter("serve.requests.stolen_in")
    );
}

/// A load spike against one shard that starts cache-heavy: 4 compute ways,
/// 10 scratchpad, 6 cache. The workload is compute-bound (long folds,
/// almost no operand traffic), so compute-way count is the bottleneck.
fn spike_cluster(autoscale: Option<AutoscaleConfig>) -> ClusterReport {
    let mut cluster = Cluster::new(ClusterConfig {
        shards: 1,
        autoscale,
        shard: ServeConfig {
            partition: freac::core::SlicePartition::new(4, 10, 6).expect("valid split"),
            slices: 1,
            queue_depth: 2048,
            ..ServeConfig::default()
        },
        epoch_ps: 100_000,
        ..ClusterConfig::default()
    })
    .expect("config is valid");
    cluster
        .register_kernel(
            "add",
            &tiny_kernel("add"),
            RequestProfile {
                cycles_per_item: 256,
                read_words: 1,
                write_words: 1,
            },
        )
        .expect("kernel maps");
    cluster.add_tenant("t", 1).expect("unique tenant");
    for i in 0..1024u64 {
        cluster
            .submit(Request::new("t", i, "add", i, i))
            .expect("trace request is valid");
    }
    cluster.run_to_completion().expect("serving drains")
}

#[test]
fn autoscaling_beats_static_allocation_on_a_load_spike() {
    let elastic = spike_cluster(Some(AutoscaleConfig {
        high_backlog: 16,
        low_backlog: 0,
        up_epochs: 1,
        down_epochs: 64,
        ..AutoscaleConfig::default()
    }));
    let static_split = spike_cluster(None);
    assert_eq!(elastic.completions.len(), static_split.completions.len());
    // The conversion actually happened and was charged.
    assert!(
        elastic.probes.counter("cluster.autoscale.up") > 0,
        "the spike must convert ways to compute"
    );
    assert!(
        elastic.probes.counter("cluster.autoscale.conversion_ps") > 0,
        "way conversion must be charged, not free"
    );
    assert!(
        elastic.span_ps < static_split.span_ps,
        "elastic ways must drain the spike strictly faster: {} vs {}",
        elastic.span_ps,
        static_split.span_ps
    );
}

/// The smoke scenario's cluster shape: 4 shards, affinity routing with
/// stealing, shared by the full-fidelity and sampled million-request
/// smokes so their metrics are comparable.
fn smoke_config() -> ClusterConfig {
    ClusterConfig {
        shards: 4,
        route: RoutePolicy::KernelAffinity { spill_depth: 64 },
        steal: Some(StealConfig::default()),
        shard: ServeConfig {
            queue_depth: 512,
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    }
}

fn mask_kernel() -> Netlist {
    let mut b = CircuitBuilder::new("mask");
    let a = b.word_input("a", 8);
    let x = b.word_input("x", 8);
    let m = b.and_words(&a, &x);
    b.word_output("m", &m);
    b.finish().expect("masker builds")
}

fn mask_profile() -> RequestProfile {
    RequestProfile {
        cycles_per_item: 1,
        read_words: 2,
        write_words: 1,
    }
}

/// Four tenants alternating between two kernels, unique `(tenant, seq)`
/// identities — the big-trace scenario both smokes replay.
fn smoke_trace(n: u64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let tenant = format!("t{}", i % 4);
            let kernel = if i % 3 == 0 { "mask" } else { "add" };
            Request::new(&tenant, i / 4, kernel, i * 200, i)
        })
        .collect()
}

/// Phase-structured variant of the smoke trace for the sampled-mode gate.
/// The first window arrives at gentle 25 ns gaps so the cold-boot slice
/// configurations (~7.7 us each) are paid before pressure starts; after
/// that, phases of 16384 requests cycle through arrival gaps and kernel
/// mixes. Post-ramp behavior is a sequence of per-phase equilibria — the
/// regime representative-interval sampling is built to compress. The
/// cold-start shape stays in `smoke_trace` for the full-fidelity smoke,
/// which is exactly about that congestion transient.
fn smoke_ramp_trace(n: u64) -> Vec<Request> {
    const RAMP: u64 = 1024;
    const PHASE: u64 = 16_384;
    const GAPS: [u64; 3] = [400, 1_000, 200];
    let mut arrival = 0u64;
    (0..n)
        .map(|i| {
            let (gap, mask_mod) = if i < RAMP {
                (25_000, 3)
            } else {
                let phase = (i - RAMP) / PHASE;
                (GAPS[(phase % 3) as usize], 2 + phase % 2)
            };
            arrival += gap;
            let tenant = format!("t{}", i % 4);
            let kernel = if i % mask_mod == 0 { "mask" } else { "add" };
            Request::new(&tenant, i / 4, kernel, arrival, i)
        })
        .collect()
}

fn full_smoke_cluster() -> Cluster {
    let mut cluster = Cluster::new(smoke_config()).expect("config is valid");
    cluster
        .register_kernel("add", &tiny_kernel("add"), tiny_profile())
        .expect("adder maps");
    cluster
        .register_kernel("mask", &mask_kernel(), mask_profile())
        .expect("masker maps");
    for t in 0..4 {
        cluster
            .add_tenant(&format!("t{t}"), 1 + t % 2)
            .expect("unique tenant");
    }
    cluster
}

#[test]
fn million_request_full_fidelity_smoke_conserves_and_orders_quantiles() {
    // The full-fidelity replay of the whole trace. The sampled smoke below
    // is the default million-request gate; this one runs a reduced trace
    // unless FREAC_CLUSTER_SMOKE_FULL=1 (the nightly/slow job) unlocks the
    // million-request default. FREAC_CLUSTER_SMOKE_REQUESTS overrides
    // either way.
    let full = std::env::var("FREAC_CLUSTER_SMOKE_FULL").is_ok_and(|v| v == "1");
    let n: u64 = std::env::var("FREAC_CLUSTER_SMOKE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(match (full, cfg!(debug_assertions)) {
            (true, _) => 1_000_000,
            (false, true) => 50_000,
            (false, false) => 100_000,
        });
    let mut cluster = full_smoke_cluster();
    for req in smoke_trace(n) {
        cluster.submit(req).expect("trace request is valid");
    }
    let report = cluster.run_to_completion().expect("serving drains");

    // Conservation, cluster-wide and per terminal class.
    assert_eq!(
        report.completions.len() as u64 + report.sheds.len() as u64,
        n,
        "every request must complete or shed exactly once"
    );
    assert_eq!(report.probes.counter("cluster.requests.submitted"), n);
    assert_eq!(
        report.probes.counter("cluster.requests.completed")
            + report.probes.counter("cluster.requests.shed"),
        n
    );
    let violations = freac::probe::check(&report.probes);
    assert!(violations.is_empty(), "probe laws violated: {violations:?}");

    // Ordered quantiles on the merged latency distribution.
    let h = report
        .probes
        .histogram("serve.latency_ps")
        .expect("latencies recorded");
    let (p50, p95, p99) = (
        h.quantile(0.5).expect("non-empty"),
        h.quantile(0.95).expect("non-empty"),
        h.quantile(0.99).expect("non-empty"),
    );
    assert!(
        p50 <= p95 && p95 <= p99,
        "quantiles out of order: p50 {p50} p95 {p95} p99 {p99}"
    );
}

#[test]
fn sampled_million_request_smoke_extrapolates_within_bounds() {
    // The default million-request gate: the sampled runner covers the full
    // trace length in seconds by simulating only medoid windows. A full
    // run at a tenth of the length anchors the accuracy check — the
    // sampled estimate on that same prefix must land inside its own
    // declared bound.
    let n: u64 = std::env::var("FREAC_CLUSTER_SMOKE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if cfg!(debug_assertions) {
            200_000
        } else {
            1_000_000
        });
    let sample_cfg = SampleConfig {
        window: 1024,
        max_clusters: 12,
        warmup: 512,
        workers: 4,
        ..SampleConfig::default()
    };
    let sampler = || {
        let mut s = SampledServer::new(smoke_config(), sample_cfg).expect("config is valid");
        s.register_kernel("add", &tiny_kernel("add"), tiny_profile())
            .expect("adder maps");
        s.register_kernel("mask", &mask_kernel(), mask_profile())
            .expect("masker maps");
        for t in 0..4 {
            s.add_tenant(&format!("t{t}"), 1 + t % 2)
                .expect("unique tenant");
        }
        s
    };

    // Full-length sampled run: conservation, probe laws, ordered quantiles.
    let report = sampler()
        .run(&smoke_ramp_trace(n))
        .expect("sampling drains");
    assert_eq!(report.trace_requests, n);
    assert_eq!(
        report.est_completed + report.est_shed,
        n,
        "extrapolated terminals must cover the whole trace"
    );
    assert!(
        (report.simulated_requests as f64) < n as f64 / 4.0,
        "sampling must simulate a small fraction of the trace: {} of {n}",
        report.simulated_requests
    );
    let violations = freac::probe::check(&report.probes);
    assert!(violations.is_empty(), "probe laws violated: {violations:?}");
    assert!(
        report.p50_ps.value <= report.p95_ps.value && report.p95_ps.value <= report.p99_ps.value,
        "extrapolated quantiles out of order"
    );

    // Accuracy anchor: full fidelity vs sampled on the n/10 prefix.
    let anchor_n = (n / 10).max(20_000);
    let anchor_trace = smoke_ramp_trace(anchor_n);
    let mut full = full_smoke_cluster();
    for req in anchor_trace.clone() {
        full.submit(req).expect("trace request is valid");
    }
    let full_report = full.run_to_completion().expect("serving drains");
    let h = full_report
        .probes
        .histogram("serve.latency_ps")
        .expect("latencies recorded");
    let sampled = sampler().run(&anchor_trace).expect("sampling drains");
    for (name, est, actual) in [
        ("p50", sampled.p50_ps, h.quantile(0.5).expect("non-empty")),
        ("p95", sampled.p95_ps, h.quantile(0.95).expect("non-empty")),
        ("p99", sampled.p99_ps, h.quantile(0.99).expect("non-empty")),
    ] {
        assert!(
            est.covers(actual),
            "{name}: full-fidelity {actual} outside sampled bound {} +- {}",
            est.value,
            est.bound
        );
        assert!(
            (actual - est.value).abs() <= 0.05 * actual,
            "{name}: sampled {} deviates more than 5% from full {actual}",
            est.value
        );
    }
}
