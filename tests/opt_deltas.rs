//! Regression gate for the netlist-optimization pipeline: the per-kernel
//! LUT/depth/fold deltas must match the committed baseline byte for byte,
//! and the deltas themselves must clear the acceptance floor. Regenerate
//! the baseline after an intentional pipeline change with
//!
//! ```text
//! FREAC_UPDATE_OPT_BASELINE=1 cargo test --release --test opt_deltas
//! ```

use freac::experiments::ablations;

const BASELINE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/baselines/opt_deltas.json"
);

#[test]
fn opt_deltas_match_the_committed_baseline() {
    let fresh = ablations::netlist_opt().to_json();
    if std::env::var("FREAC_UPDATE_OPT_BASELINE").as_deref() == Ok("1") {
        std::fs::write(BASELINE, &fresh).expect("baseline is writable");
        eprintln!("rewrote {BASELINE}");
        return;
    }
    let committed = std::fs::read_to_string(BASELINE).unwrap_or_else(|e| {
        panic!(
            "missing committed baseline {BASELINE} ({e}); \
             regenerate with FREAC_UPDATE_OPT_BASELINE=1"
        )
    });
    assert_eq!(
        committed, fresh,
        "optimization deltas drifted from tests/baselines/opt_deltas.json; \
         if the change is intentional, regenerate with FREAC_UPDATE_OPT_BASELINE=1"
    );
}

#[test]
fn opt_deltas_clear_the_acceptance_floor() {
    // The ISSUE acceptance bar, enforced at the workspace root so it rides
    // in the default `cargo test` sweep: optimization never regresses any
    // kernel, and wins >=10% of the LUTs on at least 6 of the 11.
    let a = ablations::netlist_opt();
    assert_eq!(a.rows.len(), 11, "one row per benchmark kernel");
    let mut big_wins = Vec::new();
    for r in &a.rows {
        let id = r.kernel;
        assert!(
            r.luts_opt <= r.luts_raw,
            "{id}: optimization added LUTs ({} -> {})",
            r.luts_raw,
            r.luts_opt
        );
        assert!(
            r.folds_opt <= r.folds_raw,
            "{id}: optimization added fold steps ({} -> {})",
            r.folds_raw,
            r.folds_opt
        );
        if r.luts_raw.saturating_sub(r.luts_opt) * 10 >= r.luts_raw {
            big_wins.push(id);
        }
    }
    assert!(
        big_wins.len() >= 6,
        "expected >=10% LUT reduction on >=6 kernels, got {} ({big_wins:?})",
        big_wins.len()
    );
}
