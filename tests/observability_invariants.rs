//! Standing observability invariants: every paper kernel's run registry
//! satisfies the probe conservation laws, counters are identical for any
//! worker count, and the Chrome-trace exporter produces a well-formed
//! trace from a realistic event stream.

use freac::core::SlicePartition;
use freac::experiments::parallel::map_with;
use freac::experiments::runner::{best_freac_run, freac_run_at};
use freac::kernels::all_kernels;
use freac::probe::global::{Probe, ProbeConfig};
use freac::probe::{assert_ok, CounterRegistry, EventKind, Json, ProbeEvent};
use freac::sim::DramModel;

#[test]
fn every_paper_kernel_satisfies_probe_invariants() {
    for id in all_kernels() {
        let b = best_freac_run(id, SlicePartition::end_to_end(), 8)
            .unwrap_or_else(|e| panic!("{id} fails to run: {e}"));
        let p = &b.run.probes;
        assert_ok(p);
        // Per-run registries carry exactly one run and its conservation
        // relationships.
        assert_eq!(p.counter("core.runs"), 1, "{id}");
        assert_eq!(
            p.counter("core.kernel_cycles"),
            p.counter("core.items_per_tile") * p.counter("core.round_cycles"),
            "{id}: kernel cycles must be items x round"
        );
        assert_eq!(
            p.counter("core.fold.steps_executed"),
            p.counter("core.fold.expected_steps"),
            "{id}: fold-step conservation"
        );
        assert!(
            p.counter("core.fold.expected_steps") >= p.counter("core.fold.passes"),
            "{id}: every pass runs at least one fold step"
        );
        assert!(p.counter("core.setup.protocol_stores") >= 5, "{id}");
        assert!(p.counter("core.setup.config_bytes") > 0, "{id}");
    }
}

#[test]
fn counters_identical_for_any_worker_count() {
    // The 1-vs-N contract end to end on real kernels: run every paper
    // kernel through the worker pool serially and with 4 workers, merge
    // the per-run registries (in pool return order), and require the
    // merged counter sections to be identical. Each job also executes its
    // kernel functionally through the *compiled* fold plan (via the cached
    // accelerator) and folds those counters in, so the contract covers the
    // compiled path too.
    use freac::experiments::runner::map_kernel;
    use freac::netlist::{NodeKind, Value};

    let jobs: Vec<_> = all_kernels().to_vec();
    let run = |workers: usize| -> CounterRegistry {
        let regs = map_with(workers, jobs.clone(), |id| {
            let mut reg = freac_run_at(id, 8, SlicePartition::end_to_end(), 4)
                .unwrap_or_else(|e| panic!("{id} fails at tile 8: {e}"))
                .probes;
            let accel = map_kernel(id, 8).unwrap_or_else(|e| panic!("{id} fails to map: {e}"));
            let inputs: Vec<Value> = accel
                .netlist()
                .primary_inputs()
                .iter()
                .map(|&pi| match accel.netlist().nodes()[pi.index()].kind {
                    NodeKind::BitInput { .. } => Value::Bit(true),
                    _ => Value::Word(11),
                })
                .collect();
            let mut ex = accel.fold_plan().executor();
            let mut out = Vec::new();
            for _ in 0..2 {
                ex.run_cycle_into(&inputs, &mut out)
                    .unwrap_or_else(|e| panic!("{id} compiled execution fails: {e}"));
            }
            ex.export_into(&mut reg, "compiled.fold");
            reg
        });
        let mut merged = CounterRegistry::new();
        for r in &regs {
            merged.merge(r);
        }
        merged
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial.counters().collect::<Vec<_>>(),
        parallel.counters().collect::<Vec<_>>(),
        "merged counters must not depend on the worker count"
    );
    assert_eq!(serial.counter("core.runs"), jobs.len() as u64);
    assert_ok(&serial);
    assert_ok(&parallel);
}

#[test]
fn dram_export_conserves_bytes() {
    let mut dram = DramModel::ddr4_2400_x4();
    let mut t = 0;
    for i in 0..200u64 {
        t = dram.read_line(t).max(t);
        if i % 3 == 0 {
            t = dram.write_line(t).max(t);
        }
    }
    let mut reg = CounterRegistry::new();
    dram.export_into(&mut reg, "sim.dram");
    assert_ok(&reg);
    let line = reg
        .gauge("sim.dram.line_bytes")
        .expect("line size exported") as u64;
    assert_eq!(
        reg.counter("sim.dram.bytes_read"),
        reg.counter("sim.dram.lines_read") * line
    );
    assert_eq!(
        reg.counter("sim.dram.row_activations"),
        reg.counter("sim.dram.lines_read") + reg.counter("sim.dram.lines_written")
    );
}

/// Golden-shape test for the Chrome-trace exporter: a realistic stream —
/// nested wall-clock harness spans plus simulated-time kernel tracks,
/// deliberately interleaved — must render to JSON that parses, keeps
/// every track's timestamps monotonic, and balances B/E pairs.
#[test]
fn chrome_trace_is_well_formed() {
    let dir = std::env::temp_dir().join(format!("freac-obs-trace-{}", std::process::id()));
    let p = Probe::new(ProbeConfig {
        trace_path: Some(dir.join("trace.json")),
        metrics_path: dir.join("metrics.json"),
        ring_capacity: 1024,
    });
    {
        let _fig = p.span("harness", "fig12");
        for (t, kind, name) in [
            (0u64, EventKind::Begin, "setup"),
            (400, EventKind::End, "setup"),
            (400, EventKind::Begin, "kernel"),
            (9_000, EventKind::End, "kernel"),
        ] {
            let mut e = ProbeEvent::instant(t, "core.aes", name);
            e.kind = kind;
            p.emit(e);
        }
        p.emit(ProbeEvent::instant(64, "sim.dram", "read").with("bytes", 64));
    }
    let text = p.chrome_trace();
    let v = Json::parse(&text).expect("trace is valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut depth: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        if ph == "M" {
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
        let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        assert!(ts >= *prev, "track {tid} went backwards: {ts} < {prev}");
        *prev = ts;
        match ph {
            "B" => *depth.entry(tid).or_insert(0) += 1,
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "track {tid} closed more spans than it opened");
            }
            "i" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    for (tid, d) in depth {
        assert_eq!(d, 0, "track {tid} left {d} span(s) open");
    }
}
